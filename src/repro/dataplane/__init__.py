"""Columnar trace storage and streaming statistics (the data plane).

This package is the memory-bounded data plane under the simulators and
campaign runner: columnar trace storage (:class:`ColumnarTrace`),
streaming accumulators with exact parallel merges
(:class:`StreamingMoments`, :class:`StreamingHistogram`,
:class:`TimeWeightedMoments`), the unified :class:`TraceSink` protocol
with its streaming implementations, and the ``retention`` policy
vocabulary threaded through ``repro run`` / ``repro ensemble`` /
``repro design``.  See ``docs/dataplane.md``.
"""

from .accumulators import (
    StreamingHistogram,
    StreamingMoments,
    TimeWeightedMoments,
)
from .columnar import ColumnarTrace
from .retention import RETENTION_POLICIES, validate_retention
from .sink import MomentsTraceSink, NullTraceSink, TraceSink

__all__ = [
    "ColumnarTrace",
    "StreamingMoments",
    "StreamingHistogram",
    "TimeWeightedMoments",
    "TraceSink",
    "NullTraceSink",
    "MomentsTraceSink",
    "RETENTION_POLICIES",
    "validate_retention",
]
