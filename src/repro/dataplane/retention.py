"""Retention policy names shared by the simulators, ensembles and CLI.

One vocabulary everywhere:

* ``"full"`` -- keep complete histories (the pre-dataplane behaviour;
  recorded floats are bit-identical to the list-backed seed).
* ``"moments"`` -- stream time-weighted / Welford moments, keep no
  per-sample history.
* ``"none"`` -- keep only counters and final values; cheapest, for
  campaigns that read nothing but throughput/loss/overflow summaries.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError

__all__ = ["RETENTION_POLICIES", "validate_retention"]

RETENTION_POLICIES = ("full", "moments", "none")


def validate_retention(retention: str) -> str:
    """Return *retention* if it names a known policy, else raise."""
    if retention not in RETENTION_POLICIES:
        raise ConfigurationError(
            f"unknown retention policy {retention!r}; choose one of "
            f"{', '.join(RETENTION_POLICIES)}")
    return retention
