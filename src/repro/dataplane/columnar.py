"""Chunk-growing columnar storage for (time, value) traces.

``ColumnarTrace`` replaces the per-sample Python ``list.append`` internals
of :class:`~repro.queueing.trace.TimeSeriesTrace` with two parallel
``float64`` columns that grow geometrically, so a million-sample DES trace
costs two contiguous arrays instead of a million boxed floats -- while
recording exactly the same IEEE-754 doubles (``float64`` stores every
Python float exactly, so the stored sequence is bit-identical to the
list-backed seed).

For runs too large for RAM, pass ``memmap_dir`` and the columns spill to
``numpy.memmap`` files that grow by ``ftruncate`` + remap; on POSIX the
backing files are unlinked immediately after mapping, so the space is
reclaimed automatically when the trace is garbage collected.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Tuple

import numpy as np

from ..exceptions import AnalysisError, ConfigurationError

__all__ = ["ColumnarTrace"]

_INITIAL_CAPACITY = 1024
_GROWTH_FACTOR = 2


class ColumnarTrace:
    """Append-only columnar (time, value) store.

    Parameters
    ----------
    capacity:
        Initial capacity in samples; buffers grow geometrically beyond it.
    memmap_dir:
        When given, back the columns with ``numpy.memmap`` files created
        in this directory instead of RAM.
    """

    __slots__ = ("_times", "_values", "_length", "_capacity", "_memmap_dir")

    def __init__(self, capacity: int = _INITIAL_CAPACITY,
                 memmap_dir: Optional[str] = None):
        if capacity < 1:
            raise ConfigurationError("trace capacity must be positive")
        if memmap_dir is not None and not os.path.isdir(memmap_dir):
            raise ConfigurationError(
                f"memmap directory does not exist: {memmap_dir}")
        self._memmap_dir = memmap_dir
        self._capacity = int(capacity)
        self._length = 0
        self._times = self._allocate(self._capacity)
        self._values = self._allocate(self._capacity)

    def _allocate(self, capacity: int) -> np.ndarray:
        if self._memmap_dir is None:
            return np.empty(capacity, dtype=np.float64)
        fd, path = tempfile.mkstemp(suffix=".col", dir=self._memmap_dir)
        try:
            os.ftruncate(fd, capacity * 8)
            column = np.memmap(path, dtype=np.float64, mode="r+",
                               shape=(capacity,))
        finally:
            os.close(fd)
        # The mapping keeps the data alive; unlinking now means the file
        # vanishes from disk as soon as the trace is collected.
        os.unlink(path)
        return column

    def _grow(self) -> None:
        new_capacity = self._capacity * _GROWTH_FACTOR
        for name in ("_times", "_values"):
            old = getattr(self, name)
            new = self._allocate(new_capacity)
            new[:self._length] = old[:self._length]
            setattr(self, name, new)
        self._capacity = new_capacity

    def record(self, time: float, value: float) -> None:
        """Append a sample, enforcing non-decreasing times.

        The monotonicity tolerance is *relative* (one part in 10^12 of the
        current time scale), so long simulations (t ~ 1e6) are held to the
        same effective precision as short ones.
        """
        if self._length:
            last = self._times[self._length - 1]
            if time < last - 1e-12 * max(1.0, abs(last)):
                raise AnalysisError(
                    f"trace times must be non-decreasing: got {time} after "
                    f"{last}")
        self.append(time, value)

    def append(self, time: float, value: float) -> None:
        """Append a sample without the monotonicity check (hot path)."""
        if self._length == self._capacity:
            self._grow()
        index = self._length
        self._times[index] = time
        self._values[index] = value
        self._length = index + 1

    def __len__(self) -> int:
        return self._length

    @property
    def times(self) -> np.ndarray:
        """Recorded times as a read-only array view (no copy)."""
        view = self._times[:self._length]
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Recorded values as a read-only array view (no copy)."""
        view = self._values[:self._length]
        view.flags.writeable = False
        return view

    @property
    def last_time(self) -> Optional[float]:
        """Most recently recorded time, or ``None`` when empty."""
        if self._length == 0:
            return None
        return float(self._times[self._length - 1])

    @property
    def last_value(self) -> Optional[float]:
        """Most recently recorded value, or ``None`` when empty."""
        if self._length == 0:
            return None
        return float(self._values[self._length - 1])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` view pair."""
        return self.times, self.values

    def summary(self) -> dict:
        """Cheap structural summary of the stored columns."""
        summary = {
            "n_samples": self._length,
            "backing": "memmap" if self._memmap_dir is not None else "memory",
        }
        if self._length:
            summary["t_start"] = float(self._times[0])
            summary["t_end"] = float(self._times[self._length - 1])
        return summary

    def __repr__(self) -> str:
        backing = "memmap" if self._memmap_dir is not None else "memory"
        return (f"ColumnarTrace(n_samples={self._length}, backing={backing})")
