"""The unified trace-sink protocol and its streaming implementations.

Everything that records a ``(time, value)`` series in the simulator talks
to a :class:`TraceSink`: the full-history
:class:`~repro.queueing.trace.TimeSeriesTrace`, the raw columnar store
:class:`~repro.dataplane.columnar.ColumnarTrace`, the O(1)-memory
:class:`MomentsTraceSink` and the discarding :class:`NullTraceSink` all
share the same ``record`` / ``append`` / ``times`` / ``values`` /
``summary`` surface, so the retention policy picks the implementation
without the simulator caring.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..exceptions import AnalysisError
from .accumulators import TimeWeightedMoments

__all__ = ["TraceSink", "NullTraceSink", "MomentsTraceSink"]


@runtime_checkable
class TraceSink(Protocol):
    """What every trace implementation exposes.

    ``record`` checks time monotonicity; ``append`` is the unchecked hot
    path the event loop binds directly.  ``times`` / ``values`` return the
    retained history as arrays -- implementations that do not retain
    history raise :class:`~repro.exceptions.AnalysisError` with a message
    pointing at ``retention="full"``.  ``summary`` is always cheap.
    """

    def record(self, time: float, value: float) -> None: ...

    def append(self, time: float, value: float) -> None: ...

    def __len__(self) -> int: ...

    @property
    def times(self) -> np.ndarray: ...

    @property
    def values(self) -> np.ndarray: ...

    def summary(self) -> dict: ...


def _no_history(what: str):
    raise AnalysisError(
        f"{what} is unavailable under streamed retention; rerun with "
        "retention='full' to keep the trace history")


class NullTraceSink:
    """A sink that discards samples, keeping only the count and last value.

    Used by ``retention="none"`` for series nothing downstream reads
    (e.g. per-source rate traces during a pure-throughput campaign).
    The last value is retained because simulator components read it back
    (queue length resumption, rate lookups).
    """

    __slots__ = ("name", "_count", "_last_time", "_last_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._count = 0
        self._last_time: Optional[float] = None
        self._last_value: Optional[float] = None

    def record(self, time: float, value: float) -> None:
        """Validate monotonicity, then drop the sample."""
        if self._last_time is not None:
            tolerance = 1e-12 * max(1.0, abs(self._last_time))
            if time < self._last_time - tolerance:
                raise AnalysisError(
                    f"trace '{self.name}' received out-of-order time "
                    f"{time:.6g}")
        self.append(time, value)

    def append(self, time: float, value: float) -> None:
        """Drop the sample (hot path)."""
        self._count += 1
        self._last_time = time
        self._last_value = value

    def __len__(self) -> int:
        return self._count

    @property
    def times(self) -> np.ndarray:
        _no_history(f"trace '{self.name}' history")

    @property
    def values(self) -> np.ndarray:
        _no_history(f"trace '{self.name}' history")

    def last_value(self, default: float = 0.0) -> float:
        """Most recent value, or *default* when nothing was recorded."""
        return self._last_value if self._last_value is not None else default

    def time_average(self, t_start: float = 0.0,
                     t_end: Optional[float] = None) -> float:
        _no_history(f"time average of trace '{self.name}'")

    def resample(self, sample_times: np.ndarray) -> np.ndarray:
        _no_history(f"resampling of trace '{self.name}'")

    def summary(self) -> dict:
        """Sample count and retention mode."""
        return {"n_samples": self._count, "retention": "none"}


class MomentsTraceSink:
    """Streams time-weighted moments of a piecewise-constant series.

    Each appended sample closes the previous value's holding interval and
    folds ``(previous_value, duration)`` into a
    :class:`~repro.dataplane.accumulators.TimeWeightedMoments` state --
    the same ``(value, weight)`` pairs, in the same order, that
    ``TimeSeriesTrace.time_average`` folds after the fact, so
    :meth:`time_average` is bit-identical to the full-history result
    whenever the requested window covers the whole recording
    (``t_start <= first record time`` and ``t_end >= last record time``).
    Windows that would require splitting a discarded interval raise.
    """

    __slots__ = ("name", "_count", "_first_time", "_last_time",
                 "_last_value", "_moments")

    def __init__(self, name: str = ""):
        self.name = name
        self._count = 0
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None
        self._last_value: Optional[float] = None
        self._moments = TimeWeightedMoments()

    def record(self, time: float, value: float) -> None:
        """Append a sample, enforcing non-decreasing times."""
        if self._last_time is not None:
            tolerance = 1e-12 * max(1.0, abs(self._last_time))
            if time < self._last_time - tolerance:
                raise AnalysisError(
                    f"trace '{self.name}' received out-of-order time "
                    f"{time:.6g}")
        self.append(time, value)

    def append(self, time: float, value: float) -> None:
        """Fold the closed interval, then hold *value* (hot path)."""
        if self._last_time is None:
            self._first_time = time
        elif time > self._last_time:
            self._moments.update(self._last_value, time - self._last_time)
        self._count += 1
        self._last_time = time
        self._last_value = value

    def __len__(self) -> int:
        return self._count

    @property
    def times(self) -> np.ndarray:
        _no_history(f"trace '{self.name}' history")

    @property
    def values(self) -> np.ndarray:
        _no_history(f"trace '{self.name}' history")

    def last_value(self, default: float = 0.0) -> float:
        """Most recent value, or *default* when nothing was recorded."""
        return self._last_value if self._last_value is not None else default

    def _closed_moments(self, t_start: float,
                        t_end: Optional[float]) -> TimeWeightedMoments:
        if self._count == 0:
            raise AnalysisError(f"trace '{self.name}' is empty")
        t_end = t_end if t_end is not None else self._last_time
        if t_end <= t_start:
            raise AnalysisError("t_end must exceed t_start for a time average")
        if t_start > self._first_time or t_end < self._last_time:
            raise AnalysisError(
                f"streamed trace '{self.name}' covers "
                f"[{self._first_time:g}, {self._last_time:g}]; windowed "
                f"averages inside it need retention='full'")
        final = self._moments.copy()
        if t_end > self._last_time:
            final.update(self._last_value, t_end - self._last_time)
        return final

    def time_average(self, t_start: float = 0.0,
                     t_end: Optional[float] = None) -> float:
        """Time-average over ``[t_start, t_end]`` (must cover the recording)."""
        return self._closed_moments(t_start, t_end).mean

    def time_variance(self, t_start: float = 0.0,
                      t_end: Optional[float] = None) -> float:
        """Time-weighted population variance over ``[t_start, t_end]``."""
        return self._closed_moments(t_start, t_end).variance

    def resample(self, sample_times: np.ndarray) -> np.ndarray:
        _no_history(f"resampling of trace '{self.name}'")

    def summary(self) -> dict:
        """Streamed-state summary: count, window, moments."""
        summary = {"n_samples": self._count, "retention": "moments"}
        if self._count:
            summary["t_start"] = float(self._first_time)
            summary["t_end"] = float(self._last_time)
            summary["moments"] = self._moments.to_dict()
        return summary

    def __repr__(self) -> str:
        return (f"MomentsTraceSink(name={self.name!r}, "
                f"n_samples={self._count})")
