"""Streaming accumulators with exact parallel (Chan) merges.

These are the O(1)-memory backbone of the columnar data plane: ensembles,
DES runs and map-reduce campaigns fold their samples into accumulator
*states* instead of retaining full histories, and shards combine those
states with the exact pairwise update formulas of Chan, Golub & LeVeque
(1979).  Every accumulator therefore supports three operations with the
same semantics:

* ``update`` / ``update_batch`` -- fold samples in,
* ``merge`` -- combine two accumulator states (associative, commutative up
  to floating-point rounding; histograms and counters merge exactly),
* ``to_dict`` / ``from_dict`` -- a JSON-friendly state round trip, so a
  state can cross process boundaries, live in the result cache and be
  replayed bit-identically from the campaign journal.

Shard- and order-insensitivity of the merges is pinned by the Hypothesis
property tests in ``tests/property/test_property_dataplane.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..exceptions import AnalysisError, ConfigurationError
from ..numerics.stats import WeightedStatistics

__all__ = [
    "StreamingMoments",
    "StreamingHistogram",
    "TimeWeightedMoments",
]

Shape = Union[int, Tuple[int, ...]]


class StreamingMoments:
    """Elementwise Welford mean/variance/min/max over samples of one shape.

    The accumulator holds per-element state for samples of a fixed
    ``shape`` (scalars by default), so one instance can stream e.g. the
    per-snapshot-time moments of a whole ensemble: with
    ``shape=(n_times, dim)`` each ``update_batch(paths, axis=1)`` folds a
    block of particles into the running per-time statistics.

    ``variance`` is the population variance (``ddof=0``, matching
    :func:`numpy.var`); ``sample_variance`` applies Bessel's correction
    (matching :class:`~repro.numerics.stats.RunningStatistics`).
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self, shape: Shape = ()):
        self.count = 0
        self.mean = np.zeros(shape, dtype=float)
        self.m2 = np.zeros(shape, dtype=float)
        self.minimum = np.full(shape, np.inf, dtype=float)
        self.maximum = np.full(shape, -np.inf, dtype=float)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of one sample."""
        return self.mean.shape

    def update(self, sample) -> None:
        """Fold one sample (an array of :attr:`shape`, or a scalar)."""
        sample = np.asarray(sample, dtype=float)
        if sample.shape != self.shape:
            raise AnalysisError(
                f"sample shape {sample.shape} does not match accumulator "
                f"shape {self.shape}")
        self.count += 1
        delta = sample - self.mean
        self.mean = self.mean + delta / self.count
        self.m2 = self.m2 + delta * (sample - self.mean)
        self.minimum = np.minimum(self.minimum, sample)
        self.maximum = np.maximum(self.maximum, sample)

    def update_batch(self, samples, axis: int = 0) -> None:
        """Fold a whole block of samples stacked along *axis*.

        The block's count/mean/M2 are computed vectorised and combined
        with the running state by one exact Chan merge, so folding a
        million-particle shard costs one pass over the block and O(shape)
        memory -- no per-sample Python loop.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != len(self.shape) + 1:
            raise AnalysisError(
                f"batch must stack samples of shape {self.shape} along one "
                f"axis, got a block of shape {samples.shape}")
        n = samples.shape[axis]
        if n == 0:
            return
        block = StreamingMoments(self.shape)
        block.count = int(n)
        block.mean = np.mean(samples, axis=axis)
        block.m2 = np.var(samples, axis=axis) * n
        block.minimum = np.min(samples, axis=axis)
        block.maximum = np.max(samples, axis=axis)
        self.merge(block)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold *other*'s state into this one (exact Chan parallel merge)."""
        if other.shape != self.shape:
            raise AnalysisError(
                f"cannot merge accumulators of shapes {self.shape} and "
                f"{other.shape}")
        if other.count == 0:
            return self
        if self.count == 0:
            # Adopt the other state verbatim so a single-shard fold is
            # bit-identical to the shard's own statistics.
            self.count = other.count
            self.mean = other.mean.copy()
            self.m2 = other.m2.copy()
            self.minimum = other.minimum.copy()
            self.maximum = other.maximum.copy()
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean = self.mean + delta * (other.count / total)
        self.m2 = (self.m2 + other.m2
                   + delta * delta * (self.count * other.count / total))
        self.count = total
        self.minimum = np.minimum(self.minimum, other.minimum)
        self.maximum = np.maximum(self.maximum, other.maximum)
        return self

    @property
    def variance(self) -> np.ndarray:
        """Population variance (``ddof=0``), zeros when empty."""
        if self.count == 0:
            return np.zeros(self.shape)
        return self.m2 / self.count

    @property
    def sample_variance(self) -> np.ndarray:
        """Unbiased sample variance (zeros with fewer than two samples)."""
        if self.count < 2:
            return np.zeros(self.shape)
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> np.ndarray:
        """Population standard deviation."""
        return np.sqrt(self.variance)

    def to_dict(self) -> dict:
        """JSON-friendly state (arrays as nested lists)."""
        return {
            "__accumulator__": "StreamingMoments",
            "shape": list(self.shape),
            "count": int(self.count),
            "mean": self.mean.tolist(),
            "m2": self.m2.tolist(),
            "minimum": self.minimum.tolist(),
            "maximum": self.maximum.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingMoments":
        """Rebuild a state from :meth:`to_dict` output (exact round trip)."""
        _check_tag(data, "StreamingMoments")
        shape = tuple(data["shape"])
        state = cls(shape)
        state.count = int(data["count"])
        state.mean = np.asarray(data["mean"], dtype=float).reshape(shape)
        state.m2 = np.asarray(data["m2"], dtype=float).reshape(shape)
        state.minimum = np.asarray(data["minimum"],
                                   dtype=float).reshape(shape)
        state.maximum = np.asarray(data["maximum"],
                                   dtype=float).reshape(shape)
        return state

    def __repr__(self) -> str:
        return (f"StreamingMoments(shape={self.shape}, count={self.count})")


class StreamingHistogram:
    """Fixed-bin streaming histogram with exact (integer-count) merges.

    Bin edges are fixed at construction; samples outside the edges are
    tallied in ``underflow`` / ``overflow`` rather than silently dropped,
    so merged shard histograms account for every sample.  Merging adds
    counts and is therefore *exactly* order- and shard-insensitive.
    """

    __slots__ = ("edges", "counts", "underflow", "overflow")

    def __init__(self, edges):
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ConfigurationError(
                "histogram needs a 1-D array of at least two bin edges")
        if np.any(np.diff(edges) <= 0.0):
            raise ConfigurationError(
                "histogram bin edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(edges.size - 1, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    @property
    def total(self) -> int:
        """All samples seen, including under/overflow."""
        return int(self.counts.sum()) + self.underflow + self.overflow

    def update(self, samples) -> None:
        """Bin a batch of samples (scalars or any-shape arrays)."""
        samples = np.asarray(samples, dtype=float).ravel()
        if samples.size == 0:
            return
        counts, _ = np.histogram(samples, bins=self.edges)
        self.counts += counts
        self.underflow += int(np.count_nonzero(samples < self.edges[0]))
        # np.histogram treats the final edge as inclusive; count strictly
        # beyond it as overflow to match.
        self.overflow += int(np.count_nonzero(samples > self.edges[-1]))

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Add *other*'s counts into this histogram (edges must match)."""
        if (other.edges.shape != self.edges.shape
                or not np.array_equal(other.edges, self.edges)):
            raise AnalysisError(
                "cannot merge histograms with different bin edges")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    def density(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(centers, density)`` normalised over the binned range.

        Matches :func:`repro.numerics.stats.empirical_density` semantics:
        samples outside the edges are excluded from the normalisation.
        """
        total = float(self.counts.sum())
        if total == 0.0:
            raise AnalysisError("no samples fell inside the histogram range")
        widths = np.diff(self.edges)
        centers = 0.5 * (self.edges[:-1] + self.edges[1:])
        return centers, self.counts / (total * widths)

    def tail_fraction(self, threshold: float) -> float:
        """Fraction of all samples strictly above *threshold*.

        *threshold* must coincide with a bin edge (within one part in
        10^12), because the histogram cannot split a bin after the fact.
        """
        if self.total == 0:
            raise AnalysisError("histogram is empty")
        matches = np.isclose(self.edges, threshold, rtol=1e-12, atol=1e-12)
        if not np.any(matches):
            raise AnalysisError(
                f"threshold {threshold:g} is not a histogram bin edge; "
                "tail fractions are exact only at edges")
        index = int(np.argmax(matches))
        above = int(self.counts[index:].sum()) + self.overflow
        return above / self.total

    def to_dict(self) -> dict:
        """JSON-friendly state (arrays as lists)."""
        return {
            "__accumulator__": "StreamingHistogram",
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "underflow": int(self.underflow),
            "overflow": int(self.overflow),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingHistogram":
        """Rebuild a state from :meth:`to_dict` output (exact round trip)."""
        _check_tag(data, "StreamingHistogram")
        state = cls(np.asarray(data["edges"], dtype=float))
        state.counts = np.asarray(data["counts"], dtype=np.int64)
        state.underflow = int(data["underflow"])
        state.overflow = int(data["overflow"])
        return state

    def __repr__(self) -> str:
        return (f"StreamingHistogram(bins={self.counts.size}, "
                f"total={self.total})")


class TimeWeightedMoments(WeightedStatistics):
    """:class:`~repro.numerics.stats.WeightedStatistics` plus merge/serde.

    The update arithmetic is inherited unchanged, so a streamed
    time-average folds the exact float sequence the full-history
    ``TimeSeriesTrace.time_average`` would -- bit-identical results when
    the same ``(value, duration)`` pairs arrive in the same order.  The
    merge is the weighted Chan combination.
    """

    def merge(self, other: "TimeWeightedMoments") -> "TimeWeightedMoments":
        """Fold *other*'s state into this one (weighted Chan merge)."""
        if other._weight_sum == 0.0:
            return self
        if self._weight_sum == 0.0:
            self._weight_sum = other._weight_sum
            self._mean = other._mean
            self._m2 = other._m2
            return self
        total = self._weight_sum + other._weight_sum
        delta = other._mean - self._mean
        self._mean = self._mean + delta * (other._weight_sum / total)
        self._m2 = (self._m2 + other._m2
                    + delta * delta
                    * (self._weight_sum * other._weight_sum / total))
        self._weight_sum = total
        return self

    def to_dict(self) -> dict:
        """JSON-friendly state."""
        return {
            "__accumulator__": "TimeWeightedMoments",
            "weight_sum": float(self._weight_sum),
            "mean": float(self._mean),
            "m2": float(self._m2),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimeWeightedMoments":
        """Rebuild a state from :meth:`to_dict` output (exact round trip)."""
        _check_tag(data, "TimeWeightedMoments")
        state = cls()
        state._weight_sum = float(data["weight_sum"])
        state._mean = float(data["mean"])
        state._m2 = float(data["m2"])
        return state

    def copy(self) -> "TimeWeightedMoments":
        """Independent copy of the current state."""
        return TimeWeightedMoments.from_dict(self.to_dict())

    def __repr__(self) -> str:
        return (f"TimeWeightedMoments(weight={self._weight_sum:g}, "
                f"mean={self._mean:g})")


def _check_tag(data: dict, expected: str) -> None:
    tag = data.get("__accumulator__")
    if tag != expected:
        raise ConfigurationError(
            f"cannot revive accumulator state tagged {tag!r} as {expected}")
