"""Packet records exchanged between sources and the bottleneck."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Packet"]


@dataclass(slots=True)
class Packet:
    """A data packet travelling from a source through the bottleneck.

    Attributes
    ----------
    source_id:
        Index of the originating source.
    sequence_number:
        Per-source sequence number (used by window-based sources to match
        acknowledgements to outstanding packets).
    creation_time:
        Simulated time at which the source emitted the packet.
    size:
        Packet size in service units (a size of 1.0 means the bottleneck
        serves one such packet per ``1/μ`` time units).
    congestion_marked:
        Set by the bottleneck when the queue exceeded the marking threshold
        at arrival -- the explicit feedback bit of the DECbit scheme.
    enqueue_time, departure_time:
        Filled in by the bottleneck for delay accounting; ``None`` if the
        packet was dropped.
    dropped:
        True when the packet was discarded because the buffer was full.
    """

    source_id: int
    sequence_number: int
    creation_time: float
    size: float = 1.0
    congestion_marked: bool = False
    enqueue_time: Optional[float] = None
    departure_time: Optional[float] = None
    dropped: bool = False

    def queueing_delay(self) -> Optional[float]:
        """Time the packet spent at the bottleneck, or ``None`` if not yet served."""
        if self.departure_time is None or self.enqueue_time is None:
            return None
        return self.departure_time - self.enqueue_time

    def end_to_end_delay(self) -> Optional[float]:
        """Delay from creation to departure, or ``None`` if not yet served."""
        if self.departure_time is None:
            return None
        return self.departure_time - self.creation_time
