"""Packet-level discrete-event simulation substrate.

The paper explains phenomena observed in packet-level systems -- Jacobson's
BSD TCP measurements and Zhang's protocol simulations -- with a continuous
Fokker-Planck model.  To close the loop this subpackage provides a
self-contained discrete-event simulator of the same setting:

* a bottleneck node with a FIFO queue and (optionally finite) buffer,
* rate-based sources running any :class:`repro.control.RateControl` law,
* window-based sources running any :class:`repro.control.WindowControl` law
  (Jacobson TCP-style with implicit loss feedback, DECbit with explicit
  congestion bits),
* feedback/acknowledgement channels with per-source propagation delay, and
* a trace/metrics layer recording queue length, per-source throughput and
  loss over time.

The simulator validates the continuous models: the fairness, oscillation and
delay-unfairness experiments all have a packet-level counterpart.
"""

from .events import Event, EventQueue, PeriodicTimer, ReferenceEventQueue
from .packet import Packet
from .random_streams import (
    BufferedJitter,
    RandomStreams,
    child_seed_sequence,
    child_seed_sequences,
    derive_child_seed,
    derive_child_seeds,
)
from .trace import TimeSeriesTrace, SimulationTrace
from .queue_node import BottleneckQueue
from .feedback import FeedbackChannel
from .source import RateSource, WindowSource
from .network import NetworkConfig, SourceConfig
from .simulator import EVENT_ENGINES, Simulator, SimulationResult
from .topology import MultiHopConfig, NodeConfig, Route
from .multihop import MultiHopResult, MultiHopSimulator, parking_lot_scenario
from .scenarios import (
    ScenarioSpec,
    available_scenarios,
    build_scenario,
    chain_scenario,
    dumbbell_scenario,
    get_scenario,
    random_mesh_scenario,
    register_scenario,
)

__all__ = [
    "NodeConfig",
    "Route",
    "MultiHopConfig",
    "MultiHopSimulator",
    "MultiHopResult",
    "parking_lot_scenario",
    "Event",
    "EventQueue",
    "PeriodicTimer",
    "ReferenceEventQueue",
    "EVENT_ENGINES",
    "Packet",
    "BufferedJitter",
    "RandomStreams",
    "child_seed_sequence",
    "child_seed_sequences",
    "derive_child_seed",
    "derive_child_seeds",
    "TimeSeriesTrace",
    "SimulationTrace",
    "BottleneckQueue",
    "FeedbackChannel",
    "RateSource",
    "WindowSource",
    "NetworkConfig",
    "SourceConfig",
    "Simulator",
    "SimulationResult",
    "ScenarioSpec",
    "available_scenarios",
    "build_scenario",
    "chain_scenario",
    "dumbbell_scenario",
    "get_scenario",
    "random_mesh_scenario",
    "register_scenario",
]
