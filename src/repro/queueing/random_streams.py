"""Seeded random-variate streams for the discrete-event simulator.

Each stochastic element of the simulation (per-source packet spacing jitter,
service-time variation) draws from its own named stream so that changing one
element's randomness does not perturb the others -- the standard
common-random-numbers discipline for comparing protocol variants.

The module also provides the project's canonical *child-seed derivation*
helpers.  Anything that splits work across shards or worker processes
(:func:`repro.stochastic.run_ensemble`, the :mod:`repro.runner` job matrix)
derives per-shard seeds here, via :class:`numpy.random.SeedSequence` spawn
keys rather than naive ``seed + i`` arithmetic, so child streams are
statistically independent and reproducible regardless of execution order or
process boundaries.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "BufferedJitter",
    "RandomStreams",
    "child_seed_sequence",
    "child_seed_sequences",
    "derive_child_seed",
    "derive_child_seeds",
]

SpawnKeyElement = Union[int, str]


def _stable_name_key(name: str) -> int:
    """Map a stream/shard name to a stable 32-bit integer.

    Uses SHA-256 rather than the built-in ``hash`` so the mapping is identical
    across processes and interpreter runs (``hash(str)`` is salted per
    process, which would silently break cross-process reproducibility).
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def _normalise_spawn_key(key: Sequence[SpawnKeyElement]) -> Tuple[int, ...]:
    elements = []
    for element in key:
        if isinstance(element, bool) or not isinstance(element, (int, str)):
            raise ConfigurationError(
                f"spawn-key elements must be ints or strings, got {element!r}")
        if isinstance(element, str):
            elements.append(_stable_name_key(element))
        else:
            if element < 0:
                raise ConfigurationError(
                    f"integer spawn-key elements must be non-negative, "
                    f"got {element}")
            elements.append(int(element))
    return tuple(elements)


def child_seed_sequence(master_seed: int,
                        key: Sequence[SpawnKeyElement] = ()
                        ) -> np.random.SeedSequence:
    """Return the :class:`~numpy.random.SeedSequence` child for *key*.

    The child is identified by its spawn key, so ``child_seed_sequence(s,
    (2,))`` is the same stream whether or not siblings ``(0,)`` and ``(1,)``
    were ever created -- derivation is order-independent by construction.
    String key elements are allowed and hashed stably.
    """
    if master_seed < 0:
        raise ConfigurationError("master seed must be non-negative")
    return np.random.SeedSequence(int(master_seed),
                                  spawn_key=_normalise_spawn_key(key))


def child_seed_sequences(master_seed: int, n_children: int,
                         key: Sequence[SpawnKeyElement] = ()
                         ) -> List[np.random.SeedSequence]:
    """Return *n_children* sibling seed sequences under a common prefix key.

    Child ``i`` has spawn key ``key + (i,)``; it depends only on the master
    seed and its own index, never on how many siblings exist or in which
    order they are instantiated.
    """
    if n_children < 1:
        raise ConfigurationError("n_children must be at least 1")
    prefix = tuple(key)
    return [child_seed_sequence(master_seed, prefix + (index,))
            for index in range(n_children)]


def derive_child_seed(master_seed: int,
                      key: Sequence[SpawnKeyElement] = ()) -> int:
    """Derive one deterministic 63-bit integer child seed for *key*."""
    state = child_seed_sequence(master_seed, key).generate_state(2, np.uint32)
    return (int(state[0]) | (int(state[1]) << 32)) & (2 ** 63 - 1)


def derive_child_seeds(master_seed: int, n_children: int,
                       key: Sequence[SpawnKeyElement] = ()) -> List[int]:
    """Derive *n_children* deterministic integer child seeds (spawn-key based)."""
    return [derive_child_seed(master_seed, tuple(key) + (index,))
            for index in range(n_children)]


class BufferedJitter:
    """Per-packet jitter factors served from block-refilled uniform draws.

    ``Generator.uniform(low, high, n)`` consumes the identical bit-stream
    positions as *n* scalar ``uniform(low, high)`` calls, so serving factors
    from a block buffer is bit-identical to the seed's draw-per-packet
    pattern while amortising the numpy call overhead over ``block_size``
    packets.  One instance owns one named stream, so refill timing cannot
    interleave with other consumers.
    """

    __slots__ = ("_generator", "_jitter_fraction", "_block_size", "_buffer",
                 "_index")

    def __init__(self, generator: np.random.Generator,
                 jitter_fraction: float, block_size: int = 256):
        if jitter_fraction <= 0.0:
            raise ConfigurationError("jitter_fraction must be positive")
        if block_size < 1:
            raise ConfigurationError("block_size must be at least 1")
        self._generator = generator
        self._jitter_fraction = float(jitter_fraction)
        self._block_size = int(block_size)
        self._buffer: List[float] = []
        self._index = 0

    def next_factor(self) -> float:
        """The next multiplicative factor ``1 + U(-j, +j)`` as a float."""
        index = self._index
        buffer = self._buffer
        if index >= len(buffer):
            jitter = self._jitter_fraction
            buffer = self._generator.uniform(-jitter, jitter,
                                             self._block_size).tolist()
            self._buffer = buffer
            index = 0
        self._index = index + 1
        return 1.0 + buffer[index]


class RandomStreams:
    """A family of independently seeded :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed.  Each named stream derives its own child seed from the
        master seed and the stream name, so streams are reproducible and
        independent of the order in which they are first requested.
    """

    def __init__(self, seed: int = 12345):
        if seed < 0:
            raise ConfigurationError("seed must be non-negative")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*.

        The child seed is derived with the stable spawn-key scheme of
        :func:`child_seed_sequence`, so the same ``(seed, name)`` pair yields
        the same stream in every process and interpreter run.
        """
        if name not in self._streams:
            child = child_seed_sequence(self._seed, (name,))
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential variate with the given *mean* from stream *name*."""
        if mean <= 0.0:
            raise ConfigurationError("exponential mean must be positive")
        return float(self.stream(name).exponential(mean))

    def deterministic(self, _name: str, value: float) -> float:
        """Return *value* unchanged (deterministic 'distribution' helper)."""
        return float(value)

    def jitter_factors(self, name: str, jitter_fraction: float,
                       block_size: int = 256) -> BufferedJitter:
        """A :class:`BufferedJitter` over stream *name* (hot-path variant).

        Draws the same variates as repeated :meth:`uniform_jitter` calls on
        the same stream; do not mix the two on one name within a run.
        """
        return BufferedJitter(self.stream(name), jitter_fraction, block_size)

    def uniform_jitter(self, name: str, base: float, jitter_fraction: float) -> float:
        """Return *base* perturbed by a uniform factor in ``±jitter_fraction``."""
        if jitter_fraction < 0.0:
            raise ConfigurationError("jitter_fraction must be non-negative")
        if jitter_fraction == 0.0:
            return float(base)
        factor = 1.0 + self.stream(name).uniform(-jitter_fraction, jitter_fraction)
        return float(base * factor)
