"""Seeded random-variate streams for the discrete-event simulator.

Each stochastic element of the simulation (per-source packet spacing jitter,
service-time variation) draws from its own named stream so that changing one
element's randomness does not perturb the others -- the standard
common-random-numbers discipline for comparing protocol variants.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independently seeded :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed.  Each named stream derives its own child seed from the
        master seed and the stream name, so streams are reproducible and
        independent of the order in which they are first requested.
    """

    def __init__(self, seed: int = 12345):
        if seed < 0:
            raise ConfigurationError("seed must be non-negative")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*."""
        if name not in self._streams:
            child_seed = np.random.SeedSequence(
                [self._seed, abs(hash(name)) % (2 ** 31)])
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential variate with the given *mean* from stream *name*."""
        if mean <= 0.0:
            raise ConfigurationError("exponential mean must be positive")
        return float(self.stream(name).exponential(mean))

    def deterministic(self, _name: str, value: float) -> float:
        """Return *value* unchanged (deterministic 'distribution' helper)."""
        return float(value)

    def uniform_jitter(self, name: str, base: float, jitter_fraction: float) -> float:
        """Return *base* perturbed by a uniform factor in ``±jitter_fraction``."""
        if jitter_fraction < 0.0:
            raise ConfigurationError("jitter_fraction must be non-negative")
        if jitter_fraction == 0.0:
            return float(base)
        factor = 1.0 + self.stream(name).uniform(-jitter_fraction, jitter_fraction)
        return float(base * factor)
