"""The discrete-event simulator tying sources, bottleneck and feedback together.

Given a :class:`NetworkConfig`, :class:`Simulator` builds the bottleneck, one
source object per :class:`SourceConfig` (rate-based or window-based), wires
the acknowledgement / queue-report feedback channels with their per-source
delays, runs the event loop for the requested horizon and returns a
:class:`SimulationResult` with the recorded traces and summary metrics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..control.registry import create_control
from ..control.window import DECbitWindow, JacobsonWindow
from ..exceptions import ConfigurationError
from ..health import HealthMonitor, consume_numerical_fault
from ..health.report import HealthLog
from ..multisource.fairness import jain_fairness_index
from .events import EVENT_ENGINES, resolve_engine
from .feedback import FeedbackChannel
from .network import NetworkConfig, SourceConfig
from .packet import Packet
from .queue_node import BottleneckQueue
from .random_streams import RandomStreams
from .source import RateSource, WindowSource
from .trace import SimulationTrace

__all__ = ["Simulator", "SimulationResult", "EVENT_ENGINES"]


@dataclass
class SimulationResult:
    """Traces and summary metrics from one simulation run.

    Attributes
    ----------
    config:
        The configuration that produced this result.
    trace:
        The recorded time series (queue length, per-source rate/window) and
        counters.
    duration:
        Simulated time covered by the run.
    throughputs:
        Delivered packets per unit time for each source, keyed by index.
    """

    config: NetworkConfig
    trace: SimulationTrace
    duration: float
    throughputs: Dict[int, float]
    events_executed: int = 0
    health: Optional[HealthLog] = None

    @property
    def mean_queue(self) -> float:
        """Time-average bottleneck queue length over the run.

        Available under ``retention="full"`` and ``"moments"``; raises
        :class:`~repro.exceptions.AnalysisError` under ``"none"``.
        """
        return self.trace.queue_length.time_average(0.0, self.duration)

    @property
    def mean_queue_length(self) -> float:
        """Deprecated alias of :attr:`mean_queue`."""
        warnings.warn(
            "SimulationResult.mean_queue_length is deprecated; use "
            "SimulationResult.mean_queue", DeprecationWarning, stacklevel=2)
        return self.mean_queue

    @property
    def total_losses(self) -> int:
        """Total packets dropped at the bottleneck."""
        return int(sum(self.trace.losses.values()))

    def throughput_list(self) -> List[float]:
        """Per-source throughputs as a list ordered by source index."""
        return [self.throughputs[i] for i in sorted(self.throughputs)]

    def fairness_index(self) -> float:
        """Jain fairness index of the per-source throughputs."""
        return jain_fairness_index(self.throughput_list())

    def utilization(self) -> float:
        """Fraction of the bottleneck capacity carried as useful throughput."""
        return float(sum(self.throughput_list())) / self.config.service_rate

    def queue_length_series(self, n_samples: int = 500
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Queue length resampled on a uniform time grid (for plots/benches)."""
        times = np.linspace(0.0, self.duration, n_samples)
        return times, self.trace.queue_length.resample(times)


class Simulator:
    """Builds and runs one packet-level simulation from a :class:`NetworkConfig`.

    Parameters
    ----------
    config:
        The declarative network description.
    engine:
        Event-engine selector (see :data:`EVENT_ENGINES`): ``"fast"``
        (default) or ``"reference"``.  Both engines yield bit-identical
        traces for the same config and seed; the reference engine exists
        for differential tests and the scaling benchmark.
    retention:
        Trace retention policy: ``"full"`` keeps every recorded sample
        (bit-identical to the pre-dataplane behaviour), ``"moments"``
        streams time-weighted statistics with O(1) memory per series,
        ``"none"`` keeps only packet counters and last values.
    memmap_dir:
        Under ``retention="full"``, spill trace columns to ``numpy.memmap``
        files in this directory instead of RAM.
    health:
        Numerical health policy (see :mod:`repro.health`): ``""`` defers
        to ``REPRO_HEALTH`` / the ``observe`` default; ``"off"`` runs the
        event loop in one unmonitored ``run_until`` call, bit-identical
        to the pre-health engine.  Monitored modes split the horizon into
        a few segments and check queue non-negativity, the event budget
        and sim-time progress at each boundary.
    max_events:
        Optional total-event budget; exceeding it fires the
        ``event-budget`` invariant (abort under ``strict``).  ``None``
        (default) disables the budget.
    """

    #: Segment count for monitored runs; checks run at each boundary.
    HEALTH_SEGMENTS = 8

    def __init__(self, config: NetworkConfig, engine: str = "fast",
                 retention: str = "full",
                 memmap_dir: Optional[str] = None,
                 health: str = "",
                 max_events: Optional[int] = None):
        self.config = config
        self.engine = engine
        self.health = health
        self.max_events = max_events
        self.events = resolve_engine(engine)()
        self.trace = SimulationTrace(retention=retention,
                                     memmap_dir=memmap_dir)
        self.streams = RandomStreams(config.seed)
        self._sources: List[Union[RateSource, WindowSource]] = []
        self._ack_channels: Dict[int, FeedbackChannel] = {}

        self.bottleneck = BottleneckQueue(
            event_queue=self.events,
            trace=self.trace,
            service_rate=config.service_rate,
            buffer_size=config.buffer_size,
            marking_threshold=config.marking_threshold,
            deterministic_service=config.deterministic_service,
            streams=self.streams,
            on_departure=self._route_ack,
            on_drop=self._route_drop)

        for index, source_config in enumerate(config.sources):
            self._sources.append(self._build_source(index, source_config))

        # Per-source ack routing table: the departure/drop callbacks fire
        # once per packet, so an index into this list replaces the seed's
        # per-packet isinstance checks (entries are None for rate sources,
        # which consume no acknowledgements).
        self._window_acks: List[Union[FeedbackChannel, None]] = [
            self._ack_channels.get(index)
            if isinstance(source, WindowSource) else None
            for index, source in enumerate(self._sources)
        ]
        # Pure rate-source configurations consume no acknowledgements and
        # no drop notifications at all: unhook the per-packet callbacks so
        # the bottleneck skips them entirely.
        if not any(channel is not None for channel in self._window_acks):
            self.bottleneck.on_departure = None
            self.bottleneck.on_drop = None

    # -- construction ------------------------------------------------------

    def _build_window_control(self, source_config: SourceConfig):
        name = source_config.control_name.lower()
        if name in ("jacobson", "tcp"):
            return JacobsonWindow(**source_config.control_kwargs)
        if name in ("decbit", "raja", "ramakrishnan-jain"):
            return DECbitWindow(**source_config.control_kwargs)
        raise ConfigurationError(
            f"unknown window control '{source_config.control_name}'")

    def _build_source(self, index: int, source_config: SourceConfig):
        if source_config.kind == "rate":
            control = create_control(source_config.control_name,
                                     **source_config.control_kwargs)
            source = RateSource(
                source_id=index,
                event_queue=self.events,
                bottleneck=self.bottleneck,
                trace=self.trace,
                streams=self.streams,
                control=control,
                initial_rate=source_config.initial_rate,
                control_interval=source_config.control_interval,
                jitter_fraction=source_config.jitter_fraction)
            channel = FeedbackChannel(self.events, source_config.feedback_delay,
                                      source.receive_queue_report)
            source.feedback_channel = channel
            return source

        control = self._build_window_control(source_config)
        explicit = self.config.marking_threshold is not None
        # The ack channel is created first with a placeholder receiver and
        # rebound once the source object exists.
        channel = FeedbackChannel(self.events, source_config.feedback_delay,
                                  receiver=lambda payload: None)
        source = WindowSource(
            source_id=index,
            event_queue=self.events,
            bottleneck=self.bottleneck,
            trace=self.trace,
            control=control,
            ack_channel=channel,
            initial_window=source_config.initial_window,
            explicit_congestion=explicit)
        channel._receiver = source.handle_ack
        self._ack_channels[index] = channel
        return source

    # -- feedback routing --------------------------------------------------

    def _route_ack(self, packet: Packet) -> None:
        channel = self._window_acks[packet.source_id]
        if channel is not None:
            channel.send(packet)

    def _route_drop(self, packet: Packet) -> None:
        channel = self._window_acks[packet.source_id]
        if channel is not None:
            source = self._sources[packet.source_id]
            # Drop notifications travel over the same return path; model the
            # detection latency as one channel delay.
            def notify(payload=packet, src=source) -> None:
                src.handle_drop(payload)
            self.events.schedule_call(self.events.current_time + channel.delay,
                                      notify)

    # -- execution ---------------------------------------------------------

    @property
    def sources(self) -> List[Union[RateSource, WindowSource]]:
        """The constructed source objects (ordered by index)."""
        return list(self._sources)

    def run(self, duration: float) -> SimulationResult:
        """Run the simulation for *duration* time units and return the result."""
        if duration <= 0.0:
            raise ConfigurationError("duration must be positive")
        monitor = HealthMonitor.create(self.health,
                                       where="queueing.simulator")
        self.trace.queue_length.record(0.0, 0.0)
        if consume_numerical_fault("negative-queue"):
            # Deterministic chaos hook: record an impossible negative
            # queue-length sample halfway through the run so the
            # queue-invariant monitor can be exercised end to end.
            sink = self.trace.queue_length
            self.events.schedule_call(
                duration / 2.0, lambda: sink.append(duration / 2.0, -1.0))
        for source, source_config in zip(self._sources, self.config.sources,
                                         strict=True):
            source.start(at_time=source_config.start_time)
        if monitor is None:
            executed = self.events.run_until(duration)
        else:
            executed = self._run_monitored(duration, monitor)

        throughputs = {
            index: self.trace.deliveries.get(index, 0) / duration
            for index in range(self.config.n_sources)
        }
        return SimulationResult(config=self.config, trace=self.trace,
                                duration=duration, throughputs=throughputs,
                                events_executed=executed,
                                health=monitor.log if monitor else None)

    def _run_monitored(self, duration: float,
                       monitor: HealthMonitor) -> int:
        """Drain the event loop in segments, checking invariants between.

        Segmenting ``run_until`` is behaviour-identical to one call (both
        engines execute every event with time <= t_end and then advance
        ``current_time`` to the boundary); the boundaries simply give the
        monitor deterministic points to look at queue state, the event
        budget and sim-time progress without touching the per-event path.
        """
        executed = 0
        segments = self.HEALTH_SEGMENTS
        for index in range(1, segments + 1):
            segment_end = (duration if index == segments
                           else duration * index / segments)
            executed += self.events.run_until(segment_end)
            now = self.events.current_time
            monitor.check_sim_time(now, segment_end)
            monitor.check_event_budget(executed, self.max_events, now)
            self._check_queue_state(monitor, now)
        return executed

    def _check_queue_state(self, monitor: HealthMonitor, now: float) -> None:
        monitor.check_queue_value("bottleneck",
                                  float(self.bottleneck.queue_length), now)
        sink = self.trace.queue_length
        sample = sink.last_value()
        if sample is not None and sample < 0.0:

            def _clamp() -> None:
                # A corrective sample at the same timestamp zeroes the width
                # of the negative interval under every retention policy.
                sink.append(now, 0.0)

            monitor.check_queue_value("bottleneck/sample", float(sample),
                                      now, repair=_clamp)
