"""Multi-hop discrete-event simulator.

Packets from each window-controlled connection traverse the ordered list of
nodes of their route, with a propagation delay before each hop, and the
acknowledgement of a delivered packet returns to the source after the
route's return-path propagation delay.  Congestion feedback is implicit
(drop notifications) for Jacobson-style routes and explicit (the congestion
bit accumulated across the hops) for DECbit routes.

This is the setting of the measurements and simulations the paper cites:
connections that traverse more hops see their feedback later and adjust
their windows less often per unit time, so they obtain a poorer share of any
resource they share with short connections -- exactly the unfairness the
Fokker-Planck analysis of Section 7 attributes to heterogeneous feedback
delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..control.window import DECbitWindow, JacobsonWindow
from ..exceptions import ConfigurationError
from ..health import HealthMonitor, consume_numerical_fault
from ..health.report import HealthLog
from ..multisource.fairness import jain_fairness_index
from .events import resolve_engine
from .packet import Packet
from .queue_node import BottleneckQueue
from .random_streams import RandomStreams
from .source import WindowSource
from .topology import MultiHopConfig, Route
from .trace import SimulationTrace

__all__ = ["MultiHopSimulator", "MultiHopResult"]


@dataclass
class MultiHopResult:
    """Traces and per-connection metrics of one multi-hop run.

    Attributes
    ----------
    config:
        The topology/route configuration that produced the run.
    duration:
        Simulated time covered.
    throughputs:
        Delivered packets per unit time for each route, keyed by route name.
    hop_counts:
        Hop count of each route, keyed by route name.
    node_mean_queue:
        Time-average queue length of every node.
    losses:
        Packets dropped per route.
    """

    config: MultiHopConfig
    duration: float
    throughputs: Dict[str, float]
    hop_counts: Dict[str, int]
    node_mean_queue: Dict[str, float]
    losses: Dict[str, int]
    events_executed: int = 0
    health: Optional[HealthLog] = None

    def fairness_index(self) -> float:
        """Jain index of the per-route throughputs."""
        return jain_fairness_index(list(self.throughputs.values()))

    def throughput_by_hop_count(self) -> List[tuple]:
        """``(hop_count, route_name, throughput)`` sorted by hop count."""
        rows = [(self.hop_counts[name], name, self.throughputs[name])
                for name in self.throughputs]
        return sorted(rows)

    def long_to_short_ratio(self) -> float:
        """Throughput of the longest route over that of the shortest route."""
        rows = self.throughput_by_hop_count()
        shortest = rows[0][2]
        longest = rows[-1][2]
        if shortest <= 0.0:
            return float("nan")
        return float(longest / shortest)


class MultiHopSimulator:
    """Event-driven simulation of window-controlled connections over a topology.

    Accepts the same ``engine`` selector as :class:`~repro.queueing.Simulator`
    (``"fast"`` or ``"reference"``); both engines produce bit-identical
    traces for a given configuration and seed.  The ``retention`` /
    ``memmap_dir`` knobs match :class:`~repro.queueing.Simulator`: under
    ``"moments"`` the per-node mean queues stay exact (streamed
    time-weighted moments), under ``"none"`` they are reported as NaN.
    """

    #: Segment count for monitored runs; checks run at each boundary.
    HEALTH_SEGMENTS = 8

    def __init__(self, config: MultiHopConfig, engine: str = "fast",
                 retention: str = "full",
                 memmap_dir: Optional[str] = None,
                 health: str = "",
                 max_events: Optional[int] = None):
        self.config = config
        self.engine = engine
        self.retention = retention
        self.memmap_dir = memmap_dir
        self.health = health
        self.max_events = max_events
        self.events = resolve_engine(engine)()
        self.streams = RandomStreams(config.seed)
        # One trace per node for queue lengths; one global trace for
        # per-connection counters and window series.
        self.connection_trace = SimulationTrace(retention=retention,
                                                memmap_dir=memmap_dir)
        self._node_traces: Dict[str, SimulationTrace] = {}
        self._nodes: Dict[str, BottleneckQueue] = {}
        self._routes: List[Route] = list(config.routes)
        self._sources: List[WindowSource] = []
        self._route_of_source: Dict[int, Route] = {}
        # Forwarding is resolved per (node, source) once at build time: the
        # seed scanned ``route.hops.index(node)`` per forwarded packet.
        # Entries are ``(next_node, hop_delay)`` for intermediate hops and
        # ``(None, return_delay)`` at the route's last hop.
        self._forwarding: Dict[str, Dict[int, Tuple[Optional[BottleneckQueue],
                                                    float]]] = {}

        self._build_nodes()
        self._build_sources()
        self._build_forwarding_tables()

    # -- construction ------------------------------------------------------

    def _build_nodes(self) -> None:
        for node_config in self.config.nodes:
            trace = SimulationTrace(retention=self.retention,
                                    memmap_dir=self.memmap_dir)
            self._node_traces[node_config.name] = trace
            node = BottleneckQueue(
                event_queue=self.events,
                trace=trace,
                service_rate=node_config.service_rate,
                buffer_size=node_config.buffer_size,
                marking_threshold=node_config.marking_threshold,
                deterministic_service=True,
                streams=self.streams,
                on_departure=self._make_departure_handler(node_config.name),
                on_drop=self._handle_drop)
            self._nodes[node_config.name] = node

    def _window_control(self, route: Route):
        if route.window_scheme.lower() in ("jacobson", "tcp"):
            return JacobsonWindow()
        return DECbitWindow()

    def _build_sources(self) -> None:
        for index, route in enumerate(self._routes):
            control = self._window_control(route)
            explicit = route.window_scheme.lower() == "decbit"
            first_node = self._nodes[route.hops[0]]
            source = WindowSource(
                source_id=index,
                event_queue=self.events,
                bottleneck=first_node,
                trace=self.connection_trace,
                control=control,
                ack_channel=None,
                initial_window=route.initial_window,
                packet_spacing=0.01,
                explicit_congestion=explicit)
            self._sources.append(source)
            self._route_of_source[index] = route

    def _build_forwarding_tables(self) -> None:
        for name in self._nodes:
            self._forwarding[name] = {}
        for index, route in enumerate(self._routes):
            hops = list(route.hops)
            for position, name in enumerate(hops):
                if position + 1 < len(hops):
                    entry = (self._nodes[hops[position + 1]], route.hop_delay)
                else:
                    entry = (None, route.hop_count * route.hop_delay)
                # setdefault: for (degenerate) routes that revisit a node,
                # the seed forwarded from the first occurrence.
                self._forwarding[name].setdefault(index, entry)

    # -- packet forwarding ---------------------------------------------------

    def _make_departure_handler(self, node_name: str):
        def handle(packet: Packet) -> None:
            self._forward(packet, node_name)
        return handle

    def _forward(self, packet: Packet, node_name: str) -> None:
        next_node, delay = self._forwarding[node_name][packet.source_id]
        if next_node is not None:
            # Clear per-node bookkeeping so the next hop re-times the packet.
            packet.enqueue_time = None
            packet.departure_time = None
            self.events.schedule_call(
                self.events.current_time + delay,
                lambda p=packet, node=next_node: node.receive(p))
        else:
            # Delivered end to end: count it and return the acknowledgement
            # over the route's return path.
            self.connection_trace.count_delivery(packet.source_id)
            source = self._sources[packet.source_id]
            self.events.schedule_call(
                self.events.current_time + delay,
                lambda p=packet, s=source: s.handle_ack(p))

    def _handle_drop(self, packet: Packet) -> None:
        route = self._route_of_source[packet.source_id]
        self.connection_trace.count_loss(packet.source_id)
        source = self._sources[packet.source_id]
        # The sender learns about the loss after roughly one round trip.
        self.events.schedule_call(
            self.events.current_time + route.round_trip_propagation,
            lambda p=packet, s=source: s.handle_drop(p))

    # -- execution -----------------------------------------------------------

    def run(self, duration: float) -> MultiHopResult:
        """Run the multi-hop simulation for *duration* time units."""
        if duration <= 0.0:
            raise ConfigurationError("duration must be positive")
        monitor = HealthMonitor.create(self.health,
                                       where="queueing.multihop")
        for trace in self._node_traces.values():
            trace.queue_length.record(0.0, 0.0)
        if consume_numerical_fault("negative-queue"):
            # Deterministic chaos hook: poison the first node's trace with
            # a negative queue-length sample halfway through the run.
            first = next(iter(self._node_traces))
            sink = self._node_traces[first].queue_length
            self.events.schedule_call(
                duration / 2.0, lambda: sink.append(duration / 2.0, -1.0))
        for source in self._sources:
            source.start(at_time=0.0)
        if monitor is None:
            executed = self.events.run_until(duration)
        else:
            executed = self._run_monitored(duration, monitor)

        deliveries = self.connection_trace.deliveries
        losses = self.connection_trace.losses
        throughputs = {}
        hop_counts = {}
        loss_counts = {}
        for index, route in enumerate(self._routes):
            throughputs[route.source_name] = deliveries.get(index, 0) / duration
            hop_counts[route.source_name] = route.hop_count
            loss_counts[route.source_name] = int(losses.get(index, 0))

        if self.retention == "none":
            node_mean_queue = {name: float("nan")
                               for name in self._node_traces}
        else:
            node_mean_queue = {
                name: trace.queue_length.time_average(0.0, duration)
                for name, trace in self._node_traces.items()
            }
        return MultiHopResult(config=self.config, duration=duration,
                              throughputs=throughputs, hop_counts=hop_counts,
                              node_mean_queue=node_mean_queue,
                              losses=loss_counts, events_executed=executed,
                              health=monitor.log if monitor else None)

    def _run_monitored(self, duration: float,
                       monitor: HealthMonitor) -> int:
        """Segmented event-loop drain with per-boundary invariant checks.

        Behaviour-identical to one ``run_until(duration)`` call (see
        :meth:`Simulator._run_monitored <repro.queueing.simulator.Simulator._run_monitored>`);
        every node's live queue length and most recent recorded sample are
        checked at each segment boundary.
        """
        executed = 0
        segments = self.HEALTH_SEGMENTS
        for index in range(1, segments + 1):
            segment_end = (duration if index == segments
                           else duration * index / segments)
            executed += self.events.run_until(segment_end)
            now = self.events.current_time
            monitor.check_sim_time(now, segment_end)
            monitor.check_event_budget(executed, self.max_events, now)
            for name, node in self._nodes.items():
                monitor.check_queue_value(name, float(node.queue_length), now)
                sink = self._node_traces[name].queue_length
                sample = sink.last_value()
                if sample is not None and sample < 0.0:

                    def _clamp(sink=sink, now=now) -> None:
                        sink.append(now, 0.0)

                    monitor.check_queue_value(f"{name}/sample",
                                              float(sample), now,
                                              repair=_clamp)
        return executed


def parking_lot_scenario(n_extra_hops: int = 2, service_rate: float = 10.0,
                         buffer_size: int = 15, hop_delay: float = 0.2,
                         scheme: str = "jacobson",
                         seed: int = 5) -> MultiHopConfig:
    """The classic 'parking-lot' topology used to study hop-count unfairness.

    One long connection traverses ``n_extra_hops + 1`` nodes; one short
    connection crosses only the shared node (the last one).  The long
    connection therefore has the larger feedback delay and, per Section 7,
    receives the smaller share of the shared node.
    """
    if n_extra_hops < 1:
        raise ConfigurationError("n_extra_hops must be at least 1")
    from .topology import NodeConfig, Route  # local import to avoid cycle noise

    marking = buffer_size / 2.0 if scheme.lower() == "decbit" else None
    node_names = [f"node-{i}" for i in range(n_extra_hops + 1)]
    nodes = [NodeConfig(name=name, service_rate=service_rate,
                        buffer_size=buffer_size, marking_threshold=marking)
             for name in node_names]
    shared = node_names[-1]
    routes = [
        Route(source_name=f"long-{n_extra_hops + 1}-hops", hops=node_names,
              hop_delay=hop_delay, window_scheme=scheme),
        Route(source_name="short-1-hop", hops=[shared], hop_delay=hop_delay,
              window_scheme=scheme),
    ]
    return MultiHopConfig(nodes=nodes, routes=routes, seed=seed)
