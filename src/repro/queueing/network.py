"""Declarative network / scenario configuration for the simulator.

A simulation is described by a :class:`NetworkConfig`: the bottleneck's
service rate, buffer and marking threshold, plus one :class:`SourceConfig`
per sender.  Keeping the description declarative lets the workload layer and
the benchmarks build scenarios without touching simulator internals, and
makes a configuration printable in experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..exceptions import ConfigurationError

__all__ = ["SourceConfig", "NetworkConfig"]


@dataclass(frozen=True)
class SourceConfig:
    """Configuration of one traffic source.

    Attributes
    ----------
    kind:
        ``"rate"`` for a rate-based adaptive source (the paper's model) or
        ``"window"`` for a window-based source (Jacobson / DECbit).
    control_name:
        Registry name of the rate-control law (rate sources) or one of
        ``"jacobson"`` / ``"decbit"`` (window sources).
    control_kwargs:
        Keyword arguments passed to the control-law constructor.
    feedback_delay:
        One-way feedback delay of this source's return path.
    initial_rate:
        Initial sending rate (rate sources) in packets per unit time.
    initial_window:
        Initial window (window sources) in packets.
    control_interval:
        Period of the rate-update loop (rate sources).
    start_time:
        When the source begins transmitting.
    jitter_fraction:
        Packet-spacing jitter for rate sources.
    name:
        Optional label for reports.
    """

    kind: str = "rate"
    control_name: str = "jrj"
    control_kwargs: dict = field(default_factory=dict)
    feedback_delay: float = 0.0
    initial_rate: float = 0.1
    initial_window: float = 1.0
    control_interval: float = 0.5
    start_time: float = 0.0
    jitter_fraction: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("rate", "window"):
            raise ConfigurationError(
                f"source kind must be 'rate' or 'window', got '{self.kind}'")
        if self.feedback_delay < 0.0:
            raise ConfigurationError("feedback_delay must be non-negative")
        if self.start_time < 0.0:
            raise ConfigurationError("start_time must be non-negative")
        if self.kind == "rate" and self.initial_rate < 0.0:
            raise ConfigurationError("initial_rate must be non-negative")
        if self.kind == "window" and self.initial_window < 1.0:
            raise ConfigurationError("initial_window must be at least 1")


@dataclass(frozen=True)
class NetworkConfig:
    """Configuration of the bottleneck and the full set of sources.

    Attributes
    ----------
    service_rate:
        Bottleneck service rate ``μ`` in packets per unit time.
    buffer_size:
        Bottleneck buffer in packets (``None`` = infinite).
    marking_threshold:
        Queue length at which arriving packets are congestion-marked
        (``None`` disables explicit marking).
    deterministic_service:
        Deterministic (true) or exponential (false) service times.
    sources:
        The traffic sources.
    seed:
        Master random seed for all stochastic elements.
    """

    service_rate: float = 10.0
    buffer_size: Optional[int] = None
    marking_threshold: Optional[float] = None
    deterministic_service: bool = True
    sources: List[SourceConfig] = field(default_factory=list)
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.service_rate <= 0.0:
            raise ConfigurationError("service_rate must be positive")
        if self.buffer_size is not None and self.buffer_size < 1:
            raise ConfigurationError("buffer_size must be at least 1")
        if not self.sources:
            raise ConfigurationError("need at least one source")

    @property
    def n_sources(self) -> int:
        """Number of configured sources."""
        return len(self.sources)

    def source_names(self) -> List[str]:
        """Labels of the sources (auto-generated when unnamed)."""
        return [source.name or f"source-{index}"
                for index, source in enumerate(self.sources)]
