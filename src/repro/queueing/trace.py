"""Trace recording for the discrete-event simulator.

Two layers are provided: :class:`TimeSeriesTrace`, a generic append-only
``(time, value)`` series with time-average and resampling helpers, and
:class:`SimulationTrace`, the bundle of series a simulation run produces
(queue length, per-source sending rate / window, cumulative deliveries and
losses) plus the derived metrics the experiments need.

Since the columnar data-plane redesign, ``TimeSeriesTrace`` stores its
samples in a chunk-growing :class:`~repro.dataplane.ColumnarTrace` (two
contiguous ``float64`` columns instead of boxed-float lists; recorded
values are bit-identical either way), and ``SimulationTrace`` applies a
``retention`` policy choosing between full history, streamed time-weighted
moments, or bare counters for every series it owns.  All three sink kinds
implement the :class:`~repro.dataplane.TraceSink` protocol, so the
simulator's hot paths bind ``append`` without knowing the policy.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..dataplane import (
    ColumnarTrace,
    MomentsTraceSink,
    NullTraceSink,
    validate_retention,
)
from ..exceptions import AnalysisError, ConfigurationError
from ..numerics.stats import WeightedStatistics

__all__ = ["TimeSeriesTrace", "SimulationTrace"]


class TimeSeriesTrace:
    """An append-only piecewise-constant time series.

    Values are recorded at (non-decreasing) times; between two records the
    series holds the earlier value, which matches how queue length and
    window size actually evolve in the simulator.  Storage is columnar
    (:class:`~repro.dataplane.ColumnarTrace`); pass ``memmap_dir`` to
    spill the columns to disk for very long runs.
    """

    def __init__(self, name: str = "", memmap_dir: Optional[str] = None):
        self.name = name
        self._store = ColumnarTrace(memmap_dir=memmap_dir)

    def record(self, time: float, value: float) -> None:
        """Append a sample (times must be non-decreasing).

        The monotonicity tolerance is relative (one part in 10^12 of the
        current time scale), so long simulations (t ~ 1e6) are held to the
        same effective precision as short ones.
        """
        last = self._store.last_time
        if last is not None and time < last - 1e-12 * max(1.0, abs(last)):
            raise AnalysisError(
                f"trace '{self.name}' received out-of-order time {time:.6g}")
        self._store.append(float(time), float(value))

    def append(self, time: float, value: float) -> None:
        """Append a sample without the monotonicity check (hot path).

        The simulator's event loop records under a monotone clock, so the
        per-sample ordering check of :meth:`record` is redundant there; the
        caller guarantees non-decreasing times and pre-converted floats.
        """
        self._store.append(time, value)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def times(self) -> np.ndarray:
        """Recorded times as a (read-only, zero-copy) array view."""
        return self._store.times

    @property
    def values(self) -> np.ndarray:
        """Recorded values as a (read-only, zero-copy) array view."""
        return self._store.values

    def last_value(self, default: float = 0.0) -> float:
        """Most recent value, or *default* when the trace is empty."""
        value = self._store.last_value
        return value if value is not None else default

    def time_average(self, t_start: float = 0.0,
                     t_end: Optional[float] = None) -> float:
        """Time-average of the piecewise-constant series over ``[t_start, t_end]``."""
        n = len(self._store)
        if n == 0:
            raise AnalysisError(f"trace '{self.name}' is empty")
        times = self._store.times
        values = self._store.values
        t_end = t_end if t_end is not None else float(times[-1])
        if t_end <= t_start:
            raise AnalysisError("t_end must exceed t_start for a time average")
        stats = WeightedStatistics()
        for i in range(n):
            interval_start = max(times[i], t_start)
            interval_end = t_end if i == n - 1 else min(times[i + 1], t_end)
            if interval_end > interval_start:
                stats.update(values[i], interval_end - interval_start)
        return float(stats.mean)

    def resample(self, sample_times: np.ndarray) -> np.ndarray:
        """Sample the piecewise-constant series at the given times."""
        if len(self._store) == 0:
            raise AnalysisError(f"trace '{self.name}' is empty")
        sample_times = np.asarray(sample_times, dtype=float)
        times = self.times
        values = self.values
        indices = np.searchsorted(times, sample_times, side="right") - 1
        indices = np.clip(indices, 0, len(values) - 1)
        return values[indices]

    def summary(self) -> dict:
        """Cheap structural summary (sample count, window, backing)."""
        summary = self._store.summary()
        summary["retention"] = "full"
        return summary

    def to_dict(self) -> dict:
        """JSON-friendly full-history payload (floats round-trip exactly)."""
        return {
            "__trace__": "TimeSeriesTrace",
            "name": self.name,
            "times": self.times.tolist(),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeriesTrace":
        """Rebuild a trace from :meth:`to_dict` output (exact round trip)."""
        _check_trace_tag(data, "TimeSeriesTrace")
        trace = cls(data.get("name", ""))
        for time, value in zip(data["times"], data["values"], strict=True):
            trace.append(float(time), float(value))
        return trace


TraceSinkImpl = Union[TimeSeriesTrace, MomentsTraceSink, NullTraceSink]

_SINK_TAGS = {
    "TimeSeriesTrace": TimeSeriesTrace,
    "MomentsTraceSink": MomentsTraceSink,
    "NullTraceSink": NullTraceSink,
}


def _check_trace_tag(data: dict, expected: str) -> None:
    tag = data.get("__trace__")
    if tag != expected:
        raise ConfigurationError(
            f"cannot revive trace payload tagged {tag!r} as {expected}")


def _sink_to_dict(sink: TraceSinkImpl) -> dict:
    if isinstance(sink, TimeSeriesTrace):
        return sink.to_dict()
    payload = sink.summary()
    payload["__trace__"] = type(sink).__name__
    payload["name"] = sink.name
    return payload


def _sink_from_dict(data: dict) -> TraceSinkImpl:
    tag = data.get("__trace__")
    if tag == "TimeSeriesTrace":
        return TimeSeriesTrace.from_dict(data)
    if tag == "MomentsTraceSink":
        sink = MomentsTraceSink(data.get("name", ""))
        sink._count = int(data["n_samples"])
        if sink._count:
            sink._first_time = float(data["t_start"])
            sink._last_time = float(data["t_end"])
            sink._last_value = float(data["last_value"])
            from ..dataplane import TimeWeightedMoments
            sink._moments = TimeWeightedMoments.from_dict(data["moments"])
        return sink
    if tag == "NullTraceSink":
        sink = NullTraceSink(data.get("name", ""))
        sink._count = int(data["n_samples"])
        return sink
    raise ConfigurationError(f"unknown trace sink payload tag {tag!r}")


class SimulationTrace:
    """All the series recorded during one simulation run.

    The ``retention`` policy selects the sink implementation for every
    series (``"full"`` keeps histories, ``"moments"`` streams time-weighted
    statistics, ``"none"`` keeps only counts and last values); the packet
    counters are exact under every policy.

    Attributes
    ----------
    queue_length:
        Bottleneck queue length over time (in packets).
    source_rates:
        Per-source sending rate (rate-based sources) or window size
        (window-based sources) over time, keyed by source index.
    deliveries:
        Per-source cumulative count of packets served by the bottleneck.
    losses:
        Per-source cumulative count of packets dropped at the bottleneck.
    """

    def __init__(self, retention: str = "full",
                 memmap_dir: Optional[str] = None):
        self.retention = validate_retention(retention)
        self.memmap_dir = memmap_dir
        self.queue_length = self._make_sink("queue_length")
        self.source_rates: Dict[int, TraceSinkImpl] = {}
        self.deliveries: Dict[int, int] = {}
        self.losses: Dict[int, int] = {}

    def _make_sink(self, name: str) -> TraceSinkImpl:
        if self.retention == "full":
            return TimeSeriesTrace(name, memmap_dir=self.memmap_dir)
        if self.retention == "moments":
            return MomentsTraceSink(name)
        return NullTraceSink(name)

    def rate_trace(self, source_id: int) -> TraceSinkImpl:
        """The (created-on-demand) rate/window trace of one source."""
        if source_id not in self.source_rates:
            self.source_rates[source_id] = self._make_sink(
                f"rate-{source_id}")
        return self.source_rates[source_id]

    def count_delivery(self, source_id: int) -> None:
        """Increment the delivered-packet counter of a source."""
        self.deliveries[source_id] = self.deliveries.get(source_id, 0) + 1

    def count_loss(self, source_id: int) -> None:
        """Increment the dropped-packet counter of a source."""
        self.losses[source_id] = self.losses.get(source_id, 0) + 1

    def throughput(self, source_id: int, duration: float) -> float:
        """Delivered packets per unit time for one source over *duration*."""
        if duration <= 0.0:
            raise AnalysisError("duration must be positive")
        return self.deliveries.get(source_id, 0) / duration

    def loss_rate(self, source_id: int) -> float:
        """Fraction of a source's packets that were dropped."""
        delivered = self.deliveries.get(source_id, 0)
        lost = self.losses.get(source_id, 0)
        total = delivered + lost
        return lost / total if total else 0.0

    def summary(self) -> dict:
        """Cheap whole-run summary: per-series summaries plus counters."""
        return {
            "retention": self.retention,
            "queue_length": self.queue_length.summary(),
            "source_rates": {source_id: sink.summary()
                             for source_id, sink in self.source_rates.items()},
            "deliveries": dict(self.deliveries),
            "losses": dict(self.losses),
        }

    def to_dict(self) -> dict:
        """JSON-friendly payload; exact round trip via :meth:`from_dict`."""
        queue_payload = _sink_to_dict(self.queue_length)
        if not isinstance(self.queue_length, TimeSeriesTrace):
            queue_payload["last_value"] = self.queue_length.last_value()
        rate_payloads = {}
        for source_id, sink in self.source_rates.items():
            payload = _sink_to_dict(sink)
            if not isinstance(sink, TimeSeriesTrace):
                payload["last_value"] = sink.last_value()
            rate_payloads[str(source_id)] = payload
        return {
            "__trace__": "SimulationTrace",
            "retention": self.retention,
            "queue_length": queue_payload,
            "source_rates": rate_payloads,
            "deliveries": {str(k): v for k, v in self.deliveries.items()},
            "losses": {str(k): v for k, v in self.losses.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationTrace":
        """Rebuild a trace bundle from :meth:`to_dict` output."""
        _check_trace_tag(data, "SimulationTrace")
        trace = cls(retention=data.get("retention", "full"))
        trace.queue_length = _sink_from_dict(data["queue_length"])
        trace.source_rates = {
            int(source_id): _sink_from_dict(payload)
            for source_id, payload in data.get("source_rates", {}).items()}
        trace.deliveries = {int(k): int(v)
                            for k, v in data.get("deliveries", {}).items()}
        trace.losses = {int(k): int(v)
                        for k, v in data.get("losses", {}).items()}
        return trace
