"""Trace recording for the discrete-event simulator.

Two layers are provided: :class:`TimeSeriesTrace`, a generic append-only
``(time, value)`` series with time-average and resampling helpers, and
:class:`SimulationTrace`, the bundle of series a simulation run produces
(queue length, per-source sending rate / window, cumulative deliveries and
losses) plus the derived metrics the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import AnalysisError
from ..numerics.stats import WeightedStatistics

__all__ = ["TimeSeriesTrace", "SimulationTrace"]


class TimeSeriesTrace:
    """An append-only piecewise-constant time series.

    Values are recorded at (non-decreasing) times; between two records the
    series holds the earlier value, which matches how queue length and
    window size actually evolve in the simulator.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []
        # Array views of the recorded lists, built lazily and invalidated on
        # record(): the analysis helpers (time averages, resampling,
        # throughput summaries) call .times/.values repeatedly after the run
        # and used to pay a full list->array conversion on every access.
        self._times_array: Optional[np.ndarray] = None
        self._values_array: Optional[np.ndarray] = None

    def record(self, time: float, value: float) -> None:
        """Append a sample (times must be non-decreasing)."""
        if self._times and time < self._times[-1] - 1e-12:
            raise AnalysisError(
                f"trace '{self.name}' received out-of-order time {time:.6g}")
        self._times.append(float(time))
        self._values.append(float(value))
        self._times_array = None
        self._values_array = None

    def append(self, time: float, value: float) -> None:
        """Append a sample without the monotonicity check (hot path).

        The simulator's event loop records under a monotone clock, so the
        per-sample ordering check of :meth:`record` is redundant there; the
        caller guarantees non-decreasing times and pre-converted floats.
        The lazy array views need no explicit invalidation: the ``times`` /
        ``values`` properties rebuild whenever their length falls behind.
        """
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Recorded times as an array (cached until the next record)."""
        if self._times_array is None or len(self._times_array) != len(self._times):
            self._times_array = np.asarray(self._times)
        return self._times_array

    @property
    def values(self) -> np.ndarray:
        """Recorded values as an array (cached until the next record)."""
        if self._values_array is None or len(self._values_array) != len(self._values):
            self._values_array = np.asarray(self._values)
        return self._values_array

    def last_value(self, default: float = 0.0) -> float:
        """Most recent value, or *default* when the trace is empty."""
        return self._values[-1] if self._values else default

    def time_average(self, t_start: float = 0.0,
                     t_end: Optional[float] = None) -> float:
        """Time-average of the piecewise-constant series over ``[t_start, t_end]``."""
        if not self._times:
            raise AnalysisError(f"trace '{self.name}' is empty")
        t_end = t_end if t_end is not None else self._times[-1]
        if t_end <= t_start:
            raise AnalysisError("t_end must exceed t_start for a time average")
        stats = WeightedStatistics()
        times = self._times
        values = self._values
        for i in range(len(times)):
            interval_start = max(times[i], t_start)
            interval_end = t_end if i == len(times) - 1 else min(times[i + 1], t_end)
            if interval_end > interval_start:
                stats.update(values[i], interval_end - interval_start)
        return stats.mean

    def resample(self, sample_times: np.ndarray) -> np.ndarray:
        """Sample the piecewise-constant series at the given times."""
        if not self._times:
            raise AnalysisError(f"trace '{self.name}' is empty")
        sample_times = np.asarray(sample_times, dtype=float)
        times = self.times
        values = self.values
        indices = np.searchsorted(times, sample_times, side="right") - 1
        indices = np.clip(indices, 0, len(values) - 1)
        return values[indices]


@dataclass
class SimulationTrace:
    """All the time series recorded during one simulation run.

    Attributes
    ----------
    queue_length:
        Bottleneck queue length over time (in packets).
    source_rates:
        Per-source sending rate (rate-based sources) or window size
        (window-based sources) over time, keyed by source index.
    deliveries:
        Per-source cumulative count of packets served by the bottleneck.
    losses:
        Per-source cumulative count of packets dropped at the bottleneck.
    """

    queue_length: TimeSeriesTrace = field(
        default_factory=lambda: TimeSeriesTrace("queue_length"))
    source_rates: Dict[int, TimeSeriesTrace] = field(default_factory=dict)
    deliveries: Dict[int, int] = field(default_factory=dict)
    losses: Dict[int, int] = field(default_factory=dict)

    def rate_trace(self, source_id: int) -> TimeSeriesTrace:
        """The (created-on-demand) rate/window trace of one source."""
        if source_id not in self.source_rates:
            self.source_rates[source_id] = TimeSeriesTrace(f"rate-{source_id}")
        return self.source_rates[source_id]

    def count_delivery(self, source_id: int) -> None:
        """Increment the delivered-packet counter of a source."""
        self.deliveries[source_id] = self.deliveries.get(source_id, 0) + 1

    def count_loss(self, source_id: int) -> None:
        """Increment the dropped-packet counter of a source."""
        self.losses[source_id] = self.losses.get(source_id, 0) + 1

    def throughput(self, source_id: int, duration: float) -> float:
        """Delivered packets per unit time for one source over *duration*."""
        if duration <= 0.0:
            raise AnalysisError("duration must be positive")
        return self.deliveries.get(source_id, 0) / duration

    def loss_rate(self, source_id: int) -> float:
        """Fraction of a source's packets that were dropped."""
        delivered = self.deliveries.get(source_id, 0)
        lost = self.losses.get(source_id, 0)
        total = delivered + lost
        return lost / total if total else 0.0
