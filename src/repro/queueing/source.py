"""Traffic sources: rate-based and window-based adaptive senders.

:class:`RateSource` is the packet-level realisation of the paper's model: it
emits packets at its current rate ``λ`` and periodically adjusts ``λ``
according to a :class:`repro.control.RateControl` law evaluated at the most
recent (delayed) queue-length report it has received.

:class:`WindowSource` is the original window formulation (Equation 1): it
keeps up to ``window`` packets outstanding and adjusts the window on each
acknowledgement (additive increase) or congestion indication (multiplicative
decrease) through a :class:`repro.control.WindowControl` law.  Congestion is
signalled either implicitly (a drop notification, the Jacobson/TCP case) or
explicitly (the congestion bit carried by the acknowledgement, the DECbit
case).

Both sources sit on the per-packet hot path of runs with hundreds of
senders, so they use ``__slots__``, schedule their sends through the
engine's fire-and-forget path with bound methods cached at construction,
and resolve per-source stream names and rate traces once instead of
formatting/looking them up per packet.  The rate-control loop runs on a
:class:`~repro.queueing.events.PeriodicTimer` (one preallocated repeating
event per source).  All floating-point expressions match the seed, so a
given seed produces bit-identical traces.
"""

from __future__ import annotations

from typing import Optional

from ..control.base import RateControl, WindowControl
from ..exceptions import ConfigurationError
from .events import EventQueue
from .feedback import FeedbackChannel
from .packet import Packet
from .queue_node import BottleneckQueue
from .random_streams import RandomStreams
from .trace import SimulationTrace

__all__ = ["RateSource", "WindowSource"]


class RateSource:
    """A source sending at an explicitly controlled rate ``λ(t)``.

    Parameters
    ----------
    source_id:
        Index of this source (used in traces and packets).
    event_queue, bottleneck, trace, streams:
        Simulator plumbing.
    control:
        The rate-adjustment law ``g(q, λ)``.
    initial_rate:
        Starting rate ``λ(0)`` (packets per unit time, non-negative).
    control_interval:
        Period between rate updates; each update applies
        ``λ ← max(λ + g(q_seen, λ) · interval, rate_floor)``.
    feedback_channel:
        Channel over which queue-length reports arrive (its delay is the
        feedback delay ``τ`` of the model).  The source asks the simulator
        to sample the queue each control interval; the report arrives
        ``τ`` later and is used at the next update.
    rate_floor:
        Smallest rate the source will use while active (keeps the sending
        process alive so it can probe again after deep decreases).
    jitter_fraction:
        Relative jitter applied to packet spacing (0 gives perfectly paced
        packets; a positive value models burstiness and feeds the σ² term).
    """

    __slots__ = ("source_id", "_events", "_bottleneck", "_trace", "_streams",
                 "control", "rate", "control_interval", "feedback_channel",
                 "rate_floor", "jitter_fraction", "_sequence",
                 "_last_seen_queue", "packets_sent", "_spacing_stream",
                 "_jitter", "_rate_trace", "_send_action", "_control_timer")

    def __init__(self, source_id: int, event_queue: EventQueue,
                 bottleneck: BottleneckQueue, trace: SimulationTrace,
                 streams: RandomStreams, control: RateControl,
                 initial_rate: float, control_interval: float,
                 feedback_channel: Optional[FeedbackChannel] = None,
                 rate_floor: float = 0.01, jitter_fraction: float = 0.0):
        if initial_rate < 0.0:
            raise ConfigurationError("initial_rate must be non-negative")
        if control_interval <= 0.0:
            raise ConfigurationError("control_interval must be positive")
        if rate_floor <= 0.0:
            raise ConfigurationError("rate_floor must be positive")
        self.source_id = source_id
        self._events = event_queue
        self._bottleneck = bottleneck
        self._trace = trace
        self._streams = streams
        self.control = control
        self.rate = max(float(initial_rate), rate_floor)
        self.control_interval = float(control_interval)
        self.feedback_channel = feedback_channel
        self.rate_floor = float(rate_floor)
        self.jitter_fraction = float(jitter_fraction)
        self._sequence = 0
        self._last_seen_queue = 0.0
        self.packets_sent = 0
        # Hot-path bindings: the seed formatted the jitter stream name and a
        # schedule label per packet; both are constant per source.
        self._spacing_stream = f"spacing-{source_id}"
        self._jitter = (streams.jitter_factors(self._spacing_stream,
                                               self.jitter_fraction)
                        if self.jitter_fraction > 0.0 else None)
        self._rate_trace = trace.rate_trace(source_id)
        self._send_action = self._send_next_packet
        self._control_timer = None

    # -- feedback ---------------------------------------------------------

    def receive_queue_report(self, queue_length: float) -> None:
        """Handle a (possibly delayed) queue-length report."""
        self._last_seen_queue = float(queue_length)

    def _request_feedback(self) -> None:
        """Sample the bottleneck queue and ship the report over the channel."""
        queue_length = float(self._bottleneck.queue_length)
        if self.feedback_channel is not None:
            self.feedback_channel.send(queue_length)
        else:
            self.receive_queue_report(queue_length)

    # -- control loop -----------------------------------------------------

    def start(self, at_time: float = 0.0) -> None:
        """Begin sending and schedule the periodic control updates."""
        self._rate_trace.record(at_time, self.rate)
        self._events.schedule(at_time, self._send_action,
                              label=f"first packet src={self.source_id}")
        self._control_timer = self._events.schedule_periodic(
            at_time + self.control_interval, self.control_interval,
            self._control_update,
            label=f"control update src={self.source_id}")

    def _control_update(self) -> None:
        now = self._events.current_time
        drift = float(self.control.drift(self._last_seen_queue, self.rate))
        self.rate = max(self.rate + drift * self.control_interval,
                        self.rate_floor)
        self._rate_trace.record(now, self.rate)
        self._request_feedback()

    # -- packet emission --------------------------------------------------

    def _send_next_packet(self) -> None:
        events = self._events
        now = events.current_time
        packet = Packet(self.source_id, self._sequence, now)
        self._sequence += 1
        self.packets_sent += 1
        self._bottleneck.receive(packet)

        spacing = 1.0 / max(self.rate, self.rate_floor)
        if self._jitter is not None:
            spacing = spacing * self._jitter.next_factor()
        events.schedule_call(now + spacing, self._send_action)


class WindowSource:
    """A source with a sliding window adjusted per acknowledgement.

    Parameters
    ----------
    source_id, event_queue, bottleneck, trace:
        Simulator plumbing.
    control:
        Window-adjustment law (Jacobson or DECbit style).
    ack_channel:
        Channel over which acknowledgements return (its delay models the
        return path; the forward path delay can be folded in as well).
    initial_window:
        Starting window in packets.
    packet_spacing:
        Minimum spacing between packet emissions, used to avoid sending an
        entire window as a single instantaneous burst (models the sender's
        own link rate).
    explicit_congestion:
        When true the source reacts to the congestion bit on
        acknowledgements (DECbit); when false it reacts to drop
        notifications (Jacobson / TCP-style implicit feedback).
    """

    __slots__ = ("source_id", "_events", "_bottleneck", "_trace", "control",
                 "ack_channel", "window", "packet_spacing",
                 "explicit_congestion", "_sequence", "_outstanding",
                 "packets_sent", "acks_received", "congestion_signals",
                 "_rate_trace", "_fill_action")

    def __init__(self, source_id: int, event_queue: EventQueue,
                 bottleneck: BottleneckQueue, trace: SimulationTrace,
                 control: WindowControl, ack_channel: FeedbackChannel,
                 initial_window: float = 1.0, packet_spacing: float = 0.01,
                 explicit_congestion: bool = False):
        if initial_window < 1.0:
            raise ConfigurationError("initial_window must be at least one packet")
        if packet_spacing <= 0.0:
            raise ConfigurationError("packet_spacing must be positive")
        self.source_id = source_id
        self._events = event_queue
        self._bottleneck = bottleneck
        self._trace = trace
        self.control = control
        self.ack_channel = ack_channel
        self.window = float(initial_window)
        self.packet_spacing = float(packet_spacing)
        self.explicit_congestion = explicit_congestion
        self._sequence = 0
        self._outstanding = 0
        self.packets_sent = 0
        self.acks_received = 0
        self.congestion_signals = 0
        self._rate_trace = trace.rate_trace(source_id)
        self._fill_action = self._fill_window

    def start(self, at_time: float = 0.0) -> None:
        """Record the initial window and start filling it."""
        self._rate_trace.record(at_time, self.window)
        self._events.schedule(at_time, self._fill_action,
                              label=f"start window src={self.source_id}")

    # -- sending ----------------------------------------------------------

    def _fill_window(self) -> None:
        """Send packets until the window is full, spaced by packet_spacing."""
        if self._outstanding >= int(self.window):
            return
        events = self._events
        now = events.current_time
        packet = Packet(self.source_id, self._sequence, now)
        self._sequence += 1
        self._outstanding += 1
        self.packets_sent += 1
        self._bottleneck.receive(packet)
        if self._outstanding < int(self.window):
            events.schedule_call(now + self.packet_spacing, self._fill_action)

    # -- feedback handling -------------------------------------------------

    def handle_ack(self, packet: Packet) -> None:
        """Process an acknowledgement arriving over the ack channel."""
        self.acks_received += 1
        self._outstanding = max(self._outstanding - 1, 0)
        congested = self.explicit_congestion and packet.congestion_marked
        if congested:
            self.congestion_signals += 1
            self.window = self.control.on_congestion(self.window)
        else:
            self.window = self.control.on_ack(self.window)
        self._rate_trace.record(self._events.current_time, self.window)
        self._fill_window()

    def handle_drop(self, _packet: Packet) -> None:
        """Process a drop notification (implicit congestion feedback)."""
        self._outstanding = max(self._outstanding - 1, 0)
        self.congestion_signals += 1
        self.window = self.control.on_congestion(self.window)
        self._rate_trace.record(self._events.current_time, self.window)
        self._fill_window()
