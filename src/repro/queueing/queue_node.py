"""The bottleneck node: a FIFO queue with a single server.

The bottleneck serves packets in arrival order at mean rate ``μ`` (one
packet of size 1 takes ``1/μ`` time units, optionally with exponential
variation to model service-time randomness -- the microscopic origin of the
σ² term of Equation 14).  The buffer may be finite, in which case packets
arriving to a full queue are dropped, and a marking threshold implements the
explicit congestion bit of the DECbit scheme: packets that arrive while the
queue exceeds the threshold carry the congestion indication back to their
source.

This node sits on the simulator's hottest path (two trace samples and one
scheduled completion per served packet), so the per-packet work is kept
allocation-light: completions are scheduled through the engine's
fire-and-forget path with a bound method cached at construction, queue
samples go through the trace's unchecked append, and the service-time
stream is resolved once instead of per draw.  Every floating-point
expression matches the seed implementation so traces stay bit-identical.
"""

from __future__ import annotations

from typing import Callable, Deque, Optional
from collections import deque

from ..exceptions import ConfigurationError
from .events import EventQueue
from .packet import Packet
from .random_streams import RandomStreams
from .trace import SimulationTrace

__all__ = ["BottleneckQueue"]


class BottleneckQueue:
    """Single-server FIFO bottleneck with optional finite buffer and marking.

    Parameters
    ----------
    event_queue:
        The simulator's event queue (used to schedule service completions).
    trace:
        Trace object that receives queue-length samples and loss counts.
    service_rate:
        Mean service rate ``μ`` in packets per unit time.
    buffer_size:
        Maximum number of packets held (including the one in service);
        ``None`` means infinite.
    marking_threshold:
        Queue length at or above which arriving packets get their congestion
        bit set (``None`` disables marking).
    deterministic_service:
        When true every packet takes exactly ``size/μ`` to serve; when false
        service times are exponential with that mean.
    streams:
        Random streams (required only for exponential service).
    on_departure:
        Callback invoked with each served packet (the simulator uses it to
        route acknowledgements back to the sources).
    on_drop:
        Callback invoked with each dropped packet.
    """

    __slots__ = ("_events", "_trace", "service_rate", "buffer_size",
                 "marking_threshold", "deterministic_service", "_streams",
                 "on_departure", "on_drop", "_queue", "_busy",
                 "total_arrivals", "total_departures", "total_drops",
                 "_service_stream", "_record_sample", "_complete_action",
                 "_count_loss", "_count_delivery")

    def __init__(self, event_queue: EventQueue, trace: SimulationTrace,
                 service_rate: float, buffer_size: Optional[int] = None,
                 marking_threshold: Optional[float] = None,
                 deterministic_service: bool = True,
                 streams: Optional[RandomStreams] = None,
                 on_departure: Optional[Callable[[Packet], None]] = None,
                 on_drop: Optional[Callable[[Packet], None]] = None):
        if service_rate <= 0.0:
            raise ConfigurationError("service_rate must be positive")
        if buffer_size is not None and buffer_size < 1:
            raise ConfigurationError("buffer_size must be at least 1")
        if not deterministic_service and streams is None:
            raise ConfigurationError(
                "exponential service requires a RandomStreams instance")
        self._events = event_queue
        self._trace = trace
        self.service_rate = float(service_rate)
        self.buffer_size = buffer_size
        self.marking_threshold = marking_threshold
        self.deterministic_service = deterministic_service
        self._streams = streams
        self.on_departure = on_departure
        self.on_drop = on_drop
        self._queue: Deque[Packet] = deque()
        self._busy = False
        self.total_arrivals = 0
        self.total_departures = 0
        self.total_drops = 0
        # Hot-path bindings resolved once: the "service" stream keeps its
        # seed-identical name-derived state, the queue-length sampler skips
        # the per-record monotonicity check, and the completion callback is
        # one bound method instead of one per scheduled completion.
        self._service_stream = (streams.stream("service")
                                if streams is not None else None)
        self._record_sample = trace.queue_length.append
        self._count_loss = trace.count_loss
        self._count_delivery = trace.count_delivery
        self._complete_action = self._complete_service

    @property
    def queue_length(self) -> int:
        """Current number of packets held (including the one in service)."""
        return len(self._queue)

    def receive(self, packet: Packet) -> None:
        """Handle a packet arriving at the bottleneck at the current time."""
        self.total_arrivals += 1
        held = len(self._queue)

        if (self.marking_threshold is not None
                and held >= self.marking_threshold):
            packet.congestion_marked = True

        if self.buffer_size is not None and held >= self.buffer_size:
            packet.dropped = True
            self.total_drops += 1
            self._count_loss(packet.source_id)
            if self.on_drop is not None:
                self.on_drop(packet)
            return

        packet.enqueue_time = self._events.current_time
        self._queue.append(packet)
        self._record_sample(packet.enqueue_time, float(held + 1))
        if not self._busy:
            self._start_service()

    def _service_time(self, packet: Packet) -> float:
        mean = packet.size / self.service_rate
        if self.deterministic_service:
            return mean
        return float(self._service_stream.exponential(mean))

    def _start_service(self) -> None:
        queue = self._queue
        if not queue:
            self._busy = False
            return
        self._busy = True
        service = self._service_time(queue[0])
        self._events.schedule_call(self._events.current_time + service,
                                   self._complete_action)

    def _complete_service(self) -> None:
        packet = self._queue.popleft()
        now = self._events.current_time
        packet.departure_time = now
        self.total_departures += 1
        self._count_delivery(packet.source_id)
        self._record_sample(now, float(len(self._queue)))
        if self.on_departure is not None:
            self.on_departure(packet)
        self._start_service()
