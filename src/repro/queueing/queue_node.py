"""The bottleneck node: a FIFO queue with a single server.

The bottleneck serves packets in arrival order at mean rate ``μ`` (one
packet of size 1 takes ``1/μ`` time units, optionally with exponential
variation to model service-time randomness -- the microscopic origin of the
σ² term of Equation 14).  The buffer may be finite, in which case packets
arriving to a full queue are dropped, and a marking threshold implements the
explicit congestion bit of the DECbit scheme: packets that arrive while the
queue exceeds the threshold carry the congestion indication back to their
source.
"""

from __future__ import annotations

from typing import Callable, Deque, Optional
from collections import deque

from ..exceptions import ConfigurationError
from .events import EventQueue
from .packet import Packet
from .random_streams import RandomStreams
from .trace import SimulationTrace

__all__ = ["BottleneckQueue"]


class BottleneckQueue:
    """Single-server FIFO bottleneck with optional finite buffer and marking.

    Parameters
    ----------
    event_queue:
        The simulator's event queue (used to schedule service completions).
    trace:
        Trace object that receives queue-length samples and loss counts.
    service_rate:
        Mean service rate ``μ`` in packets per unit time.
    buffer_size:
        Maximum number of packets held (including the one in service);
        ``None`` means infinite.
    marking_threshold:
        Queue length at or above which arriving packets get their congestion
        bit set (``None`` disables marking).
    deterministic_service:
        When true every packet takes exactly ``size/μ`` to serve; when false
        service times are exponential with that mean.
    streams:
        Random streams (required only for exponential service).
    on_departure:
        Callback invoked with each served packet (the simulator uses it to
        route acknowledgements back to the sources).
    on_drop:
        Callback invoked with each dropped packet.
    """

    def __init__(self, event_queue: EventQueue, trace: SimulationTrace,
                 service_rate: float, buffer_size: Optional[int] = None,
                 marking_threshold: Optional[float] = None,
                 deterministic_service: bool = True,
                 streams: Optional[RandomStreams] = None,
                 on_departure: Optional[Callable[[Packet], None]] = None,
                 on_drop: Optional[Callable[[Packet], None]] = None):
        if service_rate <= 0.0:
            raise ConfigurationError("service_rate must be positive")
        if buffer_size is not None and buffer_size < 1:
            raise ConfigurationError("buffer_size must be at least 1")
        if not deterministic_service and streams is None:
            raise ConfigurationError(
                "exponential service requires a RandomStreams instance")
        self._events = event_queue
        self._trace = trace
        self.service_rate = float(service_rate)
        self.buffer_size = buffer_size
        self.marking_threshold = marking_threshold
        self.deterministic_service = deterministic_service
        self._streams = streams
        self.on_departure = on_departure
        self.on_drop = on_drop
        self._queue: Deque[Packet] = deque()
        self._busy = False
        self.total_arrivals = 0
        self.total_departures = 0
        self.total_drops = 0

    @property
    def queue_length(self) -> int:
        """Current number of packets held (including the one in service)."""
        return len(self._queue)

    def _record_queue_length(self) -> None:
        self._trace.queue_length.record(self._events.current_time,
                                        float(self.queue_length))

    def _service_time(self, packet: Packet) -> float:
        mean = packet.size / self.service_rate
        if self.deterministic_service:
            return mean
        return self._streams.exponential("service", mean)

    def receive(self, packet: Packet) -> None:
        """Handle a packet arriving at the bottleneck at the current time."""
        now = self._events.current_time
        self.total_arrivals += 1

        if (self.marking_threshold is not None
                and self.queue_length >= self.marking_threshold):
            packet.congestion_marked = True

        if self.buffer_size is not None and self.queue_length >= self.buffer_size:
            packet.dropped = True
            self.total_drops += 1
            self._trace.count_loss(packet.source_id)
            if self.on_drop is not None:
                self.on_drop(packet)
            return

        packet.enqueue_time = now
        self._queue.append(packet)
        self._record_queue_length()
        if not self._busy:
            self._start_service()

    def _start_service(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue[0]
        completion_time = self._events.current_time + self._service_time(packet)
        self._events.schedule(completion_time, self._complete_service,
                              label=f"service src={packet.source_id} "
                                    f"seq={packet.sequence_number}")

    def _complete_service(self) -> None:
        packet = self._queue.popleft()
        packet.departure_time = self._events.current_time
        self.total_departures += 1
        self._trace.count_delivery(packet.source_id)
        self._record_queue_length()
        if self.on_departure is not None:
            self.on_departure(packet)
        self._start_service()
