"""Multi-hop topology descriptions for the packet-level simulator.

Zhang's simulation study and Jacobson's measurements -- both cited by the
paper as the empirical observations its analysis explains -- were made on
*paths*, not single queues: a connection traverses several store-and-forward
nodes and its feedback (acknowledgement) returns over the same number of
hops.  Two consequences follow, and both are reproduced by the multi-hop
simulator built from these descriptions:

* the feedback delay of a connection grows with its hop count, and
* connections with more hops obtain a poorer share of a shared intermediate
  resource than connections with fewer hops (the unfairness of Section 7).

A topology is a set of named nodes (each a single-server FIFO queue) plus a
set of routes; a route is an ordered list of node names with a propagation
delay per traversed link and for the acknowledgement return path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError

__all__ = ["NodeConfig", "Route", "MultiHopConfig"]


@dataclass(frozen=True)
class NodeConfig:
    """One store-and-forward node (a single-server FIFO queue).

    Attributes
    ----------
    name:
        Unique node name referenced by routes.
    service_rate:
        Service rate in packets per unit time.
    buffer_size:
        Buffer in packets (``None`` = infinite).
    marking_threshold:
        Queue length at which arriving packets are congestion-marked
        (``None`` disables marking; used by DECbit sources).
    """

    name: str
    service_rate: float
    buffer_size: Optional[int] = None
    marking_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node name must be non-empty")
        if self.service_rate <= 0.0:
            raise ConfigurationError("service_rate must be positive")
        if self.buffer_size is not None and self.buffer_size < 1:
            raise ConfigurationError("buffer_size must be at least 1")


@dataclass(frozen=True)
class Route:
    """The path one connection's packets take through the topology.

    Attributes
    ----------
    source_name:
        Label of the connection (used in traces and reports).
    hops:
        Ordered node names the packets traverse.
    hop_delay:
        Propagation delay of each traversed link (applied before every hop
        and once more on the acknowledgement return path per hop).
    window_scheme:
        ``"jacobson"`` (implicit loss feedback) or ``"decbit"`` (explicit
        congestion bit).
    initial_window:
        Starting window in packets.
    """

    source_name: str
    hops: Sequence[str]
    hop_delay: float = 0.1
    window_scheme: str = "jacobson"
    initial_window: float = 2.0

    def __post_init__(self) -> None:
        if not self.hops:
            raise ConfigurationError("a route needs at least one hop")
        if self.hop_delay < 0.0:
            raise ConfigurationError("hop_delay must be non-negative")
        if self.window_scheme.lower() not in ("jacobson", "tcp", "decbit"):
            raise ConfigurationError(
                f"unknown window scheme '{self.window_scheme}'")
        if self.initial_window < 1.0:
            raise ConfigurationError("initial_window must be at least 1")

    @property
    def hop_count(self) -> int:
        """Number of nodes the route traverses."""
        return len(self.hops)

    @property
    def round_trip_propagation(self) -> float:
        """Total propagation delay of data path plus acknowledgement path."""
        return 2.0 * self.hop_count * self.hop_delay


@dataclass(frozen=True)
class MultiHopConfig:
    """A full multi-hop scenario: nodes, routes and the random seed.

    Raises
    ------
    ConfigurationError
        If a route references a node that is not defined, or if names
        collide.
    """

    nodes: Sequence[NodeConfig] = field(default_factory=list)
    routes: Sequence[Route] = field(default_factory=list)
    seed: int = 1234

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("need at least one node")
        if not self.routes:
            raise ConfigurationError("need at least one route")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("node names must be unique")
        known = set(names)
        for route in self.routes:
            missing = [hop for hop in route.hops if hop not in known]
            if missing:
                raise ConfigurationError(
                    f"route '{route.source_name}' references unknown nodes "
                    f"{missing}")
        labels = [route.source_name for route in self.routes]
        if len(set(labels)) != len(labels):
            raise ConfigurationError("route source names must be unique")

    def node_map(self) -> Dict[str, NodeConfig]:
        """Mapping from node name to its configuration."""
        return {node.name: node for node in self.nodes}

    def route_names(self) -> List[str]:
        """Labels of the routes in configuration order."""
        return [route.source_name for route in self.routes]

    def shared_nodes(self) -> List[str]:
        """Names of nodes traversed by more than one route."""
        usage: Dict[str, int] = {}
        for route in self.routes:
            for hop in set(route.hops):
                usage[hop] = usage.get(hop, 0) + 1
        return [name for name, count in usage.items() if count > 1]
