"""Feedback channels: delayed delivery of information back to the sources.

Two kinds of feedback flow back from the bottleneck:

* acknowledgements of served packets (carrying the congestion bit when the
  bottleneck marked them), used by window-based sources, and
* queue-length reports sampled periodically, used by rate-based sources
  (the explicit-feedback formulation the paper's model works in).

Both travel over a :class:`FeedbackChannel`, which simply delivers a payload
to a callback after a per-channel propagation delay.  Heterogeneous delays
across sources -- the Section 7 unfairness scenario -- are expressed by
giving each source its own channel with its own delay.
"""

from __future__ import annotations

from typing import Callable

from ..exceptions import ConfigurationError
from .events import EventQueue

__all__ = ["FeedbackChannel"]


class FeedbackChannel:
    """Delivers feedback payloads to a receiver after a fixed propagation delay.

    Parameters
    ----------
    event_queue:
        The simulator's event queue.
    delay:
        One-way propagation delay of the feedback path (``≥ 0``).
    receiver:
        Callback invoked with the payload when it arrives.
    """

    __slots__ = ("_events", "delay", "_receiver", "delivered_count")

    def __init__(self, event_queue: EventQueue, delay: float,
                 receiver: Callable[[object], None]):
        if delay < 0.0:
            raise ConfigurationError("feedback delay must be non-negative")
        self._events = event_queue
        self.delay = float(delay)
        self._receiver = receiver
        self.delivered_count = 0

    def send(self, payload: object) -> None:
        """Send *payload*; it reaches the receiver ``delay`` time units later."""
        def deliver() -> None:
            self.delivered_count += 1
            self._receiver(payload)

        self._events.schedule_call(self._events.current_time + self.delay,
                                   deliver)
