"""Declarative scenario builders and the network-scenario registry.

A *scenario* is a named, parameterised recipe for a simulation
configuration: single-bottleneck scenarios build a
:class:`~repro.queueing.NetworkConfig` (run through
:class:`~repro.queueing.Simulator`), multi-hop scenarios build a
:class:`~repro.queueing.MultiHopConfig` (run through
:class:`~repro.queueing.MultiHopSimulator`).  The registry gives every
scenario a stable name so the experiment-matrix layer and the CLI
(``repro run des-<scenario>``) can address them declaratively, and so new
topologies plug in without touching the runner:

>>> from repro.queueing.scenarios import build_scenario
>>> config = build_scenario("dumbbell", n_sources=64, seed=3)

Built-in scenarios:

* ``dumbbell`` -- N adaptive rate sources (the paper's JRJ law) sharing one
  bottleneck; the canonical many-sources setting of Section 6 at packet
  level.
* ``parking-lot`` -- one long window-controlled connection crossing several
  hops against a one-hop connection at the shared node (Section 7's
  hop-count unfairness).
* ``chain`` -- an N-hop chain with one end-to-end connection and optional
  per-hop cross traffic.
* ``mesh`` -- a randomised set of routes over a node pool, for scale and
  robustness testing; construction is deterministic in the seed via the
  spawn-key scheme of :mod:`repro.queueing.random_streams`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from .multihop import parking_lot_scenario
from .network import NetworkConfig, SourceConfig
from .random_streams import child_seed_sequence
from .topology import MultiHopConfig, NodeConfig, Route

__all__ = [
    "ScenarioSpec",
    "available_scenarios",
    "build_scenario",
    "chain_scenario",
    "dumbbell_scenario",
    "get_scenario",
    "random_mesh_scenario",
    "register_scenario",
]

ScenarioConfig = Union[NetworkConfig, MultiHopConfig]


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: name, simulator kind and builder.

    Attributes
    ----------
    name:
        Registry key (also the ``des-<name>`` matrix suffix).
    kind:
        ``"single"`` (one bottleneck, :class:`NetworkConfig`) or
        ``"multihop"`` (:class:`MultiHopConfig`).
    description:
        One line for listings.
    build:
        Keyword-only builder returning the configuration object.
    """

    name: str
    kind: str
    description: str
    build: Callable[..., ScenarioConfig]


_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str,
    kind: str,
    description: str,
    build: Callable[..., ScenarioConfig],
) -> ScenarioSpec:
    """Register a scenario builder under *name* and return its spec."""
    if kind not in ("single", "multihop"):
        raise ConfigurationError(
            f"scenario kind must be 'single' or 'multihop', got {kind!r}"
        )
    if name in _SCENARIOS:
        raise ConfigurationError(f"scenario {name!r} is already registered")
    spec = ScenarioSpec(name=name, kind=kind, description=description, build=build)
    _SCENARIOS[name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario spec by name."""
    if name not in _SCENARIOS:
        known = ", ".join(sorted(_SCENARIOS))
        raise ConfigurationError(f"unknown scenario {name!r} (available: {known})")
    return _SCENARIOS[name]


def available_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]


def build_scenario(name: str, **kwargs) -> ScenarioConfig:
    """Build the configuration of scenario *name* with builder overrides."""
    return get_scenario(name).build(**kwargs)


# ---------------------------------------------------------------------------
# Builders.
# ---------------------------------------------------------------------------


def dumbbell_scenario(
    n_sources: int = 16,
    per_source_rate: float = 5.0,
    q_target: float = 10.0,
    c1: float = 0.2,
    control_interval: float = 0.25,
    jitter_fraction: float = 0.1,
    buffer_size: Optional[int] = None,
    seed: int = 7,
) -> NetworkConfig:
    """N homogeneous JRJ rate sources sharing one bottleneck.

    The bottleneck capacity scales with the population
    (``μ = n_sources · per_source_rate``) so per-source dynamics stay
    comparable across sizes, and the aggregate linear-increase gain is held
    at the canonical ``0.05·μ`` by giving each source ``C0 = 0.05·μ/N`` --
    the Section 6 equal-shares setting.  This is the workhorse scaling
    scenario: event counts grow linearly in ``n_sources``.
    """
    if n_sources < 1:
        raise ConfigurationError("n_sources must be at least 1")
    if per_source_rate <= 0.0:
        raise ConfigurationError("per_source_rate must be positive")
    service_rate = per_source_rate * n_sources
    c0 = 0.05 * service_rate / n_sources
    sources = [
        SourceConfig(
            kind="rate",
            control_name="jrj",
            control_kwargs={"c0": c0, "c1": c1, "q_target": q_target},
            initial_rate=service_rate / (2.0 * n_sources),
            control_interval=control_interval,
            jitter_fraction=jitter_fraction,
            name=f"jrj-{index}",
        )
        for index in range(n_sources)
    ]
    return NetworkConfig(
        service_rate=service_rate,
        buffer_size=buffer_size,
        sources=sources,
        seed=seed,
    )


def chain_scenario(
    n_hops: int = 4,
    cross_traffic: bool = True,
    service_rate: float = 10.0,
    buffer_size: int = 20,
    hop_delay: float = 0.1,
    scheme: str = "jacobson",
    initial_window: float = 2.0,
    seed: int = 9,
) -> MultiHopConfig:
    """An N-hop chain: one end-to-end connection, optional per-hop cross flows.

    With cross traffic every node is shared between the long connection and
    one single-hop connection, so the end-to-end flow pays the full
    compounding of per-hop queueing and feedback delay -- the generalised
    parking lot.
    """
    if n_hops < 1:
        raise ConfigurationError("n_hops must be at least 1")
    marking = buffer_size / 2.0 if scheme.lower() == "decbit" else None
    names = [f"chain-{index}" for index in range(n_hops)]
    nodes = [
        NodeConfig(
            name=name,
            service_rate=service_rate,
            buffer_size=buffer_size,
            marking_threshold=marking,
        )
        for name in names
    ]
    routes = [
        Route(
            source_name=f"end-to-end-{n_hops}-hops",
            hops=names,
            hop_delay=hop_delay,
            window_scheme=scheme,
            initial_window=initial_window,
        )
    ]
    if cross_traffic:
        routes.extend(
            Route(
                source_name=f"cross-{index}",
                hops=[name],
                hop_delay=hop_delay,
                window_scheme=scheme,
                initial_window=initial_window,
            )
            for index, name in enumerate(names)
        )
    return MultiHopConfig(nodes=nodes, routes=routes, seed=seed)


def random_mesh_scenario(
    n_nodes: int = 8,
    n_routes: int = 12,
    max_hops: int = 4,
    service_rate: float = 10.0,
    buffer_size: int = 20,
    hop_delay: float = 0.05,
    scheme: str = "jacobson",
    seed: int = 21,
) -> MultiHopConfig:
    """A randomised mesh: *n_routes* window flows over *n_nodes* queues.

    Each route traverses a uniformly drawn simple path of 1..``max_hops``
    distinct nodes.  The draw uses the project's spawn-key seed derivation,
    so a given seed produces the identical topology in every process, and
    the topology seed is decoupled from the traffic seed (the
    :class:`MultiHopConfig` keeps *seed* for the simulation itself).
    """
    if n_nodes < 1:
        raise ConfigurationError("n_nodes must be at least 1")
    if n_routes < 1:
        raise ConfigurationError("n_routes must be at least 1")
    if not 1 <= max_hops <= n_nodes:
        raise ConfigurationError(f"max_hops must be in [1, n_nodes], got {max_hops}")
    marking = buffer_size / 2.0 if scheme.lower() == "decbit" else None
    names = [f"mesh-{index}" for index in range(n_nodes)]
    nodes = [
        NodeConfig(
            name=name,
            service_rate=service_rate,
            buffer_size=buffer_size,
            marking_threshold=marking,
        )
        for name in names
    ]
    rng = np.random.default_rng(child_seed_sequence(seed, ("mesh-topology",)))
    routes = []
    for index in range(n_routes):
        length = int(rng.integers(1, max_hops + 1))
        hops = [names[node] for node in rng.permutation(n_nodes)[:length]]
        routes.append(
            Route(
                source_name=f"flow-{index}",
                hops=hops,
                hop_delay=hop_delay,
                window_scheme=scheme,
            )
        )
    return MultiHopConfig(nodes=nodes, routes=routes, seed=seed)


register_scenario(
    "dumbbell",
    "single",
    "N homogeneous JRJ rate sources on one bottleneck (Section 6 at scale)",
    dumbbell_scenario,
)
register_scenario(
    "parking-lot",
    "multihop",
    "long multi-hop connection vs one-hop connection at a shared node",
    parking_lot_scenario,
)
register_scenario(
    "chain",
    "multihop",
    "N-hop chain with an end-to-end flow and per-hop cross traffic",
    chain_scenario,
)
register_scenario(
    "mesh",
    "multihop",
    "randomised routes over a node pool (deterministic in the seed)",
    random_mesh_scenario,
)
