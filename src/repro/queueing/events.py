"""Event primitives and event engines for the discrete-event simulator.

The simulator is a classic event-driven loop: every future action (a packet
arriving at the bottleneck, a service completion, an acknowledgement
reaching a source, a rate-update timer firing) is scheduled at a firing
time, and the engine executes pending actions in ``(time, sequence)`` order.
Ties are broken by insertion order so the simulation is fully deterministic
for a given random seed.

Two engines share that contract:

* :class:`EventQueue` -- the production engine.  The heap holds bare
  ``(time, sequence, payload)`` tuples so heap comparisons run at C speed
  (the seed compared dataclass instances through a generated ``__lt__``),
  and the payload is either a cancellable :class:`Event` handle or, on the
  :meth:`EventQueue.schedule_call` hot path, the raw callback itself --
  scheduling a fire-and-forget action allocates nothing but the tuple.
  Recurring actions (source control loops) use :class:`PeriodicTimer`,
  a preallocated repeating event that re-arms itself instead of building a
  fresh event object and label per tick.  Cancellation is lazy: cancelled
  events stay in the heap and are skipped when popped.

* :class:`ReferenceEventQueue` -- the seed engine (commit ``c0f79ee``)
  preserved verbatim: one :class:`Event` dataclass-style object per
  scheduled action, heap-ordered by the events themselves.  It exists so
  determinism can be tested differentially (identical seeds must produce
  bit-identical traces on either engine) and so the scaling benchmark can
  measure the production engine against the seed event loop.

Cancellable handles returned by :meth:`EventQueue.schedule` are not pooled:
a free-list of handles would let a stale reference held after firing cancel
an unrelated recycled event.  The allocation win comes from not creating
handles at all on the hot paths.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple, Union

from ..exceptions import ConfigurationError, SimulationError

__all__ = ["EVENT_ENGINES", "Event", "EventQueue", "PeriodicTimer",
           "ReferenceEventQueue", "resolve_engine"]


class Event:
    """A scheduled simulator event (and the caller's cancellation handle).

    Events are ordered by ``(time, sequence)`` where the sequence number is
    assigned at scheduling time, making the ordering total and deterministic.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    sequence:
        Monotonically increasing tie-breaker.
    action:
        Zero-argument callback executed when the event fires.
    label:
        Human-readable label used in error messages and debugging traces.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled")

    def __init__(self, time: float, sequence: int,
                 action: Callable[[], None], label: str = "",
                 cancelled: bool = False):
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes."""
        self.cancelled = True

    # Ordering replicates the seed ``@dataclass(order=True)`` behaviour,
    # which compared on the ``(time, sequence)`` field pair; the reference
    # engine heaps Event objects directly and relies on it.

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.sequence) == (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time:.6g}, seq={self.sequence}, "
                f"label={self.label!r}{state})")


class PeriodicTimer:
    """A preallocated repeating event: one object drives every firing.

    The seed scheduled each control-loop tick as a fresh event with a fresh
    formatted label; at hundreds of sources that is an allocation per tick
    per source.  A :class:`PeriodicTimer` allocates once and re-arms itself
    by pushing a bare heap tuple, preserving the seed's exact semantics:
    the next tick is scheduled *after* the action runs (so any events the
    action schedules receive earlier sequence numbers, keeping tie-breaking
    identical to the seed's reschedule-last pattern) and fires at
    ``previous_tick_time + interval`` computed with the same floating-point
    expression the seed used.

    Works against either engine: it only needs ``schedule_call``.
    """

    __slots__ = ("_queue", "interval", "action", "label", "next_time",
                 "cancelled", "_fire_action")

    def __init__(self, queue: "EventQueue", interval: float,
                 action: Callable[[], None], label: str = ""):
        if interval <= 0.0:
            raise ConfigurationError("timer interval must be positive")
        self._queue = queue
        self.interval = float(interval)
        self.action = action
        self.label = label
        self.next_time = 0.0
        self.cancelled = False
        # Bind once: re-arming pushes this same callable every tick.
        self._fire_action = self._fire

    def start(self, at_time: float) -> "PeriodicTimer":
        """Arm the first tick at *at_time* and return the timer."""
        self.next_time = float(at_time)
        self._queue.schedule_call(self.next_time, self._fire_action)
        return self

    def cancel(self) -> None:
        """Stop the timer; the pending tick becomes a no-op."""
        self.cancelled = True

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.action()
        next_time = self.next_time + self.interval
        self.next_time = next_time
        self._queue.schedule_call(next_time, self._fire_action)


#: Heap entries of the production engine: the payload is an Event handle
#: (cancellable) or a bare zero-argument callable (fire-and-forget).
_HeapEntry = Tuple[float, int, Union[Event, Callable[[], None]]]


class EventQueue:
    """The production time-ordered event engine (lazy-deletion tuple heap)."""

    __slots__ = ("_heap", "_next_sequence", "current_time")

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._next_sequence = 0
        #: Time of the most recently fired event (simulation clock).  A
        #: plain attribute rather than a property: the per-packet callbacks
        #: read it several times per event, and a descriptor call each time
        #: is measurable at scale.  Treat as read-only.
        self.current_time = 0.0

    def __len__(self) -> int:
        return sum(1 for entry in self._heap
                   if not (entry[2].__class__ is Event and entry[2].cancelled))

    def schedule(self, time: float, action: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule *action* at simulated *time* and return a cancellable handle.

        Scheduling in the past (before the current clock) is an error: it
        would silently reorder causality.
        """
        time = float(time)
        if time < self.current_time - 1e-12:
            raise SimulationError(
                f"cannot schedule event '{label}' at t={time:.6g} before the "
                f"current time {self.current_time:.6g}")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(time, sequence, action, label)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def schedule_call(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a fire-and-forget *action*; no handle is allocated.

        This is the hot path: packet emissions, service completions and
        feedback deliveries need no cancellation, so the only allocation is
        the heap tuple itself.
        """
        # float() keeps the clock double-precision whatever numeric type the
        # caller passes (a numpy float32 would otherwise contaminate
        # current_time and break cross-engine bit-identity); on an existing
        # float it returns the object unchanged.
        time = float(time)
        if time < self.current_time - 1e-12:
            raise SimulationError(
                f"cannot schedule a call at t={time:.6g} before the current "
                f"time {self.current_time:.6g}")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        heapq.heappush(self._heap, (time, sequence, action))

    def schedule_periodic(self, start: float, interval: float,
                          action: Callable[[], None],
                          label: str = "") -> PeriodicTimer:
        """Schedule *action* every *interval* starting at *start*."""
        if start < self.current_time - 1e-12:
            raise SimulationError(
                f"cannot start timer '{label}' at t={start:.6g} before the "
                f"current time {self.current_time:.6g}")
        return PeriodicTimer(self, interval, action, label).start(start)

    def pop_next(self) -> Optional[Event]:
        """Pop and return the next non-cancelled event, advancing the clock.

        Returns ``None`` when the queue is empty.  Fire-and-forget callbacks
        are wrapped in a synthesized :class:`Event` so the caller sees one
        uniform type (compatibility path; the run loop never goes through
        here).
        """
        heap = self._heap
        while heap:
            time, sequence, payload = heapq.heappop(heap)
            if payload.__class__ is Event:
                if payload.cancelled:
                    continue
                self.current_time = time
                return payload
            self.current_time = time
            return Event(time, sequence, payload)
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            payload = entry[2]
            if payload.__class__ is Event and payload.cancelled:
                heapq.heappop(heap)
                continue
            return entry[0]
        return None

    def run_until(self, t_end: float) -> int:
        """Fire events in order until the clock passes *t_end*.

        Returns the number of events executed.  Events scheduled exactly at
        *t_end* are executed.
        """
        heap = self._heap
        pop = heapq.heappop
        event_class = Event
        executed = 0
        while heap:
            entry = heap[0]
            time = entry[0]
            if time > t_end:
                break
            pop(heap)
            payload = entry[2]
            if payload.__class__ is event_class:
                if payload.cancelled:
                    continue
                self.current_time = time
                payload.action()
            else:
                self.current_time = time
                payload()
            executed += 1
        if t_end > self.current_time:
            self.current_time = t_end
        return executed


class ReferenceEventQueue:
    """The seed event engine, preserved as the differential-testing baseline.

    Identical in observable behaviour to :class:`EventQueue`: both assign
    sequence numbers from one per-queue counter in scheduling order, so a
    deterministic simulation produces bit-identical traces on either engine.
    The implementation is the seed's: one heap of :class:`Event` objects
    ordered through :meth:`Event.__lt__`, with a separate peek/pop pass per
    executed event.  Benchmarks use it as the honest "seed event loop"
    baseline; keep it slow-but-faithful rather than improving it.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._next_sequence = 0
        #: Time of the most recently popped event (simulation clock).
        self.current_time = 0.0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, time: float, action: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule *action* to run at simulated *time* and return the event."""
        if time < self.current_time - 1e-12:
            raise SimulationError(
                f"cannot schedule event '{label}' at t={time:.6g} before the "
                f"current time {self.current_time:.6g}")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(float(time), sequence, action, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_call(self, time: float, action: Callable[[], None]) -> None:
        """Hot-path compatibility shim: allocates a full event, as the seed did."""
        self.schedule(time, action)

    def schedule_periodic(self, start: float, interval: float,
                          action: Callable[[], None],
                          label: str = "") -> PeriodicTimer:
        """Schedule *action* every *interval* starting at *start*.

        Shares :class:`PeriodicTimer` with the production engine; each
        re-arm lands here in :meth:`schedule_call` and pays the seed's
        per-event allocation, matching the seed's reschedule-per-tick cost.
        """
        if start < self.current_time - 1e-12:
            raise SimulationError(
                f"cannot start timer '{label}' at t={start:.6g} before the "
                f"current time {self.current_time:.6g}")
        return PeriodicTimer(self, interval, action, label).start(start)

    def pop_next(self) -> Optional[Event]:
        """Pop and return the next non-cancelled event, advancing the clock."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.current_time = event.time
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_until(self, t_end: float) -> int:
        """Fire events in order until the clock passes *t_end*."""
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > t_end:
                break
            event = self.pop_next()
            if event is None:
                break
            event.action()
            executed += 1
        self.current_time = max(self.current_time, t_end)
        return executed


#: Selectable event engines: ``"fast"`` is the production tuple-heap
#: engine, ``"reference"`` the seed implementation kept for differential
#: testing and benchmarking.  Both produce bit-identical traces for a
#: given configuration and seed.
EVENT_ENGINES = {"fast": EventQueue, "reference": ReferenceEventQueue}


def resolve_engine(engine: str):
    """Return the engine class registered under *engine* (or raise)."""
    try:
        return EVENT_ENGINES[engine]
    except KeyError:
        known = ", ".join(sorted(EVENT_ENGINES))
        raise ConfigurationError(
            f"unknown event engine {engine!r} (available: {known})") from None
