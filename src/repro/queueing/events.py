"""Event and event-queue primitives for the discrete-event simulator.

The simulator is a classic event-driven loop: every future action (a packet
arriving at the bottleneck, a service completion, an acknowledgement
reaching a source, a rate-update timer firing) is an :class:`Event` with a
firing time and a callback, kept in a binary-heap :class:`EventQueue`
ordered by time.  Ties are broken by insertion order so the simulation is
fully deterministic for a given random seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..exceptions import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled simulator event.

    Events are ordered by ``(time, sequence)`` where the sequence number is
    assigned at scheduling time, making the ordering total and deterministic.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    sequence:
        Monotonically increasing tie-breaker.
    action:
        Zero-argument callback executed when the event fires.
    label:
        Human-readable label used in error messages and debugging traces.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes."""
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._current_time = 0.0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def current_time(self) -> float:
        """Time of the most recently popped event (simulation clock)."""
        return self._current_time

    def schedule(self, time: float, action: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule *action* to run at simulated *time* and return the event.

        Scheduling in the past (before the current clock) is an error: it
        would silently reorder causality.
        """
        if time < self._current_time - 1e-12:
            raise SimulationError(
                f"cannot schedule event '{label}' at t={time:.6g} before the "
                f"current time {self._current_time:.6g}")
        event = Event(time=float(time), sequence=next(self._counter),
                      action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop_next(self) -> Optional[Event]:
        """Pop and return the next non-cancelled event, advancing the clock.

        Returns ``None`` when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._current_time = event.time
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_until(self, t_end: float) -> int:
        """Fire events in order until the clock passes *t_end*.

        Returns the number of events executed.  Events scheduled exactly at
        *t_end* are executed.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > t_end:
                break
            event = self.pop_next()
            if event is None:
                break
            event.action()
            executed += 1
        self._current_time = max(self._current_time, t_end)
        return executed
