"""Scenario builders: the parameter sets the experiments run on.

The paper does not publish a parameter table, so the scenarios below pick a
representative operating point (service rate 1 packet per unit time, target
queue of 10 packets, gentle increase C0 = 0.05 and decrease C1 = 0.2) and
scale everything else off it.  All experiments that compare algorithms or
substrates share these builders so they stay mutually consistent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..config import SourceParameters, SystemParameters
from ..control.jrj import JRJControl
from ..queueing.network import NetworkConfig, SourceConfig

__all__ = [
    "single_source_scenario",
    "homogeneous_sources_scenario",
    "heterogeneous_parameters_scenario",
    "heterogeneous_delay_scenario",
    "packet_level_jrj_scenario",
    "packet_level_window_scenario",
]


def single_source_scenario(sigma: float = 0.0,
                           mu: float = 1.0,
                           q_target: float = 10.0,
                           c0: float = 0.05,
                           c1: float = 0.2) -> Tuple[SystemParameters, JRJControl]:
    """The canonical single-source JRJ setting (Sections 4 and 5).

    Returns the system parameters and the matching JRJ control law.
    """
    params = SystemParameters(mu=mu, q_target=q_target, c0=c0, c1=c1,
                              sigma=sigma)
    control = JRJControl(c0=c0, c1=c1, q_target=q_target)
    return params, control


def homogeneous_sources_scenario(n_sources: int = 4, mu: float = 1.0,
                                 q_target: float = 10.0, c0: float = 0.05,
                                 c1: float = 0.2
                                 ) -> Tuple[SystemParameters, List[SourceParameters]]:
    """N identical sources sharing the bottleneck (the Section 6 fairness case)."""
    params = SystemParameters(mu=mu, q_target=q_target, c0=c0, c1=c1)
    sources = [
        SourceParameters(c0=c0, c1=c1, initial_rate=mu / (2.0 * n_sources),
                         name=f"source-{index}")
        for index in range(n_sources)
    ]
    return params, sources


def heterogeneous_parameters_scenario(ratios: Sequence[float] = (1.0, 2.0, 4.0),
                                      mu: float = 1.0, q_target: float = 10.0,
                                      base_c0: float = 0.05, c1: float = 0.2
                                      ) -> Tuple[SystemParameters, List[SourceParameters]]:
    """Sources with different increase rates (the exact-share case of Section 6).

    Source ``i`` uses ``C0 = base_c0 · ratios[i]`` and the common ``C1``, so
    its predicted share is proportional to ``ratios[i]``.
    """
    params = SystemParameters(mu=mu, q_target=q_target, c0=base_c0, c1=c1)
    sources = [
        SourceParameters(c0=base_c0 * ratio, c1=c1,
                         initial_rate=mu / (2.0 * len(ratios)),
                         name=f"c0x{ratio:g}")
        for ratio in ratios
    ]
    return params, sources


def heterogeneous_delay_scenario(delays: Sequence[float] = (0.5, 4.0),
                                 mu: float = 1.0, q_target: float = 10.0,
                                 c0: float = 0.05, c1: float = 0.2
                                 ) -> Tuple[SystemParameters, List[SourceParameters]]:
    """Identical sources that differ only in feedback delay (Section 7 unfairness)."""
    params = SystemParameters(mu=mu, q_target=q_target, c0=c0, c1=c1)
    sources = [
        SourceParameters(c0=c0, c1=c1, delay=float(delay),
                         initial_rate=mu / (2.0 * len(delays)),
                         name=f"delay-{delay:g}")
        for delay in delays
    ]
    return params, sources


def packet_level_jrj_scenario(n_sources: int = 2, service_rate: float = 10.0,
                              q_target: float = 10.0,
                              feedback_delays: Optional[Sequence[float]] = None,
                              buffer_size: Optional[int] = None,
                              seed: int = 7) -> NetworkConfig:
    """Packet-level scenario with rate-based JRJ sources.

    ``C0`` and ``C1`` are scaled with the service rate so the relative
    dynamics match the continuous single-source scenario.
    """
    if feedback_delays is None:
        feedback_delays = [0.0] * n_sources
    if len(feedback_delays) != n_sources:
        raise ValueError("feedback_delays must have one entry per source")
    c0 = 0.05 * service_rate
    c1 = 0.2
    sources = [
        SourceConfig(kind="rate", control_name="jrj",
                     control_kwargs={"c0": c0, "c1": c1, "q_target": q_target},
                     feedback_delay=float(feedback_delays[index]),
                     initial_rate=service_rate / (2.0 * n_sources),
                     control_interval=0.25,
                     name=f"jrj-{index}")
        for index in range(n_sources)
    ]
    return NetworkConfig(service_rate=service_rate, buffer_size=buffer_size,
                         sources=sources, seed=seed)


def packet_level_window_scenario(n_sources: int = 2, service_rate: float = 10.0,
                                 buffer_size: int = 30,
                                 round_trip_delays: Optional[Sequence[float]] = None,
                                 scheme: str = "jacobson",
                                 seed: int = 11) -> NetworkConfig:
    """Packet-level scenario with window-based sources (Jacobson or DECbit).

    The Jacobson variant uses a finite buffer and implicit loss feedback; the
    DECbit variant enables explicit marking at half the buffer size.
    """
    if round_trip_delays is None:
        round_trip_delays = [0.5] * n_sources
    if len(round_trip_delays) != n_sources:
        raise ValueError("round_trip_delays must have one entry per source")
    marking = buffer_size / 2.0 if scheme.lower() == "decbit" else None
    sources = [
        SourceConfig(kind="window", control_name=scheme,
                     feedback_delay=float(round_trip_delays[index]) / 2.0,
                     initial_window=2.0,
                     name=f"{scheme}-{index}")
        for index in range(n_sources)
    ]
    return NetworkConfig(service_rate=service_rate, buffer_size=buffer_size,
                         marking_threshold=marking, sources=sources, seed=seed)
