"""Synthetic traffic models and calibration of the diffusion coefficient.

The σ² term of Equation 14 summarises the *variability* of the queue growth
process -- the burstiness of arrivals and the randomness of service that a
deterministic fluid model throws away.  To use the Fokker-Planck model on a
real (or simulated) system one needs a value for σ, and this module provides
the link:

* traffic generators (:class:`PoissonArrivals`, :class:`OnOffArrivals`)
  producing arrival-count sequences with known statistical properties, and
* :func:`estimate_sigma_from_counts`, which recovers σ from an observed
  sequence of per-interval arrival and service counts as the square root of
  the variance rate of the queue increments,

      σ² ≈ Var[A(Δ) − S(Δ)] / Δ,

  the standard diffusion-approximation identification.  For Poisson traffic
  at rate λ served at deterministic rate μ this gives σ² ≈ λ, which the
  tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import AnalysisError, ConfigurationError

__all__ = [
    "PoissonArrivals",
    "OnOffArrivals",
    "estimate_sigma_from_counts",
    "sigma_for_poisson",
]


@dataclass
class PoissonArrivals:
    """Poisson packet arrivals at a constant mean rate.

    :meth:`counts` returns the number of arrivals in each of ``n_intervals``
    consecutive intervals of length ``interval`` -- the form the estimator
    consumes.
    """

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ConfigurationError("rate must be positive")

    def counts(self, n_intervals: int, interval: float = 1.0) -> np.ndarray:
        """Arrival counts per interval, shape ``(n_intervals,)``."""
        if n_intervals < 1 or interval <= 0.0:
            raise ConfigurationError("need n_intervals >= 1 and interval > 0")
        rng = np.random.default_rng(self.seed)
        return rng.poisson(self.rate * interval, size=n_intervals).astype(float)


@dataclass
class OnOffArrivals:
    """Bursty on/off arrivals (a simple Markov-modulated Poisson process).

    While *on* the source emits Poisson arrivals at ``peak_rate``; while
    *off* it is silent.  The on/off holding times are geometric with the
    given mean number of intervals, so longer holding times mean burstier
    traffic and a larger effective σ for the same average rate.
    """

    peak_rate: float
    mean_on_intervals: float = 5.0
    mean_off_intervals: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.peak_rate <= 0.0:
            raise ConfigurationError("peak_rate must be positive")
        if self.mean_on_intervals <= 0.0 or self.mean_off_intervals <= 0.0:
            raise ConfigurationError("mean holding times must be positive")

    @property
    def average_rate(self) -> float:
        """Long-run average arrival rate."""
        on_fraction = self.mean_on_intervals / (self.mean_on_intervals
                                                + self.mean_off_intervals)
        return self.peak_rate * on_fraction

    def counts(self, n_intervals: int, interval: float = 1.0) -> np.ndarray:
        """Arrival counts per interval, shape ``(n_intervals,)``."""
        if n_intervals < 1 or interval <= 0.0:
            raise ConfigurationError("need n_intervals >= 1 and interval > 0")
        rng = np.random.default_rng(self.seed)
        counts = np.zeros(n_intervals)
        on = True
        switch_probability_on = 1.0 / self.mean_on_intervals
        switch_probability_off = 1.0 / self.mean_off_intervals
        for index in range(n_intervals):
            if on:
                counts[index] = rng.poisson(self.peak_rate * interval)
                if rng.random() < switch_probability_on:
                    on = False
            else:
                if rng.random() < switch_probability_off:
                    on = True
        return counts


def estimate_sigma_from_counts(arrival_counts: np.ndarray,
                               service_counts: Optional[np.ndarray] = None,
                               interval: float = 1.0) -> float:
    """Estimate the diffusion coefficient σ from per-interval counts.

    Parameters
    ----------
    arrival_counts:
        Number of arrivals in each observation interval.
    service_counts:
        Number of service completions in each interval; when omitted the
        service is treated as deterministic (zero variance contribution).
    interval:
        Length of each observation interval.

    Returns
    -------
    float
        ``sqrt(Var[A − S] / interval)`` -- the σ to plug into Equation 14.

    Raises
    ------
    AnalysisError
        With fewer than two intervals, mismatched lengths or a non-positive
        interval.
    """
    arrivals = np.asarray(arrival_counts, dtype=float)
    if arrivals.size < 2:
        raise AnalysisError("need at least two observation intervals")
    if interval <= 0.0:
        raise AnalysisError("interval must be positive")
    if service_counts is None:
        increments = arrivals
    else:
        services = np.asarray(service_counts, dtype=float)
        if services.shape != arrivals.shape:
            raise AnalysisError("arrival and service counts must align")
        increments = arrivals - services
    variance_rate = float(np.var(increments, ddof=1)) / interval
    return float(np.sqrt(max(variance_rate, 0.0)))


def sigma_for_poisson(rate: float) -> float:
    """Theoretical σ for Poisson arrivals at *rate* with deterministic service.

    The variance of a Poisson count over an interval Δ is ``rate · Δ``, so
    the variance rate is ``rate`` and σ = sqrt(rate).
    """
    if rate <= 0.0:
        raise ConfigurationError("rate must be positive")
    return float(np.sqrt(rate))
