"""Canonical scenarios and parameter sweeps used by examples and benchmarks.

Every experiment in EXPERIMENTS.md starts from one of the scenario builders
here so the parameters appearing in reports are defined in exactly one
place.  The sweep runner evaluates a scenario-producing callable over a grid
of parameter values and collects the results.

The registered network topologies of :mod:`repro.queueing.scenarios`
(dumbbell, parking-lot, chain, mesh) are re-exported here so workloads can
be composed from one namespace.
"""

from ..queueing.scenarios import (
    available_scenarios,
    build_scenario,
    chain_scenario,
    dumbbell_scenario,
    random_mesh_scenario,
)
from .scenarios import (
    single_source_scenario,
    homogeneous_sources_scenario,
    heterogeneous_parameters_scenario,
    heterogeneous_delay_scenario,
    packet_level_jrj_scenario,
    packet_level_window_scenario,
)
from .sweep import GridSweep, ParameterSweep, run_grid, run_sweep
from .traffic import (
    OnOffArrivals,
    PoissonArrivals,
    estimate_sigma_from_counts,
    sigma_for_poisson,
)

__all__ = [
    "PoissonArrivals",
    "OnOffArrivals",
    "estimate_sigma_from_counts",
    "sigma_for_poisson",
    "single_source_scenario",
    "homogeneous_sources_scenario",
    "heterogeneous_parameters_scenario",
    "heterogeneous_delay_scenario",
    "packet_level_jrj_scenario",
    "packet_level_window_scenario",
    "available_scenarios",
    "build_scenario",
    "chain_scenario",
    "dumbbell_scenario",
    "random_mesh_scenario",
    "ParameterSweep",
    "GridSweep",
    "run_sweep",
    "run_grid",
]
