"""Generic parameter-sweep runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..exceptions import ConfigurationError

__all__ = ["ParameterSweep", "run_sweep"]


@dataclass
class ParameterSweep:
    """Results of sweeping one scalar parameter.

    Attributes
    ----------
    parameter_name:
        Name of the swept parameter (used in report headers).
    values:
        The parameter values, in the order they were run.
    results:
        One result object per value (whatever the evaluated callable
        returned).
    """

    parameter_name: str
    values: List[float] = field(default_factory=list)
    results: List[object] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def rows(self, extractor: Callable[[object], dict]) -> List[dict]:
        """Build table rows by applying *extractor* to each result."""
        rows = []
        for value, result in zip(self.values, self.results):
            row = {self.parameter_name: value}
            row.update(extractor(result))
            rows.append(row)
        return rows


def run_sweep(parameter_name: str, values: Sequence[float],
              evaluate: Callable[[float], object]) -> ParameterSweep:
    """Evaluate *evaluate* at every value and collect the results in order.

    Parameters
    ----------
    parameter_name:
        Label for the swept parameter.
    values:
        Values to evaluate (must be non-empty).
    evaluate:
        Callable mapping one parameter value to a result object.
    """
    values = list(values)
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    sweep = ParameterSweep(parameter_name=parameter_name)
    for value in values:
        sweep.values.append(float(value))
        sweep.results.append(evaluate(float(value)))
    return sweep
