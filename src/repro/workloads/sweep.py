"""Generic parameter-sweep and parameter-grid runners.

Historically this module offered :func:`run_sweep` over a single scalar
parameter.  It now generalises to full cartesian matrices via
:func:`run_grid` (with optional worker-process parallelism and result
caching through :mod:`repro.runner`), while the original single-parameter
form of :func:`run_sweep` keeps working as a thin legacy shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..exceptions import ConfigurationError

__all__ = ["ParameterSweep", "GridSweep", "run_sweep", "run_grid"]


@dataclass
class ParameterSweep:
    """Results of sweeping one scalar parameter.

    Attributes
    ----------
    parameter_name:
        Name of the swept parameter (used in report headers).
    values:
        The parameter values, in the order they were run.
    results:
        One result object per value (whatever the evaluated callable
        returned).
    """

    parameter_name: str
    values: List[float] = field(default_factory=list)
    results: List[object] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def rows(self, extractor: Callable[[object], dict]) -> List[dict]:
        """Build table rows by applying *extractor* to each result."""
        rows = []
        for value, result in zip(self.values, self.results, strict=True):
            row = {self.parameter_name: value}
            row.update(extractor(result))
            rows.append(row)
        return rows


@dataclass
class GridSweep:
    """Results of evaluating a callable over a multi-parameter grid.

    Attributes
    ----------
    axes:
        The swept axes: name -> list of values, in sweep order.
    points:
        One dictionary per grid point, in deterministic row-major order
        (first axis slowest).
    results:
        One result object per point.
    """

    axes: Dict[str, List[Any]]
    points: List[Dict[str, Any]] = field(default_factory=list)
    results: List[object] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def parameter_names(self) -> List[str]:
        """Names of the swept axes, in sweep order."""
        return list(self.axes)

    def rows(self, extractor: Callable[[object], dict]) -> List[dict]:
        """Build table rows: grid-point coordinates plus extracted metrics."""
        rows = []
        for point, result in zip(self.points, self.results, strict=True):
            row = dict(point)
            row.update(extractor(result))
            rows.append(row)
        return rows


def run_grid(axes: Mapping[str, Sequence[Any]],
             evaluate: Callable[..., object],
             n_jobs: int = 1,
             cache: Optional[object] = None) -> GridSweep:
    """Evaluate *evaluate* at every point of the cartesian grid *axes*.

    Parameters
    ----------
    axes:
        Mapping of parameter name to the values it sweeps (all non-empty).
    evaluate:
        Callable invoked with one keyword argument per axis, e.g.
        ``evaluate(c0=0.05, delay=2.0)``.
    n_jobs:
        Number of worker processes.  Values above one delegate execution to
        :func:`repro.runner.run_jobs`, which requires *evaluate* to be a
        picklable module-level function.
    cache:
        Optional :class:`repro.runner.ResultCache`; implies the runner path
        even when ``n_jobs == 1``.
    """
    from ..runner.grid import expand_grid  # local import: keep layering thin

    points = expand_grid(axes)
    sweep = GridSweep(axes={name: list(values) for name, values in axes.items()},
                      points=points)
    if n_jobs == 1 and cache is None:
        sweep.results = [evaluate(**point) for point in points]
        return sweep

    from ..runner.executor import run_jobs
    from ..runner.spec import JobSpec

    jobs = [JobSpec(function=evaluate, params=None,
                    overrides=tuple(sorted(point.items())))
            for point in points]
    sweep.results = run_jobs(jobs, n_jobs=n_jobs, cache=cache).values
    return sweep


def run_sweep(parameter_name: Union[str, Mapping[str, Sequence[Any]]],
              values: Optional[Sequence[float]] = None,
              evaluate: Optional[Callable[..., object]] = None,
              n_jobs: int = 1) -> Union[ParameterSweep, GridSweep]:
    """Evaluate a callable over a sweep and collect the results in order.

    Two forms are accepted:

    * ``run_sweep({"c0": [...], "delay": [...]}, evaluate=fn)`` -- the
      general multi-parameter grid; ``fn`` receives keyword arguments and a
      :class:`GridSweep` is returned.
    * ``run_sweep("x", [1.0, 2.0], evaluate=fn)`` -- the legacy
      single-parameter form; ``fn`` receives the bare value and a
      :class:`ParameterSweep` is returned.  This shim stays for existing
      call sites but new code should pass a grid (or use
      :func:`run_grid` directly).
    """
    if evaluate is None:
        raise ConfigurationError("run_sweep needs an evaluate callable")

    if isinstance(parameter_name, Mapping):
        if values is not None:
            raise ConfigurationError(
                "grid form takes axes and evaluate only (no separate values)")
        return run_grid(parameter_name, evaluate, n_jobs=n_jobs)

    warnings.warn(
        "run_sweep(name, values, evaluate) is the legacy single-parameter "
        "form; pass a grid mapping (or use run_grid) instead",
        DeprecationWarning, stacklevel=2)
    values = list(values) if values is not None else []
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    sweep = ParameterSweep(parameter_name=parameter_name)
    for value in values:
        sweep.values.append(float(value))
        sweep.results.append(evaluate(float(value)))
    return sweep
