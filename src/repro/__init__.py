"""Reproduction of "Analysis of Dynamic Congestion Control Protocols:
A Fokker-Planck Approximation" (Mukherjee & Strikwerda, 1991).

The package provides, as documented in DESIGN.md:

* :mod:`repro.core` -- the Fokker-Planck solver for the joint density of
  queue length and queue growth rate under feedback rate control
  (Equation 14 of the paper),
* :mod:`repro.control` -- the rate- and window-control algorithm library
  (JRJ linear-increase/exponential-decrease and friends),
* :mod:`repro.characteristics` -- the phase-plane analysis of Section 5
  (quadrant drifts, convergent spiral, Theorem 1),
* :mod:`repro.multisource` -- fairness and exact shares with many sources
  (Section 6),
* :mod:`repro.delay` -- delayed feedback, oscillations and unfairness
  (Section 7),
* :mod:`repro.fluid` -- the Bolot-Shankar fluid-approximation baseline,
* :mod:`repro.queueing` -- a packet-level discrete-event simulator,
* :mod:`repro.stochastic` -- Langevin Monte-Carlo validation of the PDE,
* :mod:`repro.analysis`, :mod:`repro.workloads` -- metrics, report tables
  and canonical scenarios shared by the examples and benchmarks,
* :mod:`repro.runner` -- parallel experiment orchestration: declarative
  job specs, multi-dimensional grids, a worker-process executor and a
  content-addressed on-disk result cache (see ``docs/runner.md``).

Quick start::

    from repro import (SystemParameters, JRJControl, FokkerPlanckSolver,
                       TimeParameters)

    params = SystemParameters(mu=1.0, q_target=10.0, c0=0.05, c1=0.2, sigma=0.3)
    control = JRJControl(c0=params.c0, c1=params.c1, q_target=params.q_target)
    solver = FokkerPlanckSolver(params, control)
    result = solver.solve_from_point(q0=0.0, rate0=0.5,
                                     time_params=TimeParameters(t_end=100.0))
    print(result.final_moments.mean_q, result.final_moments.std_q)
"""

from .config import (
    DelayParameters,
    GridParameters,
    SourceParameters,
    SystemParameters,
    TimeParameters,
)
from .exceptions import (
    AnalysisError,
    ConfigurationError,
    ConvergenceError,
    EventBudgetError,
    GridError,
    JobTimeoutError,
    MassConservationError,
    NegativeDensityError,
    NonFiniteStateError,
    NumericalHealthError,
    QueueInvariantError,
    ReproError,
    ResidualHealthError,
    ResultTransportError,
    SimTimeError,
    SimulationError,
    StabilityError,
    StepSizeError,
    TransientJobError,
    WorkerCrashError,
)
from .health import HealthLog, HealthMonitor, HealthReport, resolve_health
from .control import (
    DECbitWindow,
    JacobsonWindow,
    JRJControl,
    LinearIncreaseLinearDecrease,
    MultiplicativeIncreaseMultiplicativeDecrease,
    RateControl,
    WindowControl,
    available_controls,
    create_control,
)
from .core import (
    BoundaryConditions,
    DensityMoments,
    DiscreteGenerator,
    FokkerPlanckResult,
    FokkerPlanckSolver,
    ReducedSystemSolver,
    SparseOperator,
    SteadyStateEstimate,
    assemble_generator,
    compute_moments,
    estimate_steady_state,
    marginal_q,
    marginal_v,
    tail_probability,
)
from .characteristics import (
    CharacteristicBatch,
    CharacteristicTrajectory,
    analyze_spiral,
    analyze_spiral_batch,
    classify_equilibrium,
    find_equilibrium,
    integrate_characteristic,
    integrate_characteristic_batch,
    is_convergent_spiral,
    quadrant_drift_table,
    verify_theorem1,
    verify_theorem1_batch,
)
from .multisource import (
    MultiSourceModel,
    fairness_report,
    jain_fairness_index,
    predicted_equilibrium_shares,
)
from .delay import (
    DelayedFokkerPlanckSolver,
    DelayedSystem,
    RoundTripUpdateModel,
    critical_delay,
    delay_sweep,
    heterogeneous_delay_experiment,
    measure_oscillation,
)
from .fluid import FluidModel, compare_fluid_and_fokker_planck
from .queueing import (
    MultiHopConfig,
    MultiHopSimulator,
    NetworkConfig,
    SimulationResult,
    Simulator,
    SourceConfig,
    available_scenarios,
    build_scenario,
)
from .crossval import CrossValidationReport, cross_validate
from .design import (
    DelayShiftedControl,
    GainGridScores,
    GainSweepResult,
    ObjectiveWeights,
    OperatingPointScore,
    RankedGain,
    StationaryDensity,
    StationaryEstimate,
    compare_with_marching,
    design_gains,
    score_gain_grid,
    score_operating_point,
    solve_stationary,
    solve_stationary_multisource,
)
from .stochastic import LangevinModel, compare_with_density, run_ensemble
from .numerics import available_backends, get_backend
from .runner import (
    ExperimentSpec,
    JobSpec,
    MatrixResult,
    ResultCache,
    build_matrix,
    expand_grid,
    run_jobs,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # configuration
    "SystemParameters",
    "GridParameters",
    "TimeParameters",
    "SourceParameters",
    "DelayParameters",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "GridError",
    "ConvergenceError",
    "StabilityError",
    "SimulationError",
    "AnalysisError",
    "TransientJobError",
    "WorkerCrashError",
    "JobTimeoutError",
    "ResultTransportError",
    "NumericalHealthError",
    "NonFiniteStateError",
    "MassConservationError",
    "NegativeDensityError",
    "QueueInvariantError",
    "EventBudgetError",
    "SimTimeError",
    "StepSizeError",
    "ResidualHealthError",
    # numerical health monitoring
    "HealthReport",
    "HealthLog",
    "HealthMonitor",
    "resolve_health",
    # control laws
    "RateControl",
    "WindowControl",
    "JRJControl",
    "LinearIncreaseLinearDecrease",
    "MultiplicativeIncreaseMultiplicativeDecrease",
    "JacobsonWindow",
    "DECbitWindow",
    "create_control",
    "available_controls",
    # Fokker-Planck core
    "FokkerPlanckSolver",
    "FokkerPlanckResult",
    "BoundaryConditions",
    "DensityMoments",
    "ReducedSystemSolver",
    "compute_moments",
    "marginal_q",
    "marginal_v",
    "tail_probability",
    "SparseOperator",
    "DiscreteGenerator",
    "assemble_generator",
    "SteadyStateEstimate",
    "estimate_steady_state",
    # characteristics / Section 5
    "CharacteristicBatch",
    "CharacteristicTrajectory",
    "integrate_characteristic",
    "integrate_characteristic_batch",
    "quadrant_drift_table",
    "find_equilibrium",
    "classify_equilibrium",
    "analyze_spiral",
    "analyze_spiral_batch",
    "is_convergent_spiral",
    "verify_theorem1",
    "verify_theorem1_batch",
    # multiple sources / Section 6
    "MultiSourceModel",
    "predicted_equilibrium_shares",
    "fairness_report",
    "jain_fairness_index",
    # delayed feedback / Section 7
    "DelayedSystem",
    "DelayedFokkerPlanckSolver",
    "RoundTripUpdateModel",
    "critical_delay",
    "measure_oscillation",
    "delay_sweep",
    "heterogeneous_delay_experiment",
    # fluid baseline
    "FluidModel",
    "compare_fluid_and_fokker_planck",
    # packet-level simulator
    "Simulator",
    "SimulationResult",
    "NetworkConfig",
    "SourceConfig",
    "MultiHopConfig",
    "MultiHopSimulator",
    "available_scenarios",
    "build_scenario",
    # DES-vs-FP cross-validation
    "CrossValidationReport",
    "cross_validate",
    # gain design / stationary solves
    "DelayShiftedControl",
    "StationaryEstimate",
    "StationaryDensity",
    "solve_stationary",
    "solve_stationary_multisource",
    "compare_with_marching",
    "ObjectiveWeights",
    "OperatingPointScore",
    "GainGridScores",
    "score_gain_grid",
    "score_operating_point",
    "RankedGain",
    "GainSweepResult",
    "design_gains",
    # Monte-Carlo validation
    "LangevinModel",
    "run_ensemble",
    "compare_with_density",
    # kernel backends
    "get_backend",
    "available_backends",
    # experiment orchestration
    "JobSpec",
    "ExperimentSpec",
    "MatrixResult",
    "ResultCache",
    "expand_grid",
    "build_matrix",
    "run_jobs",
]
