"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library-specific failures
without accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A parameter object or solver configuration is invalid.

    Raised when user-supplied parameters are inconsistent (for example a
    negative service rate, a grid with fewer than two points, or a CFL
    number outside ``(0, 1]``).
    """


class GridError(ConfigurationError):
    """A numerical grid is malformed (non-monotone, empty, or degenerate)."""


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge.

    Carries the number of iterations performed and the final residual when
    available so callers can report a meaningful diagnostic.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class StabilityError(ReproError):
    """A time step or discretisation violates a stability condition.

    Typically raised when an explicit advection step would violate the CFL
    condition, or when a solution has become non-finite (NaN/Inf).
    """


class SimulationError(ReproError):
    """The discrete-event simulator entered an inconsistent state."""


class TransientJobError(ReproError):
    """An infrastructure-level job failure that a retry can plausibly fix.

    The runner's retry machinery re-executes jobs that fail with a subclass
    of this error (a killed worker, a broken process pool, an exceeded
    timeout, an unpicklable transport).  Deterministic numerical failures
    (:class:`StabilityError`, :class:`ConvergenceError`, ...) deliberately do
    *not* derive from it: re-running a bit-identical job cannot change a
    deterministic outcome, so retrying would only waste the campaign's time.
    """


class WorkerCrashError(TransientJobError):
    """A worker process died (SIGKILL, OOM, hard crash) mid-job.

    Surfaces in the parent as ``BrokenProcessPool``; the supervised executor
    converts it to this error, respawns a fresh pool and resubmits the
    surviving pending jobs.
    """


class JobTimeoutError(TransientJobError):
    """A job exceeded the per-job ``timeout=`` and its worker was killed."""


class ResultTransportError(TransientJobError):
    """A job's result or exception could not cross the process boundary.

    Typically an unpicklable return value or a pipe torn down mid-transfer;
    classified transient because the transport (not the computation) failed.
    """


class AnalysisError(ReproError):
    """A post-processing analysis could not be completed.

    For example, oscillation-period detection on a signal with no peaks, or
    equilibrium detection on a diverging trajectory.
    """


class NumericalHealthError(StabilityError):
    """A run-time invariant monitor aborted a run under the strict policy.

    Derives from :class:`StabilityError`, not :class:`TransientJobError`:
    an invariant violation is a deterministic property of the job, so the
    runner's retry machinery must never re-execute it.  Carries the
    structured :class:`~repro.health.HealthReport` that triggered the
    abort (``None`` when raised outside a monitor).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class NonFiniteStateError(NumericalHealthError):
    """A solver state (density, trajectory, path block) went NaN/Inf.

    The report records the first offending cell index and the simulation
    time at which the per-interval check caught it.
    """


class MassConservationError(NumericalHealthError):
    """A Fokker-Planck density's total mass drifted beyond tolerance."""


class NegativeDensityError(NumericalHealthError):
    """A probability density developed negative cells beyond tolerance."""


class QueueInvariantError(NumericalHealthError):
    """A simulated queue length (state or recorded sample) went negative."""


class EventBudgetError(NumericalHealthError):
    """A discrete-event run exceeded its configured event budget."""


class SimTimeError(NumericalHealthError):
    """The event engine failed to advance simulation time to a segment end."""


class StepSizeError(NumericalHealthError):
    """An integrator step size is unsound for the requested horizon."""


class ResidualHealthError(NumericalHealthError):
    """A stationary solve or refinement left an unacceptable residual."""
