"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library-specific failures
without accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A parameter object or solver configuration is invalid.

    Raised when user-supplied parameters are inconsistent (for example a
    negative service rate, a grid with fewer than two points, or a CFL
    number outside ``(0, 1]``).
    """


class GridError(ConfigurationError):
    """A numerical grid is malformed (non-monotone, empty, or degenerate)."""


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge.

    Carries the number of iterations performed and the final residual when
    available so callers can report a meaningful diagnostic.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class StabilityError(ReproError):
    """A time step or discretisation violates a stability condition.

    Typically raised when an explicit advection step would violate the CFL
    condition, or when a solution has become non-finite (NaN/Inf).
    """


class SimulationError(ReproError):
    """The discrete-event simulator entered an inconsistent state."""


class AnalysisError(ReproError):
    """A post-processing analysis could not be completed.

    For example, oscillation-period detection on a signal with no peaks, or
    equilibrium detection on a diverging trajectory.
    """
