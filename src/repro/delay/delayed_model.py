"""The single-source delayed-feedback characteristic system.

The controller at the transport end point reacts to queue information that
is a round-trip (or propagation) delay old.  Replacing ``Q(t)`` with
``Q(t − τ)`` in the control law turns Equation 16 into a delay differential
equation; :class:`DelayedSystem` integrates it by the method of steps and
returns a :class:`DelayedTrajectory` that downstream oscillation analysis
consumes in the same way as an undelayed characteristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..characteristics.trajectory import CharacteristicTrajectory
from ..numerics.dde import integrate_dde

__all__ = ["DelayedSystem", "DelayedTrajectory"]


@dataclass
class DelayedTrajectory(CharacteristicTrajectory):
    """A characteristic trajectory produced under delayed feedback.

    Identical in content to :class:`CharacteristicTrajectory`; the subclass
    records the feedback delay so that reports and sweeps can label results
    without carrying the value separately.
    """

    delay: float = 0.0


class DelayedSystem:
    """Single source with feedback delay ``τ`` (Section 7).

    Parameters
    ----------
    control:
        Rate-control law ``g(q, λ)``.
    params:
        System parameters.
    delay:
        Feedback delay ``τ ≥ 0``.  Zero reduces exactly to the undelayed
        characteristic system.
    """

    def __init__(self, control: RateControl, params: SystemParameters,
                 delay: float):
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        self.control = control
        self.params = params
        self.delay = float(delay)

    def solve(self, q0: float, rate0: float, t_end: float,
              dt: float = 0.02) -> DelayedTrajectory:
        """Integrate the delayed system from ``(q0, rate0)`` until ``t_end``.

        The pre-history for ``t < 0`` is the constant initial state, the
        standard convention for this kind of protocol model (the connection
        did not exist before time zero, so the oldest information available
        is the initial condition).
        """
        mu = self.params.mu
        delay = self.delay

        def rhs(t: float, state: np.ndarray, history) -> np.ndarray:
            q, lam = state
            dq = lam - mu
            if q <= 0.0 and dq < 0.0:
                dq = 0.0
            q_seen = float(history(t - delay)[0]) if delay > 0.0 else q
            dlam = float(np.asarray(self.control.drift(q_seen, lam)))
            return np.array([dq, dlam])

        def project(state: np.ndarray) -> np.ndarray:
            return np.array([max(state[0], 0.0), max(state[1], 0.0)])

        result = integrate_dde(rhs, [q0, rate0], t_end=t_end, dt=dt,
                               projection=project)
        q_target = getattr(self.control, "q_target", self.params.q_target)
        return DelayedTrajectory(times=result.times,
                                 queue=result.states[:, 0],
                                 rate=result.states[:, 1],
                                 mu=mu,
                                 q_target=q_target,
                                 delay=self.delay)
