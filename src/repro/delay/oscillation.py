"""Oscillation amplitude and period versus feedback delay.

The Section 7 claim reproduced here: delayed feedback introduces cyclic
behaviour -- a limit cycle whose amplitude (and period) grow with the delay,
whereas the undelayed system converges (amplitude → 0).  The benchmark for
experiment E6 sweeps the delay and prints the resulting amplitude/period
series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..exceptions import AnalysisError
from ..numerics.spectral import detect_peaks, dominant_period
from .delayed_model import DelayedSystem, DelayedTrajectory

__all__ = ["OscillationSummary", "measure_oscillation", "delay_sweep"]


@dataclass(frozen=True)
class OscillationSummary:
    """Steady-state oscillation metrics of one delayed-feedback run.

    Attributes
    ----------
    delay:
        Feedback delay of the run.
    queue_amplitude:
        Half the steady-state peak-to-trough swing of the queue length.
    rate_amplitude:
        Half the steady-state peak-to-trough swing of the arrival rate.
    period:
        Dominant oscillation period of the queue (NaN when the trajectory
        converges and has no sustained oscillation).
    sustained:
        ``True`` when the oscillation persists (limit cycle), ``False`` when
        it dies out (convergent spiral).
    mean_queue:
        Time-average queue length over the analysis window.
    """

    delay: float
    queue_amplitude: float
    rate_amplitude: float
    period: float
    sustained: bool
    mean_queue: float


def _steady_window(values: np.ndarray, fraction: float) -> np.ndarray:
    start = int((1.0 - fraction) * values.size)
    return values[max(start, 0):]


def measure_oscillation(trajectory: DelayedTrajectory,
                        steady_fraction: float = 0.4,
                        amplitude_floor: float = 0.05) -> OscillationSummary:
    """Quantify the steady-state oscillation of a delayed-feedback run.

    The final *steady_fraction* of the trajectory is treated as the steady
    state; the amplitude is half the peak-to-trough swing over that window
    and the period comes from the dominant FFT component.  Oscillations
    whose queue amplitude is below *amplitude_floor* packets are reported as
    not sustained.
    """
    queue_window = _steady_window(trajectory.queue, steady_fraction)
    rate_window = _steady_window(trajectory.rate, steady_fraction)
    times_window = _steady_window(trajectory.times, steady_fraction)
    if queue_window.size < 8:
        raise AnalysisError("trajectory too short for oscillation analysis")

    queue_amplitude = 0.5 * float(np.max(queue_window) - np.min(queue_window))
    rate_amplitude = 0.5 * float(np.max(rate_window) - np.min(rate_window))
    sustained = queue_amplitude > amplitude_floor

    period = float("nan")
    if sustained:
        dt = float(np.mean(np.diff(times_window)))
        try:
            period = dominant_period(queue_window, dt)
        except AnalysisError:
            peaks = detect_peaks(queue_window)
            if len(peaks) >= 2:
                period = float(np.mean(np.diff(times_window[peaks])))

    return OscillationSummary(
        delay=trajectory.delay,
        queue_amplitude=queue_amplitude,
        rate_amplitude=rate_amplitude,
        period=period,
        sustained=sustained,
        mean_queue=float(np.mean(queue_window)))


def delay_sweep(control: RateControl, params: SystemParameters,
                delays: Sequence[float], q0: float = 0.0,
                rate0: Optional[float] = None, t_end: float = 600.0,
                dt: float = 0.02) -> List[OscillationSummary]:
    """Run the delayed system for each delay value and summarise the oscillation.

    Parameters
    ----------
    control, params:
        Control law and system parameters shared across the sweep.
    delays:
        Feedback delays to sweep (zero is allowed and gives the convergent
        baseline).
    q0, rate0:
        Common initial condition (the default starting rate is ``μ/2``).
    t_end, dt:
        Integration horizon and step for every run.
    """
    if rate0 is None:
        rate0 = 0.5 * params.mu
    summaries: List[OscillationSummary] = []
    for delay in delays:
        system = DelayedSystem(control, params, delay=float(delay))
        trajectory = system.solve(q0=q0, rate0=rate0, t_end=t_end, dt=dt)
        summaries.append(measure_oscillation(trajectory))
    return summaries
