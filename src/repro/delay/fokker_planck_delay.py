"""Fokker-Planck solution under delayed feedback.

Extending Equation 14 to delayed feedback exactly would require the density
over whole queue-length *histories*; the paper (and the later literature it
seeded) instead works with the observation that the drift of the rate at
time ``t`` is driven by the queue state at ``t − τ``.  The tractable
approximation implemented here closes the hierarchy at first order: the
drift field used by the ν-advection at time ``t`` is the control law
evaluated at the *mean* queue length the solution had at time ``t − τ``,

    g_eff(t, λ) = g( E[Q(t − τ)], λ ).

The mean-queue history is built up self-consistently as the integration
proceeds (for ``t < τ`` the initial mean is used).  The approximation keeps
the variability of the queue (the diffusion term still acts on the full
density) while reproducing the delay-induced oscillation of the mean --
which is the Section 7 phenomenon of interest.  Its fidelity is checked
against the Langevin Monte-Carlo ensemble with per-particle delay in the
integration tests.

The marching scheme follows ``params.stepper`` like the plain solver.  With
``stepper="adi"`` the time-dependent drift re-installs the ν-direction
transport every substep, which invalidates the stepper's cached implicit
ν-operator and forces one banded refactorization per substep; the static
q-direction operator (advection + diffusion) keeps its cache.  The per-axis
default re-derives only the upwind interface drift, so for heavily delayed
runs on small grids ``"axis"`` can remain the faster choice — see
``docs/performance.md``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import GridParameters, SystemParameters, TimeParameters
from ..control.base import RateControl
from ..core.boundary import BoundaryConditions
from ..core.solver import FokkerPlanckResult, FokkerPlanckSolver
from ..numerics.interpolate import linear_interpolate

__all__ = ["DelayedFokkerPlanckSolver"]


class _MeanQueueHistory:
    """Self-consistent history of the mean queue length used for the delayed drift."""

    def __init__(self, initial_mean: float, delay: float):
        self._times = [0.0]
        self._means = [float(initial_mean)]
        self._delay = float(delay)

    def record(self, time: float, mean_queue: float) -> None:
        """Append the mean queue observed at *time*."""
        if time > self._times[-1]:
            self._times.append(float(time))
            self._means.append(float(mean_queue))

    def delayed_mean(self, time: float) -> float:
        """Mean queue the controller sees at *time* (i.e. the mean at ``t − τ``)."""
        lookup_time = time - self._delay
        return linear_interpolate(lookup_time, np.asarray(self._times),
                                  np.asarray(self._means))


class DelayedFokkerPlanckSolver:
    """Fokker-Planck solver whose drift uses delayed mean-queue feedback.

    Parameters
    ----------
    params, control, grid_params, boundary:
        As for :class:`repro.core.solver.FokkerPlanckSolver`.
    delay:
        Feedback delay ``τ ≥ 0``.  Zero recovers the undelayed solver
        exactly (the history lookup then always returns the current mean,
        but the drift is still evaluated at a single scalar queue value; use
        the plain solver when no delay is wanted).
    """

    def __init__(self, params: SystemParameters, control: RateControl,
                 delay: float,
                 grid_params: Optional[GridParameters] = None,
                 boundary: Optional[BoundaryConditions] = None):
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        self.params = params
        self.control = control
        self.delay = float(delay)
        self.grid_params = grid_params
        self.boundary = boundary

    def solve_from_point(self, q0: float, rate0: float,
                         time_params: Optional[TimeParameters] = None
                         ) -> FokkerPlanckResult:
        """Integrate the delayed-drift FP equation from a point initial condition.

        The integration proceeds in short segments of length equal to the
        snapshot interval; after each segment the mean queue is appended to
        the history so that later segments see a consistently delayed
        feedback signal.  This is the PDE analogue of the method of steps.
        """
        time_params = time_params if time_params is not None else TimeParameters()
        history = _MeanQueueHistory(initial_mean=q0, delay=self.delay)

        solver = FokkerPlanckSolver(
            self.params, self.control, grid_params=self.grid_params,
            boundary=self.boundary,
            delayed_queue_provider=history.delayed_mean)

        density = solver.default_initial_density(q0, rate0)

        # Segment length: one snapshot interval of the requested schedule.
        segment = time_params.dt * time_params.snapshot_every
        n_segments = max(1, int(round(time_params.t_end / segment)))

        combined = FokkerPlanckResult(grid=solver.grid)
        current_time = 0.0
        for segment_index in range(n_segments):
            segment_params = TimeParameters(
                t_end=segment, dt=time_params.dt, cfl=time_params.cfl,
                snapshot_every=time_params.snapshot_every)
            # Shift the provider so that inside the segment absolute time is
            # current_time + local time.
            offset = current_time
            solver.delayed_queue_provider = (
                lambda local_t, _offset=offset: history.delayed_mean(_offset + local_t))
            partial = solver.solve(density, segment_params)
            # solve() copies its input, so the snapshot can be handed over
            # directly without another defensive copy.
            density = partial.final_density
            for snapshot in partial.snapshots[1:] if segment_index else partial.snapshots:
                snapshot.time += current_time
                combined.snapshots.append(snapshot)
                history.record(snapshot.time, snapshot.moments.mean_q)
            combined.absorbed_mass += partial.absorbed_mass
            current_time += segment

        return combined
