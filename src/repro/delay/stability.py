"""Stability boundary of the delayed system: how much delay is tolerable?

Theorem 1 says zero delay converges; the Section 7 experiments show large
delays oscillate.  A natural engineering question the model can answer is
*where the boundary lies*: the critical feedback delay below which the
closed loop still settles (within a tolerance) and above which it sustains a
limit cycle.  :func:`critical_delay` locates it by bisection on the measured
steady-state oscillation amplitude of the delayed characteristic system, and
:func:`delay_margin_table` sweeps the control gains to show how the margin
shrinks as the controller is made more aggressive -- the quantitative
guidance for choosing ``C0`` and ``C1`` that the paper's analysis enables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import SystemParameters
from ..control.jrj import JRJControl
from ..exceptions import ConfigurationError
from .delayed_model import DelayedSystem
from .oscillation import measure_oscillation

__all__ = ["critical_delay", "DelayMarginEntry", "delay_margin_table"]


def _steady_amplitude(params: SystemParameters, control: JRJControl,
                      delay: float, t_end: float, dt: float) -> float:
    system = DelayedSystem(control, params, delay=delay)
    trajectory = system.solve(q0=0.0, rate0=0.5 * params.mu, t_end=t_end,
                              dt=dt)
    return measure_oscillation(trajectory).queue_amplitude


def critical_delay(params: SystemParameters,
                   control: Optional[JRJControl] = None,
                   amplitude_threshold: float = 0.5,
                   delay_upper_bound: float = 20.0,
                   tolerance: float = 0.05, t_end: float = 600.0,
                   dt: float = 0.05, max_iterations: int = 30) -> float:
    """Smallest feedback delay whose steady oscillation exceeds the threshold.

    Parameters
    ----------
    params:
        System parameters (``sigma`` is ignored; the boundary is a property
        of the deterministic dynamics).
    control:
        Control law; defaults to the JRJ law built from *params*.
    amplitude_threshold:
        Steady-state queue amplitude (in packets) regarded as "oscillating".
    delay_upper_bound:
        Upper end of the search bracket; must oscillate there.
    tolerance:
        Bisection stops when the bracket is narrower than this.
    t_end, dt:
        Horizon and step of each trial integration.

    Raises
    ------
    ConfigurationError
        If even the upper bound of the bracket does not oscillate (raise the
        bound) or the undelayed system already oscillates (the law itself is
        unstable, so no delay margin exists).
    """
    if control is None:
        control = JRJControl(c0=params.c0, c1=params.c1,
                             q_target=params.q_target)
    low = 0.0
    high = float(delay_upper_bound)

    amplitude_low = _steady_amplitude(params, control, low, t_end, dt)
    if amplitude_low > amplitude_threshold:
        raise ConfigurationError(
            "the undelayed system already oscillates; no delay margin exists")
    amplitude_high = _steady_amplitude(params, control, high, t_end, dt)
    if amplitude_high <= amplitude_threshold:
        raise ConfigurationError(
            f"no oscillation up to delay {delay_upper_bound}; "
            "raise delay_upper_bound")

    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        middle = 0.5 * (low + high)
        amplitude = _steady_amplitude(params, control, middle, t_end, dt)
        if amplitude > amplitude_threshold:
            high = middle
        else:
            low = middle
    return 0.5 * (low + high)


@dataclass(frozen=True)
class DelayMarginEntry:
    """Delay margin for one (C0, C1) gain pair."""

    c0: float
    c1: float
    critical_delay: float


def delay_margin_table(params: SystemParameters,
                       c0_values: Sequence[float],
                       c1_values: Sequence[float],
                       amplitude_threshold: float = 0.5,
                       delay_upper_bound: float = 30.0,
                       t_end: float = 400.0, dt: float = 0.05
                       ) -> List[DelayMarginEntry]:
    """Critical delay for every combination of the supplied gains.

    The returned table is the design chart an operator would use: for each
    increase/decrease setting it reports how much feedback latency the
    control loop tolerates before its queue oscillation exceeds the chosen
    amplitude threshold.
    """
    entries: List[DelayMarginEntry] = []
    for c0 in c0_values:
        for c1 in c1_values:
            gain_params = params.with_rates(c0=c0, c1=c1)
            control = JRJControl(c0=c0, c1=c1, q_target=params.q_target)
            margin = critical_delay(gain_params, control,
                                    amplitude_threshold=amplitude_threshold,
                                    delay_upper_bound=delay_upper_bound,
                                    t_end=t_end, dt=dt)
            entries.append(DelayMarginEntry(c0=c0, c1=c1,
                                            critical_delay=margin))
    return entries
