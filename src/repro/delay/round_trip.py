"""Per-round-trip rate updates: the discrete origin of delay unfairness.

The continuous delayed model of :mod:`repro.delay.delayed_model` treats the
feedback delay purely as a *phase lag*.  For sources whose decrease is
multiplicative, a pure phase lag shifts each source's periodic rate waveform
in time without changing its average, so heterogeneous delays alone produce
only a weak throughput imbalance (this is measurable with
:func:`repro.delay.heterogeneous.heterogeneous_delay_experiment` and is
documented in EXPERIMENTS.md).

The unfairness the paper (and Jacobson's measurements, and Zhang's
simulations) attribute to longer feedback paths has a second ingredient: the
end point adjusts its window/rate *once per round trip*.  A connection with
a feedback delay twice as long therefore applies its additive increase half
as often per unit time, while the multiplicative decrease -- triggered per
congestion episode, not per round trip -- is unaffected.  The sliding-
equilibrium share formula of Section 6 then gives

    share_i ∝ (C0_i / τ_i) / C1_i,

i.e. throughput inversely proportional to the feedback delay for otherwise
identical sources.  :class:`RoundTripUpdateModel` simulates exactly this
discrete-update system (shared fluid queue, per-source update timers) so the
unfairness experiment E7 can quantify the effect and compare it against the
packet-level window simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import SourceParameters, SystemParameters
from ..exceptions import ConfigurationError
from ..multisource.fairness import jain_fairness_index
from ..multisource.model import MultiSourceTrajectory

__all__ = ["RoundTripUpdateModel", "predicted_round_trip_shares"]


def predicted_round_trip_shares(sources: Sequence[SourceParameters]) -> np.ndarray:
    """Predicted shares when each source updates once per its own round trip.

    The per-unit-time increase rate of source ``i`` becomes ``C0ᵢ / τᵢ``
    (one additive step of size ``C0ᵢ`` every ``τᵢ``), so the Section 6 share
    formula gives shares proportional to ``C0ᵢ / (τᵢ C1ᵢ)``.
    """
    if len(sources) == 0:
        raise ConfigurationError("need at least one source")
    weights = np.array([
        source.c0 / (max(source.delay, 1e-9) * source.c1)
        for source in sources
    ])
    return weights / float(np.sum(weights))


@dataclass
class RoundTripUpdateResult:
    """Outcome of one round-trip-update simulation.

    Attributes
    ----------
    trajectory:
        Queue and per-source rate series (same container as the continuous
        multi-source model so the analysis helpers apply unchanged).
    throughputs:
        Per-source time-average rates over the measurement window.
    shares:
        Normalised throughput shares.
    predicted_shares:
        Shares from :func:`predicted_round_trip_shares`.
    jain_index:
        Jain fairness index of the throughputs.
    """

    trajectory: MultiSourceTrajectory
    throughputs: np.ndarray
    shares: np.ndarray
    predicted_shares: np.ndarray
    jain_index: float

    @property
    def throughput_ratio_long_to_short(self) -> float:
        """Throughput of the longest-delay source over the shortest-delay one."""
        delays = np.array([float(name.split("-")[-1])
                           if name.startswith("delay-") else 0.0
                           for name in self.trajectory.source_names])
        longest = int(np.argmax(delays))
        shortest = int(np.argmin(delays))
        short_throughput = self.throughputs[shortest]
        if short_throughput <= 0.0:
            return float("nan")
        return float(self.throughputs[longest] / short_throughput)


class RoundTripUpdateModel:
    """Shared fluid queue driven by sources that update once per round trip.

    Between updates every source sends at its current (constant) rate; the
    queue integrates ``Σλᵢ − μ`` exactly over each simulation step.  At each
    of its update instants (spaced by its own delay ``τᵢ``) source ``i``
    looks at the queue as it was one round trip ago and applies

        λᵢ ← λᵢ + C0ᵢ            if Q(t − τᵢ) ≤ q̂,
        λᵢ ← λᵢ · exp(−C1ᵢ τᵢ)   otherwise,

    i.e. the integral of the continuous JRJ law over one update interval.

    Parameters
    ----------
    sources:
        Per-source parameters; ``delay`` must be positive for every source
        (it is both the feedback lag and the update interval).
    params:
        Shared system parameters.
    """

    def __init__(self, sources: Sequence[SourceParameters],
                 params: SystemParameters):
        if not sources:
            raise ConfigurationError("need at least one source")
        if any(source.delay <= 0.0 for source in sources):
            raise ConfigurationError(
                "round-trip-update model requires a positive delay per source")
        self.sources = list(sources)
        self.params = params

    def run(self, q0: float = 0.0, t_end: float = 2000.0, dt: float = 0.05,
            skip_fraction: float = 0.3) -> RoundTripUpdateResult:
        """Simulate the discrete-update system and summarise the shares."""
        n = len(self.sources)
        n_steps = int(np.ceil(t_end / dt))
        rates = np.array([max(source.initial_rate, 1e-3)
                          for source in self.sources])
        next_update = np.array([source.delay for source in self.sources])

        times = np.empty(n_steps + 1)
        queue_series = np.empty(n_steps + 1)
        rate_series = np.empty((n_steps + 1, n))
        queue = float(q0)
        times[0] = 0.0
        queue_series[0] = queue
        rate_series[0] = rates

        # Ring buffer of past queue values for the delayed lookups.
        max_delay_steps = int(np.ceil(max(s.delay for s in self.sources) / dt)) + 1
        history = np.full(max_delay_steps + 1, q0)
        head = 0

        t = 0.0
        for step in range(1, n_steps + 1):
            total_rate = float(np.sum(rates))
            queue = max(queue + (total_rate - self.params.mu) * dt, 0.0)
            t += dt
            head = (head + 1) % (max_delay_steps + 1)
            history[head] = queue

            for i, source in enumerate(self.sources):
                if t + 1e-12 >= next_update[i]:
                    delay_steps = min(int(round(source.delay / dt)),
                                      max_delay_steps)
                    seen_index = (head - delay_steps) % (max_delay_steps + 1)
                    queue_seen = history[seen_index]
                    if queue_seen <= self.params.q_target:
                        rates[i] = rates[i] + source.c0
                    else:
                        rates[i] = rates[i] * np.exp(-source.c1 * source.delay)
                    rates[i] = max(rates[i], 1e-3)
                    next_update[i] += source.delay

            times[step] = t
            queue_series[step] = queue
            rate_series[step] = rates

        names = [source.name or f"delay-{source.delay:g}"
                 for source in self.sources]
        trajectory = MultiSourceTrajectory(times=times, queue=queue_series,
                                           rates=rate_series,
                                           mu=self.params.mu,
                                           source_names=names)
        throughputs = trajectory.time_average_rates(skip_fraction)
        total = float(np.sum(throughputs))
        shares = (throughputs / total if total > 0.0
                  else np.full(n, 1.0 / n))
        return RoundTripUpdateResult(
            trajectory=trajectory,
            throughputs=throughputs,
            shares=shares,
            predicted_shares=predicted_round_trip_shares(self.sources),
            jain_index=jain_fairness_index(throughputs))
