"""Delayed feedback and its consequences (Section 7 of the paper).

When the controller adjusts its rate using queue information that is ``τ``
time units old, the characteristic system becomes a delay differential
equation,

    dq/dt = λ(t) − μ,        dλ/dt = g(q(t − τ), λ(t)).

Section 7's findings, all reproduced here, are:

* any positive delay turns the convergent spiral of Theorem 1 into a
  sustained oscillation (a limit cycle) of every individual user's rate and
  of the queue, with amplitude and period growing with the delay;
* when different sources see the queue after *different* delays, the
  algorithm also becomes unfair -- the source with the longer feedback path
  obtains less throughput -- which explains the observations of Jacobson
  [Jac 88] and Zhang [Zha 89] about long-haul connections.
"""

from .delayed_model import DelayedSystem, DelayedTrajectory
from .oscillation import OscillationSummary, measure_oscillation, delay_sweep
from .heterogeneous import (
    HeterogeneousDelayResult,
    heterogeneous_delay_experiment,
    delay_ratio_sweep,
)
from .fokker_planck_delay import DelayedFokkerPlanckSolver
from .round_trip import RoundTripUpdateModel, predicted_round_trip_shares
from .stability import critical_delay, delay_margin_table

__all__ = [
    "RoundTripUpdateModel",
    "predicted_round_trip_shares",
    "critical_delay",
    "delay_margin_table",
    "DelayedSystem",
    "DelayedTrajectory",
    "OscillationSummary",
    "measure_oscillation",
    "delay_sweep",
    "HeterogeneousDelayResult",
    "heterogeneous_delay_experiment",
    "delay_ratio_sweep",
    "DelayedFokkerPlanckSolver",
]
