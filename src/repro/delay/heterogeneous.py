"""Unfairness under heterogeneous feedback delays (Section 7).

When two (or more) sources share the bottleneck but receive their feedback
after *different* delays -- the long-haul connection versus the short one --
the algorithm allocates them unequal throughput: the source with the longer
feedback path reacts later to both congestion onset and congestion relief
and ends up with the smaller share.  This is the mechanism behind the
unfairness observed in Jacobson's measurements and Zhang's simulations that
the paper identifies.

:func:`heterogeneous_delay_experiment` runs the coupled multi-source DDE for
a given vector of delays and reports per-source throughput, shares and the
Jain index; :func:`delay_ratio_sweep` sweeps the delay of the "long" source
while holding the "short" one fixed, producing the throughput-ratio series
for experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import SourceParameters, SystemParameters
from ..multisource.fairness import jain_fairness_index
from ..multisource.model import MultiSourceModel, MultiSourceTrajectory

__all__ = [
    "HeterogeneousDelayResult",
    "heterogeneous_delay_experiment",
    "delay_ratio_sweep",
]


@dataclass
class HeterogeneousDelayResult:
    """Per-source outcome of one heterogeneous-delay run.

    Attributes
    ----------
    delays:
        Feedback delay of each source.
    throughputs:
        Time-average rate achieved by each source.
    shares:
        Normalised shares (throughputs divided by their sum).
    jain_index:
        Jain fairness index of the throughputs.
    trajectory:
        The full multi-source trajectory (kept for oscillation inspection).
    """

    delays: np.ndarray
    throughputs: np.ndarray
    shares: np.ndarray
    jain_index: float
    trajectory: MultiSourceTrajectory

    @property
    def throughput_ratio_long_to_short(self) -> float:
        """Throughput of the longest-delay source over the shortest-delay one.

        A value below one means the long-delay source is disadvantaged --
        the paper's unfairness claim.
        """
        longest = int(np.argmax(self.delays))
        shortest = int(np.argmin(self.delays))
        short_throughput = self.throughputs[shortest]
        if short_throughput <= 0.0:
            return float("nan")
        return float(self.throughputs[longest] / short_throughput)


def heterogeneous_delay_experiment(params: SystemParameters,
                                   delays: Sequence[float],
                                   c0: Optional[float] = None,
                                   c1: Optional[float] = None,
                                   q0: float = 0.0, t_end: float = 800.0,
                                   dt: float = 0.02,
                                   skip_fraction: float = 0.4
                                   ) -> HeterogeneousDelayResult:
    """Run N sources with identical control parameters but different delays.

    All sources use the same ``(C0, C1)`` (defaults taken from *params*), so
    any throughput difference is attributable purely to the delay
    difference -- the controlled comparison Section 7 argues from.
    """
    c0 = c0 if c0 is not None else params.c0
    c1 = c1 if c1 is not None else params.c1
    sources = [
        SourceParameters(c0=c0, c1=c1, delay=float(delay),
                         initial_rate=params.mu / (2.0 * len(delays)),
                         name=f"delay-{delay:g}")
        for delay in delays
    ]
    model = MultiSourceModel(sources, params)
    trajectory = model.solve(q0=q0, t_end=t_end, dt=dt)
    throughputs = trajectory.time_average_rates(skip_fraction)
    total = float(np.sum(throughputs))
    shares = (throughputs / total if total > 0.0
              else np.full(len(sources), 1.0 / len(sources)))
    return HeterogeneousDelayResult(
        delays=np.asarray(list(delays), dtype=float),
        throughputs=throughputs,
        shares=shares,
        jain_index=jain_fairness_index(throughputs),
        trajectory=trajectory)


def delay_ratio_sweep(params: SystemParameters, short_delay: float,
                      long_delays: Sequence[float], t_end: float = 800.0,
                      dt: float = 0.02) -> List[HeterogeneousDelayResult]:
    """Sweep the long source's delay against a fixed short-delay competitor.

    Returns one :class:`HeterogeneousDelayResult` per entry of
    *long_delays*; the benchmark prints the throughput ratio and Jain index
    as a function of the delay ratio.
    """
    results: List[HeterogeneousDelayResult] = []
    for long_delay in long_delays:
        results.append(heterogeneous_delay_experiment(
            params, delays=[short_delay, float(long_delay)],
            t_end=t_end, dt=dt))
    return results
