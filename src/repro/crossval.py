"""Cross-validation harness: packet-level DES against the Fokker-Planck model.

The paper's Fokker-Planck equation approximates a packet-level system; this
module runs *matched configurations* through both layers of the repository
and quantifies their agreement, closing the validation loop at scale:

* the **DES side** runs N homogeneous JRJ rate sources against a single
  bottleneck (:class:`~repro.queueing.Simulator`) and estimates the
  stationary queue distribution from the time-weighted occupancy of the
  queue-length trace after a warm-up window;
* the **FP side** solves Equation 14 for the matched single-source system
  (:class:`~repro.core.solver.FokkerPlanckSolver`) and takes the final
  marginal queue density.

The match uses the aggregate-equivalence of Section 6: N homogeneous
sources with per-source gain ``C0/N`` produce the same aggregate drift
(``+C0`` below the target, ``−C1·v`` above) as one source with gain
``C0``, so one FP solve validates the whole homogeneous family.  The DES
runs in the same units as the continuous model (``μ`` packets per unit
time, queue measured in packets), so no rescaling is applied to either
axis.

Reported metrics: mean/std of the stationary queue on both sides, their
absolute and relative errors, and the total-variation distance between the
binned stationary distributions.  Packet-level granularity and the σ↔jitter
correspondence are approximate by nature, so the harness *reports*
agreement rather than asserting tight bounds; the benchmark and tests
assert structural validity plus loose physical sanity.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

import numpy as np

from .config import GridParameters, SystemParameters, TimeParameters
from .control.jrj import jrj_from_parameters
from .exceptions import ConfigurationError
from .queueing.network import NetworkConfig, SourceConfig
from .queueing.simulator import Simulator

__all__ = [
    "CrossValidationReport",
    "cross_validate",
    "matched_network_config",
]


@dataclass(frozen=True)
class CrossValidationReport:
    """Agreement metrics between one DES run and the matched FP solution."""

    n_sources: int
    duration: float
    warmup_fraction: float
    t_end: float
    sigma: float
    jitter_fraction: float
    des_mean_queue: float
    des_std_queue: float
    fp_mean_queue: float
    fp_std_queue: float
    mean_queue_abs_error: float
    mean_queue_rel_error: float
    std_queue_abs_error: float
    stationary_tv_distance: float
    des_utilization: float
    des_mass_above_grid: float

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly flat dictionary of every metric.

        Every field is a plain int/float by construction, so the dataclass
        field list is the single source of truth.
        """
        return asdict(self)


def matched_network_config(
    params: SystemParameters,
    n_sources: int = 1,
    control_interval: float = 0.5,
    jitter_fraction: float = 0.1,
    seed: int = 11,
) -> NetworkConfig:
    """The packet-level configuration matching *params* for N sources.

    Runs at the continuous model's own scale (``μ = params.mu`` packets per
    unit time).  Each source carries gain ``C0/N`` so the aggregate rate
    drift equals the single-source FP drift; the initial aggregate rate is
    ``μ/2``, matching the harness's FP initial point.
    """
    if n_sources < 1:
        raise ConfigurationError("n_sources must be at least 1")
    c0 = params.c0 / n_sources
    sources = [
        SourceConfig(
            kind="rate",
            control_name="jrj",
            control_kwargs={
                "c0": c0,
                "c1": params.c1,
                "q_target": params.q_target,
            },
            initial_rate=0.5 * params.mu / n_sources,
            control_interval=control_interval,
            jitter_fraction=jitter_fraction,
            name=f"matched-{index}",
        )
        for index in range(n_sources)
    ]
    return NetworkConfig(service_rate=params.mu, sources=sources, seed=seed)


def _stationary_occupancy(trace, t_start, t_end, n_bins):
    """Time-weighted queue statistics and occupancy over a window.

    Returns ``(mean, std, bin_probabilities, mass_above_grid)``.  The
    occupancy lives on unit-width (one packet) bins -- the natural
    resolution of the integer-valued packet queue -- and samples beyond the
    binned range are clamped into the last bin (their weight is reported
    separately).
    """
    times = trace.times
    values = trace.values
    next_times = np.append(times[1:], t_end)
    weights = np.minimum(next_times, t_end) - np.maximum(times, t_start)
    weights = np.clip(weights, 0.0, None)
    total = float(weights.sum())
    if total <= 0.0:
        raise ConfigurationError(
            "empty averaging window: check duration and warmup_fraction"
        )
    mean = float((weights * values).sum() / total)
    variance = float((weights * (values - mean) ** 2).sum() / total)
    bins = np.clip(values.astype(int), 0, n_bins - 1)
    occupancy = np.zeros(n_bins)
    np.add.at(occupancy, bins, weights)
    above = float(weights[values >= n_bins].sum() / total)
    return mean, float(np.sqrt(variance)), occupancy / total, above


def _fp_unit_bin_masses(density, grid, n_bins):
    """FP marginal queue mass aggregated onto the same unit-width bins."""
    cell_mass = density.sum(axis=1) * grid.dv * grid.dq
    bins = np.clip(grid.q_centers.astype(int), 0, n_bins - 1)
    binned = np.zeros(n_bins)
    np.add.at(binned, bins, cell_mass)
    return binned / binned.sum()


def cross_validate(
    params: SystemParameters,
    n_sources: int = 1,
    duration: float = 4000.0,
    warmup_fraction: float = 0.25,
    t_end: float = 240.0,
    nq: int = 120,
    nv: int = 90,
    q_max: float = 40.0,
    v_span: float = 1.5,
    seed: int = 11,
    engine: str = "fast",
    control_interval: float = 0.5,
    jitter_fraction: float = 0.1,
) -> CrossValidationReport:
    """Run the matched DES and FP configurations and report their agreement.

    Parameters
    ----------
    params:
        Continuous-model parameters (``sigma`` drives the FP diffusion; the
        DES side models burstiness through *jitter_fraction*).
    n_sources:
        Number of homogeneous packet-level sources (aggregate-matched to
        the single-source FP solve, see module docstring).
    duration, warmup_fraction:
        DES horizon and the fraction of it discarded before averaging.
    t_end, nq, nv, q_max, v_span:
        FP horizon and phase-grid resolution.
    seed, engine, control_interval, jitter_fraction:
        Packet-level knobs; ``engine`` selects the event engine.
    """
    from .core.solver import FokkerPlanckSolver

    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")

    config = matched_network_config(
        params,
        n_sources=n_sources,
        control_interval=control_interval,
        jitter_fraction=jitter_fraction,
        seed=seed,
    )
    des_result = Simulator(config, engine=engine).run(duration)
    grid_params = GridParameters(
        q_max=q_max,
        nq=nq,
        v_min=-v_span,
        v_max=v_span,
        nv=nv,
    )
    n_bins = int(np.ceil(q_max))
    des_mean, des_std, p_des, above = _stationary_occupancy(
        des_result.trace.queue_length,
        warmup_fraction * duration,
        duration,
        n_bins,
    )

    solver = FokkerPlanckSolver(
        params, jrj_from_parameters(params), grid_params=grid_params
    )
    fp_result = solver.solve_from_point(
        q0=0.0,
        rate0=0.5 * params.mu,
        time_params=TimeParameters(
            t_end=t_end, dt=max(t_end / 300.0, 0.1), snapshot_every=300
        ),
    )
    moments = fp_result.final_moments
    p_fp = _fp_unit_bin_masses(fp_result.final_density, solver.grid, n_bins)

    mean_abs = abs(des_mean - moments.mean_q)
    return CrossValidationReport(
        n_sources=n_sources,
        duration=duration,
        warmup_fraction=warmup_fraction,
        t_end=t_end,
        sigma=params.sigma,
        jitter_fraction=jitter_fraction,
        des_mean_queue=des_mean,
        des_std_queue=des_std,
        fp_mean_queue=moments.mean_q,
        fp_std_queue=moments.std_q,
        mean_queue_abs_error=mean_abs,
        mean_queue_rel_error=mean_abs / max(abs(moments.mean_q), 1e-12),
        std_queue_abs_error=abs(des_std - moments.std_q),
        stationary_tv_distance=0.5 * float(np.abs(p_des - p_fp).sum()),
        des_utilization=des_result.utilization(),
        des_mass_above_grid=above,
    )
