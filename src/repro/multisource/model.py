"""Coupled dynamics of N adaptive sources sharing one bottleneck queue.

Each source ``i`` adjusts its own rate ``λᵢ(t)`` by the JRJ rule driven by
the *shared* queue length,

    dλᵢ/dt =  C0ᵢ          if Q ≤ q̂,
    dλᵢ/dt = −C1ᵢ λᵢ       if Q > q̂,

while the queue aggregates all the arrivals,

    dQ/dt = Σᵢ λᵢ(t) − μ        (pinned at zero when empty and under-loaded).

Optionally every source can see the queue with its own feedback delay
``τᵢ``, which is the setting of Section 7's unfairness result; the model
then becomes a DDE and is integrated by the method of steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import SourceParameters, SystemParameters
from ..exceptions import ConfigurationError
from ..numerics.dde import integrate_dde
from ..numerics.ode import integrate_fixed

__all__ = ["MultiSourceModel", "MultiSourceTrajectory"]


@dataclass
class MultiSourceTrajectory:
    """Trajectory of the shared queue and every per-source rate.

    Attributes
    ----------
    times:
        Sample times, shape ``(n,)``.
    queue:
        Shared queue length ``Q(t)``, shape ``(n,)``.
    rates:
        Per-source rates ``λᵢ(t)``, shape ``(n, n_sources)``.
    mu:
        Bottleneck service rate.
    source_names:
        Labels of the sources (for reports).
    """

    times: np.ndarray
    queue: np.ndarray
    rates: np.ndarray
    mu: float
    source_names: List[str]

    @property
    def n_sources(self) -> int:
        """Number of sources in the run."""
        return self.rates.shape[1]

    @property
    def aggregate_rate(self) -> np.ndarray:
        """Total offered rate ``Σᵢ λᵢ(t)``."""
        return np.sum(self.rates, axis=1)

    def source_rate(self, index: int) -> np.ndarray:
        """Rate time-series of one source."""
        return self.rates[:, index]

    def final_rates(self) -> np.ndarray:
        """Per-source rates at the end of the run."""
        return self.rates[-1].copy()

    def time_average_rates(self, skip_fraction: float = 0.3) -> np.ndarray:
        """Per-source time-average rates over the post-transient tail.

        This is each source's long-run throughput share of the bottleneck --
        the quantity the fairness results of Section 6 and the unfairness
        results of Section 7 are stated about.
        """
        start = min(int(skip_fraction * self.times.size), self.times.size - 2)
        times = self.times[start:]
        duration = times[-1] - times[0]
        if duration <= 0.0:
            return self.final_rates()
        averages = np.empty(self.n_sources)
        for i in range(self.n_sources):
            averages[i] = np.trapezoid(self.rates[start:, i], times) / duration
        return averages

    def shares(self, skip_fraction: float = 0.3) -> np.ndarray:
        """Normalised throughput shares (time-average rates divided by their sum)."""
        averages = self.time_average_rates(skip_fraction)
        total = float(np.sum(averages))
        if total <= 0.0:
            return np.full(self.n_sources, 1.0 / self.n_sources)
        return averages / total


class MultiSourceModel:
    """N adaptive sources driving one bottleneck queue.

    Parameters
    ----------
    sources:
        Per-source control parameters (increase rate, decrease constant,
        optional feedback delay and initial rate).
    params:
        Shared system parameters: service rate ``mu`` and target queue
        ``q_target`` (the switching threshold every source uses).
    """

    def __init__(self, sources: Sequence[SourceParameters],
                 params: SystemParameters):
        if len(sources) < 1:
            raise ConfigurationError("need at least one source")
        self.sources = list(sources)
        self.params = params

    @property
    def n_sources(self) -> int:
        """Number of sources."""
        return len(self.sources)

    @property
    def has_delay(self) -> bool:
        """True when any source has a positive feedback delay."""
        return any(source.delay > 0.0 for source in self.sources)

    def _source_names(self) -> List[str]:
        return [source.name or f"source-{index}"
                for index, source in enumerate(self.sources)]

    def _initial_state(self, q0: float) -> np.ndarray:
        rates = [source.initial_rate for source in self.sources]
        return np.array([q0] + rates, dtype=float)

    def _queue_drift(self, queue: float, total_rate: float) -> float:
        drift = total_rate - self.params.mu
        if queue <= 0.0 and drift < 0.0:
            return 0.0
        return drift

    def _rate_drift(self, source: SourceParameters, queue_seen: float,
                    rate: float) -> float:
        if queue_seen <= self.params.q_target:
            return source.c0
        return -source.c1 * rate

    @staticmethod
    def _project(state: np.ndarray) -> np.ndarray:
        return np.maximum(state, 0.0)

    def solve(self, q0: float = 0.0, t_end: float = 400.0,
              dt: float = 0.02) -> MultiSourceTrajectory:
        """Integrate the coupled system and return the full trajectory."""
        initial = self._initial_state(q0)

        if not self.has_delay:
            def rhs(_t: float, state: np.ndarray) -> np.ndarray:
                queue = state[0]
                rates = state[1:]
                derivatives = np.empty_like(state)
                derivatives[0] = self._queue_drift(queue, float(np.sum(rates)))
                for i, source in enumerate(self.sources):
                    derivatives[1 + i] = self._rate_drift(source, queue, rates[i])
                return derivatives

            result = integrate_fixed(rhs, initial, t_end=t_end, dt=dt,
                                     projection=self._project)
            states = result.states
            times = result.times
        else:
            def delayed_rhs(t: float, state: np.ndarray, history) -> np.ndarray:
                queue = state[0]
                rates = state[1:]
                derivatives = np.empty_like(state)
                derivatives[0] = self._queue_drift(queue, float(np.sum(rates)))
                for i, source in enumerate(self.sources):
                    if source.delay > 0.0:
                        queue_seen = float(history(t - source.delay)[0])
                    else:
                        queue_seen = queue
                    derivatives[1 + i] = self._rate_drift(source, queue_seen,
                                                          rates[i])
                return derivatives

            result = integrate_dde(delayed_rhs, initial, t_end=t_end, dt=dt,
                                   projection=self._project)
            states = result.states
            times = result.times

        return MultiSourceTrajectory(
            times=times,
            queue=states[:, 0],
            rates=states[:, 1:],
            mu=self.params.mu,
            source_names=self._source_names())
