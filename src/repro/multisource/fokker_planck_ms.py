"""Fokker-Planck treatment of the multi-source system via aggregate reduction.

The full N-source Fokker-Planck equation lives in ``N + 1`` dimensions
(queue plus one rate per source), which is outside what a grid-based solver
can handle for interesting N.  The standard reduction -- and the one the
Section 6 analysis justifies -- is to track the *aggregate* arrival rate
``Λ = Σᵢ λᵢ``:

* the queue sees only Λ, so the pair ``(Q, Λ − μ)`` obeys exactly the
  single-source Equation 14 with an aggregate control law
  ``G(q, Λ) = Σᵢ g_i(q, λᵢ)``, and
* on the sliding equilibrium the per-source rates are the fixed shares of
  Section 6, so ``g_i`` evaluated at ``λᵢ = shareᵢ · Λ`` closes the
  aggregate law:

      G(q, Λ) = Σᵢ C0ᵢ                      for q ≤ q̂,
      G(q, Λ) = −(Σᵢ C1ᵢ shareᵢ) · Λ        for q > q̂.

The resulting :class:`AggregateControl` is an ordinary
:class:`repro.control.RateControl`, so the unmodified single-source solver
produces the joint density of queue length and aggregate growth rate; the
per-source mean rates are recovered by applying the share vector to the
aggregate mean.  The reduction is validated against the coupled ODE model in
the tests (the aggregate trajectory and the shares both match).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import GridParameters, SourceParameters, SystemParameters, TimeParameters
from ..control.base import RateControl
from ..core.solver import FokkerPlanckResult, FokkerPlanckSolver
from ..exceptions import ConfigurationError
from .fairness import predicted_equilibrium_shares

__all__ = ["AggregateControl", "MultiSourceFokkerPlanck",
           "MultiSourceDensityResult"]


class AggregateControl(RateControl):
    """The closed aggregate-rate control law ``G(q, Λ)`` described above."""

    def __init__(self, sources: Sequence[SourceParameters], q_target: float):
        if not sources:
            raise ConfigurationError("need at least one source")
        if q_target < 0.0:
            raise ConfigurationError("q_target must be non-negative")
        self.sources = list(sources)
        self.q_target = float(q_target)
        self.total_increase = float(sum(source.c0 for source in sources))
        shares = predicted_equilibrium_shares(sources)
        self.effective_decrease = float(
            sum(source.c1 * share
                for source, share in zip(sources, shares, strict=True)))
        self.shares = shares

    def drift(self, queue_length, rate):
        """Aggregate drift: summed increase below target, share-weighted decrease above."""
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        decrease = -self.effective_decrease * rate
        result = np.where(queue_length <= self.q_target, self.total_increase,
                          decrease)
        if result.shape == ():
            return float(result)
        return result

    def describe(self) -> str:
        return (f"aggregate of {len(self.sources)} sources "
                f"(sum C0={self.total_increase:g}, "
                f"effective C1={self.effective_decrease:g}, "
                f"q_target={self.q_target:g})")


@dataclass
class MultiSourceDensityResult:
    """Aggregate Fokker-Planck result plus the per-source decomposition.

    Attributes
    ----------
    aggregate:
        The single-source FP result for ``(Q, Λ − μ)``.
    shares:
        Equilibrium share of each source (from the Section 6 formula).
    source_names:
        Labels of the sources.
    mu:
        Bottleneck service rate.
    """

    aggregate: FokkerPlanckResult
    shares: np.ndarray
    source_names: list
    mu: float

    def mean_aggregate_rate(self) -> np.ndarray:
        """Mean aggregate arrival rate over time."""
        return self.aggregate.mean_rate(self.mu)

    def mean_source_rates(self) -> np.ndarray:
        """Per-source mean rates over time, shape ``(n_snapshots, n_sources)``."""
        return np.outer(self.mean_aggregate_rate(), self.shares)

    def final_source_rates(self) -> np.ndarray:
        """Per-source mean rates at the final snapshot."""
        return self.mean_source_rates()[-1]


class MultiSourceFokkerPlanck:
    """Aggregate-reduction Fokker-Planck solver for N sources.

    Parameters
    ----------
    sources:
        Per-source control parameters.
    params:
        Shared system parameters (``sigma`` applies to the aggregate queue
        process, exactly as in the single-source model).
    grid_params:
        Optional phase-grid override.  The default rate axis of the
        single-source grid is usually wide enough because the aggregate
        growth rate still lives in ``[−μ, ...]``; widen it for very
        aggressive parameter sets.  Large many-source studies that need a
        fine aggregate grid should pair it with
        ``params.with_stepper("adi")``: the aggregate drift is static, so
        the ADI operator caches persist across the whole march.
    """

    def __init__(self, sources: Sequence[SourceParameters],
                 params: SystemParameters,
                 grid_params: Optional[GridParameters] = None):
        self.sources = list(sources)
        self.params = params
        self.control = AggregateControl(self.sources, params.q_target)
        self.solver = FokkerPlanckSolver(params, self.control,
                                         grid_params=grid_params)

    def solve(self, q0: float = 0.0,
              initial_rates: Optional[Sequence[float]] = None,
              time_params: Optional[TimeParameters] = None
              ) -> MultiSourceDensityResult:
        """Solve the aggregate FP equation and attach the share decomposition."""
        if initial_rates is None:
            initial_rates = [source.initial_rate for source in self.sources]
        initial_rates = np.asarray(list(initial_rates), dtype=float)
        if initial_rates.size != len(self.sources):
            raise ConfigurationError(
                "initial_rates must have one entry per source")
        aggregate_rate0 = float(np.sum(initial_rates))
        result = self.solver.solve_from_point(q0, aggregate_rate0, time_params)
        names = [source.name or f"source-{index}"
                 for index, source in enumerate(self.sources)]
        return MultiSourceDensityResult(aggregate=result,
                                        shares=self.control.shares,
                                        source_names=names,
                                        mu=self.params.mu)
