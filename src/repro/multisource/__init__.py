"""Multiple sources sharing one bottleneck (Section 6 of the paper).

With ``N`` adaptive sources feeding one bottleneck, each source ``i`` runs
its own copy of the control law with parameters ``(C0ᵢ, C1ᵢ)`` and all of
them observe the same queue.  The paper's Section 6 results are:

* with identical parameters every source converges to an **equal** share of
  the service rate (the algorithm is fair), and
* with different parameters the equilibrium shares are determined exactly by
  the parameters -- the ratio of the increase and decrease constants decides
  who gets how much.

This subpackage provides the coupled multi-source dynamical model, the
closed-form equilibrium-share prediction and the fairness metrics used by
the Section 6 experiments (E5 and E10).
"""

from .model import MultiSourceModel, MultiSourceTrajectory
from .fairness import (
    FairnessReport,
    predicted_equilibrium_shares,
    fairness_report,
    jain_fairness_index,
)
from .fokker_planck_ms import (
    AggregateControl,
    MultiSourceDensityResult,
    MultiSourceFokkerPlanck,
)

__all__ = [
    "AggregateControl",
    "MultiSourceFokkerPlanck",
    "MultiSourceDensityResult",
    "MultiSourceModel",
    "MultiSourceTrajectory",
    "FairnessReport",
    "predicted_equilibrium_shares",
    "fairness_report",
    "jain_fairness_index",
]
