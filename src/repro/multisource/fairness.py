"""Fairness analysis and the exact equilibrium-share formula (Section 6).

Without feedback delay the coupled multi-source system slides along the
switching surface ``Q = q̂`` with ``Σᵢ λᵢ = μ``.  On the surface each source
alternates between its increase drift ``+C0ᵢ`` and its decrease drift
``−C1ᵢ λᵢ``; writing ``α`` for the fraction of time spent on the increase
side, the sliding (average) dynamics of source ``i`` are

    dλᵢ/dt = α C0ᵢ − (1 − α) C1ᵢ λᵢ.

At the sliding equilibrium every right-hand side vanishes, so

    λᵢ* ∝ C0ᵢ / C1ᵢ,           and with  Σᵢ λᵢ* = μ:

    λᵢ* = μ · (C0ᵢ / C1ᵢ) / Σⱼ (C0ⱼ / C1ⱼ).

This is the paper's Section 6 statement made concrete: equal parameters give
equal shares (fairness), and unequal parameters give shares in exact
proportion to ``C0ᵢ / C1ᵢ``.  The helpers below compute the prediction,
extract the observed shares from a :class:`MultiSourceTrajectory` (or any
throughput vector) and summarise both with Jain's fairness index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import SourceParameters, SystemParameters
from ..exceptions import AnalysisError
from .model import MultiSourceTrajectory

__all__ = [
    "predicted_equilibrium_shares",
    "predicted_equilibrium_rates",
    "jain_fairness_index",
    "FairnessReport",
    "fairness_report",
]


def predicted_equilibrium_shares(sources: Sequence[SourceParameters]) -> np.ndarray:
    """Predicted share of the bottleneck for each source (sums to one).

    The share of source ``i`` is ``(C0ᵢ/C1ᵢ) / Σⱼ (C0ⱼ/C1ⱼ)`` -- the sliding
    equilibrium of the coupled no-delay dynamics.
    """
    if len(sources) == 0:
        raise AnalysisError("need at least one source")
    ratios = np.array([source.c0 / source.c1 for source in sources], dtype=float)
    return ratios / float(np.sum(ratios))


def predicted_equilibrium_rates(sources: Sequence[SourceParameters],
                                params: SystemParameters) -> np.ndarray:
    """Predicted per-source equilibrium rates ``λᵢ* = μ · shareᵢ``."""
    return params.mu * predicted_equilibrium_shares(sources)


def jain_fairness_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index ``(Σ xᵢ)² / (n Σ xᵢ²)``.

    Equals one when all throughputs are equal and approaches ``1/n`` when a
    single source takes everything.
    """
    values = np.asarray(list(throughputs), dtype=float)
    if values.size == 0:
        raise AnalysisError("need at least one throughput value")
    if np.any(values < 0.0):
        raise AnalysisError("throughputs must be non-negative")
    total = float(np.sum(values))
    sum_of_squares = float(np.sum(values ** 2))
    if sum_of_squares == 0.0:
        return 1.0
    return total * total / (values.size * sum_of_squares)


@dataclass
class FairnessReport:
    """Predicted versus observed shares for one multi-source run.

    Attributes
    ----------
    source_names:
        Labels of the sources.
    predicted_shares:
        Shares from the closed-form sliding-equilibrium formula.
    observed_shares:
        Shares measured from the trajectory's time-average rates.
    observed_rates:
        The time-average rates themselves.
    jain_index:
        Jain fairness index of the observed rates.
    max_share_error:
        Largest absolute difference between predicted and observed shares.
    """

    source_names: List[str]
    predicted_shares: np.ndarray
    observed_shares: np.ndarray
    observed_rates: np.ndarray
    jain_index: float
    max_share_error: float

    @property
    def is_fair(self) -> bool:
        """True when the observed allocation is essentially equal (Jain ≥ 0.99)."""
        return self.jain_index >= 0.99

    def rows(self) -> List[dict]:
        """Table rows (one per source) for report printing."""
        return [
            {
                "source": name,
                "predicted_share": float(self.predicted_shares[i]),
                "observed_share": float(self.observed_shares[i]),
                "observed_rate": float(self.observed_rates[i]),
            }
            for i, name in enumerate(self.source_names)
        ]


def fairness_report(trajectory: MultiSourceTrajectory,
                    sources: Sequence[SourceParameters],
                    skip_fraction: float = 0.3) -> FairnessReport:
    """Compare a simulated multi-source run against the share prediction."""
    if trajectory.n_sources != len(sources):
        raise AnalysisError(
            "trajectory and source list disagree on the number of sources")
    predicted = predicted_equilibrium_shares(sources)
    observed_rates = trajectory.time_average_rates(skip_fraction)
    total = float(np.sum(observed_rates))
    observed_shares = (observed_rates / total if total > 0.0
                       else np.full(len(sources), 1.0 / len(sources)))
    return FairnessReport(
        source_names=list(trajectory.source_names),
        predicted_shares=predicted,
        observed_shares=observed_shares,
        observed_rates=observed_rates,
        jain_index=jain_fairness_index(observed_rates),
        max_share_error=float(np.max(np.abs(predicted - observed_shares))))
