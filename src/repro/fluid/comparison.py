"""Side-by-side comparison of the fluid model and the Fokker-Planck model.

The comparison the paper draws (abstract and Section 3) is that the fluid
approximation tracks only the deterministic mean, while the Fokker-Planck
model additionally yields the spread of the queue around the mean -- the
quantity needed for, e.g., buffer-overflow probabilities.  This module runs
both models on identical parameters and reports (a) how close the mean
trajectories are and (b) the variance information only the FP model has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import GridParameters, SystemParameters, TimeParameters
from ..control.base import RateControl
from ..core.solver import FokkerPlanckResult, FokkerPlanckSolver
from .bolot_shankar import FluidModel, FluidTrajectory

__all__ = ["FluidFPComparison", "compare_fluid_and_fokker_planck"]


@dataclass
class FluidFPComparison:
    """Outcome of running the fluid and Fokker-Planck models side by side.

    Attributes
    ----------
    fluid:
        The deterministic fluid trajectory.
    fokker_planck:
        The Fokker-Planck result (densities and moments over time).
    mean_queue_rmse:
        Root-mean-square difference between the fluid queue and the FP mean
        queue, evaluated at the FP snapshot times.
    final_queue_std:
        Queue standard deviation at the end of the FP run -- the information
        the fluid model cannot provide (it is identically zero there).
    overflow_probability:
        ``P(Q > buffer)`` at the final time for the configured buffer size
        (``None`` when no buffer size was given).
    """

    fluid: FluidTrajectory
    fokker_planck: FokkerPlanckResult
    mean_queue_rmse: float
    final_queue_std: float
    overflow_probability: Optional[float]


def compare_fluid_and_fokker_planck(control: RateControl,
                                    params: SystemParameters,
                                    q0: float, rate0: float,
                                    t_end: float = 150.0,
                                    grid_params: Optional[GridParameters] = None,
                                    buffer_size: Optional[float] = None
                                    ) -> FluidFPComparison:
    """Run both models from the same initial point and compare them.

    Parameters
    ----------
    control, params:
        Control law and system parameters shared by both models.
    q0, rate0:
        Common initial queue length and arrival rate.
    t_end:
        Horizon for both integrations.
    grid_params:
        Optional phase-grid override for the FP solver.
    buffer_size:
        When given, also report ``P(Q > buffer_size)`` at the final time.
    """
    # The reduced (fluid) trajectory rides the batched characteristic
    # engine -- one-member family, bit-identical to the scalar integration.
    fluid_model = FluidModel(control, params)
    fluid = fluid_model.solve_batch([q0], [rate0], t_end=t_end, dt=0.02)[0]

    fp_solver = FokkerPlanckSolver(params, control, grid_params=grid_params)
    time_params = TimeParameters(t_end=t_end, dt=max(t_end / 200.0, 0.05),
                                 snapshot_every=1)
    fp_result = fp_solver.solve_from_point(q0, rate0, time_params)

    fp_times = fp_result.times
    fp_mean_queue = fp_result.mean_queue
    fluid_queue_at_fp_times = np.interp(fp_times, fluid.times, fluid.queue)
    rmse = float(np.sqrt(np.mean((fp_mean_queue - fluid_queue_at_fp_times) ** 2)))

    overflow = None
    if buffer_size is not None:
        overflow = fp_result.overflow_probability(buffer_size)

    return FluidFPComparison(
        fluid=fluid,
        fokker_planck=fp_result,
        mean_queue_rmse=rmse,
        final_queue_std=float(fp_result.std_queue[-1]),
        overflow_probability=overflow)
