"""The Bolot-Shankar coupled-ODE fluid model.

Bolot and Shankar [BoSh 90] analyse the Ramakrishnan-Jain algorithm with a
deterministic fluid model: the queue obeys

    dQ/dt = λ(t) − μ        when Q > 0 or λ > μ, else 0      (Equation 5)

and the arrival rate obeys the control law ``dλ/dt = g(Q, λ)``.  Both
quantities are treated as deterministic functions of time; the model
captures the mean behaviour (and, with delay, the oscillations) but has no
notion of variance -- the gap the paper's Fokker-Planck formulation fills.

The model optionally takes a feedback delay ``τ``: the controller then sees
``Q(t − τ)`` instead of ``Q(t)``, turning the system into a DDE which is
integrated by the method of steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..characteristics.trajectory import integrate_characteristic_batch
from ..config import SystemParameters
from ..control.base import RateControl
from ..numerics.dde import integrate_dde

__all__ = ["FluidModel", "FluidTrajectory"]


@dataclass
class FluidTrajectory:
    """Deterministic ``(Q(t), λ(t))`` trajectory of the fluid model."""

    times: np.ndarray
    queue: np.ndarray
    rate: np.ndarray
    mu: float

    @property
    def growth_rate(self) -> np.ndarray:
        """Queue growth rate ``ν(t) = λ(t) − μ``."""
        return self.rate - self.mu

    @property
    def final_queue(self) -> float:
        """Queue length at the end of the run."""
        return float(self.queue[-1])

    @property
    def final_rate(self) -> float:
        """Arrival rate at the end of the run."""
        return float(self.rate[-1])

    def time_average_queue(self, skip_fraction: float = 0.2) -> float:
        """Time-averaged queue length over the post-transient part of the run."""
        start = min(int(skip_fraction * self.times.size), self.times.size - 2)
        duration = self.times[-1] - self.times[start]
        if duration <= 0.0:
            return float(self.queue[-1])
        return float(np.trapezoid(self.queue[start:], self.times[start:]) / duration)


class FluidModel:
    """Deterministic fluid approximation of the controlled queue.

    Parameters
    ----------
    control:
        Rate-control law ``g(q, λ)``.
    params:
        System parameters (``mu`` is the service rate).
    feedback_delay:
        Feedback delay ``τ ≥ 0``.  Zero gives the plain coupled-ODE model of
        Bolot-Shankar; a positive value delays the queue value the
        controller sees.
    """

    def __init__(self, control: RateControl, params: SystemParameters,
                 feedback_delay: float = 0.0):
        if feedback_delay < 0.0:
            raise ValueError("feedback_delay must be non-negative")
        self.control = control
        self.params = params
        self.feedback_delay = float(feedback_delay)

    def _queue_drift(self, queue: float, rate: float) -> float:
        drift = rate - self.params.mu
        if queue <= 0.0 and drift < 0.0:
            return 0.0
        return drift

    @staticmethod
    def _project(state: np.ndarray) -> np.ndarray:
        return np.array([max(state[0], 0.0), max(state[1], 0.0)])

    def solve(self, q0: float, rate0: float, t_end: float,
              dt: float = 0.02) -> FluidTrajectory:
        """Integrate the fluid model from ``(q0, rate0)`` until ``t_end``.

        The undelayed model rides the batched characteristic engine (as a
        family of one), which is bit-identical to the scalar fixed-step
        integration the model used before.
        """
        if self.feedback_delay == 0.0:
            return self.solve_batch([q0], [rate0], t_end=t_end, dt=dt)[0]

        delay = self.feedback_delay

        def delayed_rhs(t: float, state: np.ndarray, history) -> np.ndarray:
            q, lam = state
            q_seen = float(history(t - delay)[0])
            return np.array([
                self._queue_drift(q, lam),
                float(np.asarray(self.control.drift(q_seen, lam))),
            ])

        result = integrate_dde(delayed_rhs, [q0, rate0], t_end=t_end, dt=dt,
                               projection=self._project)
        return FluidTrajectory(times=result.times,
                               queue=result.states[:, 0],
                               rate=result.states[:, 1],
                               mu=self.params.mu)

    def solve_batch(self, q0, rate0, t_end: float,
                    dt: float = 0.02) -> List[FluidTrajectory]:
        """Integrate a family of fluid trajectories as one batched run.

        *q0* and *rate0* are scalars or broadcastable 1-D arrays of initial
        conditions.  Only the undelayed model batches (the delayed model is
        a DDE with per-trajectory history and stays scalar); each returned
        trajectory is bit-identical to ``solve`` from the same point.
        """
        if self.feedback_delay != 0.0:
            raise ValueError(
                "solve_batch supports only the undelayed fluid model")
        # The undelayed fluid system *is* the characteristic system (pinned
        # queue drift, non-negativity projection), so the integration is
        # delegated to the one batched implementation of those dynamics.
        batch = integrate_characteristic_batch(self.control, self.params,
                                               q0, rate0, t_end=t_end, dt=dt)
        return [FluidTrajectory(times=batch.times,
                                queue=batch.queue[:, index],
                                rate=batch.rate[:, index],
                                mu=self.params.mu)
                for index in range(batch.batch_size)]
