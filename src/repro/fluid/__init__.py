"""Deterministic fluid-approximation baseline (Bolot and Shankar [BoSh 90]).

The paper positions its Fokker-Planck model against the fluid approximation
used by Bolot and Shankar, which couples two deterministic ODEs -- one for
the queue length and one for the arrival rate -- and therefore cannot say
anything about the *variability* of the queue.  This subpackage implements
that baseline exactly as described (Equation 5 of the paper for the queue,
the control law for the rate) so the comparison experiment (E9) can run the
two side by side.
"""

from .bolot_shankar import FluidModel, FluidTrajectory
from .comparison import compare_fluid_and_fokker_planck, FluidFPComparison

__all__ = [
    "FluidModel",
    "FluidTrajectory",
    "compare_fluid_and_fokker_planck",
    "FluidFPComparison",
]
