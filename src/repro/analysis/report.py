"""Plain-text tables and series for benchmark / example output.

The benchmark harness prints the same rows and series the paper's figures
show; these helpers keep that formatting in one place so every experiment's
output looks the same and is easy to diff across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_key_values"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000.0 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Iterable[float], ys: Iterable[float],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 40) -> str:
    """Render an ``(x, y)`` series as a compact two-column listing.

    Long series are thinned to at most *max_points* evenly spaced samples so
    benchmark output stays readable.
    """
    xs = list(xs)
    ys = list(ys)
    n = len(xs)
    if n != len(ys):
        raise ValueError("xs and ys must have the same length")
    if n == 0:
        return f"{name}: (empty series)"
    stride = max(1, n // max_points)
    indices = list(range(0, n, stride))
    if indices[-1] != n - 1:
        indices.append(n - 1)
    rows = [{x_label: float(xs[i]), y_label: float(ys[i])} for i in indices]
    return format_table(rows, columns=[x_label, y_label], title=name)


def format_key_values(title: str, values: Mapping[str, object]) -> str:
    """Render a mapping as an aligned ``key : value`` block."""
    if not values:
        return f"{title}\n(none)"
    width = max(len(str(key)) for key in values)
    lines = [title]
    for key, value in values.items():
        lines.append(f"  {str(key).ljust(width)} : {_format_cell(value)}")
    return "\n".join(lines)
