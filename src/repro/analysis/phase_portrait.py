"""Plain-text rendering of phase-plane trajectories.

The paper's Figures 2 and 3 are phase-plane pictures; for a library that
must run headless (no plotting dependencies) an ASCII rendering is the
honest equivalent.  :func:`render_phase_portrait` rasterises one or more
``(q, ν)`` trajectories onto a character grid, marking the switching line
``q = q̂``, the ``ν = 0`` axis and the limit point, so the convergent spiral
and the delay-induced limit cycle can be inspected directly in a terminal or
a test log.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["render_phase_portrait", "render_trajectory_portrait"]

_TRAJECTORY_MARKS = "abcdefghij"


def render_phase_portrait(trajectories: Sequence[Tuple[np.ndarray, np.ndarray]],
                          q_target: float, width: int = 72, height: int = 24,
                          q_range: Tuple[float, float] = None,
                          v_range: Tuple[float, float] = None) -> str:
    """Render ``(q, ν)`` trajectories as an ASCII phase portrait.

    Parameters
    ----------
    trajectories:
        Sequence of ``(q_values, v_values)`` pairs; each is drawn with its
        own letter (``a``, ``b``, ...), later trajectories drawn on top.
    q_target:
        Position of the vertical switching line ``q = q̂``.
    width, height:
        Character-grid dimensions.
    q_range, v_range:
        Axis limits; default to the data range padded by 5 %.

    Returns
    -------
    str
        The rendered portrait, one string with embedded newlines, including
        axis annotations.
    """
    if not trajectories:
        raise AnalysisError("need at least one trajectory to render")
    if width < 20 or height < 8:
        raise AnalysisError("portrait must be at least 20x8 characters")

    all_q = np.concatenate([np.asarray(q, dtype=float) for q, _ in trajectories])
    all_v = np.concatenate([np.asarray(v, dtype=float) for _, v in trajectories])
    if q_range is None:
        q_low, q_high = float(np.min(all_q)), float(np.max(all_q))
        padding = 0.05 * max(q_high - q_low, 1e-9)
        q_range = (q_low - padding, q_high + padding)
    if v_range is None:
        v_low, v_high = float(np.min(all_v)), float(np.max(all_v))
        padding = 0.05 * max(v_high - v_low, 1e-9)
        v_range = (v_low - padding, v_high + padding)

    q_low, q_high = q_range
    v_low, v_high = v_range
    if q_high <= q_low or v_high <= v_low:
        raise AnalysisError("axis ranges must have positive extent")

    grid = [[" "] * width for _ in range(height)]

    def to_column(q: float) -> int:
        fraction = (q - q_low) / (q_high - q_low)
        return int(round(fraction * (width - 1)))

    def to_row(v: float) -> int:
        fraction = (v - v_low) / (v_high - v_low)
        return (height - 1) - int(round(fraction * (height - 1)))

    # Axis lines: nu = 0 and q = q_target (drawn first so data overwrites them).
    if v_low <= 0.0 <= v_high:
        row = to_row(0.0)
        for column in range(width):
            grid[row][column] = "-"
    if q_low <= q_target <= q_high:
        column = to_column(q_target)
        for row in range(height):
            grid[row][column] = "|" if grid[row][column] == " " else "+"

    for index, (q_values, v_values) in enumerate(trajectories):
        mark = _TRAJECTORY_MARKS[index % len(_TRAJECTORY_MARKS)]
        q_values = np.asarray(q_values, dtype=float)
        v_values = np.asarray(v_values, dtype=float)
        if q_values.shape != v_values.shape:
            raise AnalysisError("trajectory q and v arrays must align")
        for q, v in zip(q_values, v_values):
            if not (q_low <= q <= q_high and v_low <= v <= v_high):
                continue
            grid[to_row(v)][to_column(q)] = mark

    # Limit point marker (q_target, 0).
    if q_low <= q_target <= q_high and v_low <= 0.0 <= v_high:
        grid[to_row(0.0)][to_column(q_target)] = "*"

    lines: List[str] = []
    lines.append(f"nu (growth rate)  range [{v_low:.3g}, {v_high:.3g}]")
    for row in grid:
        lines.append("".join(row))
    lines.append(f"q (queue length)  range [{q_low:.3g}, {q_high:.3g}]   "
                 f"'|' q = q_target, '-' nu = 0, '*' limit point")
    return "\n".join(lines)


def render_trajectory_portrait(trajectory, width: int = 72,
                               height: int = 24) -> str:
    """Render a single :class:`CharacteristicTrajectory`-like object.

    The object only needs ``queue``, ``rate``, ``mu`` and ``q_target``
    attributes, so both plain characteristics and delayed trajectories work.
    """
    q_values = np.asarray(trajectory.queue, dtype=float)
    v_values = np.asarray(trajectory.rate, dtype=float) - trajectory.mu
    return render_phase_portrait([(q_values, v_values)],
                                 q_target=trajectory.q_target,
                                 width=width, height=height)
