"""Plain-text rendering of phase-plane trajectories.

The paper's Figures 2 and 3 are phase-plane pictures; for a library that
must run headless (no plotting dependencies) an ASCII rendering is the
honest equivalent.  :func:`render_phase_portrait` rasterises one or more
``(q, ν)`` trajectories onto a character grid, marking the switching line
``q = q̂``, the ``ν = 0`` axis and the limit point, so the convergent spiral
and the delay-induced limit cycle can be inspected directly in a terminal or
a test log.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["render_phase_portrait", "render_trajectory_portrait",
           "render_batch_portrait"]

_TRAJECTORY_MARKS = "abcdefghij"


def render_phase_portrait(trajectories: Sequence[Tuple[np.ndarray, np.ndarray]],
                          q_target: float, width: int = 72, height: int = 24,
                          q_range: Optional[Tuple[float, float]] = None,
                          v_range: Optional[Tuple[float, float]] = None) -> str:
    """Render ``(q, ν)`` trajectories as an ASCII phase portrait.

    Parameters
    ----------
    trajectories:
        Sequence of ``(q_values, v_values)`` pairs; each is drawn with its
        own letter (``a``, ``b``, ...), later trajectories drawn on top.
    q_target:
        Position of the vertical switching line ``q = q̂``.
    width, height:
        Character-grid dimensions.
    q_range, v_range:
        Axis limits; default to the data range padded by 5 %.

    Returns
    -------
    str
        The rendered portrait, one string with embedded newlines, including
        axis annotations.
    """
    if not trajectories:
        raise AnalysisError("need at least one trajectory to render")
    if width < 20 or height < 8:
        raise AnalysisError("portrait must be at least 20x8 characters")

    all_q = np.concatenate([np.asarray(q, dtype=float) for q, _ in trajectories])
    all_v = np.concatenate([np.asarray(v, dtype=float) for _, v in trajectories])
    if q_range is None:
        q_low, q_high = float(np.min(all_q)), float(np.max(all_q))
        padding = 0.05 * max(q_high - q_low, 1e-9)
        q_range = (q_low - padding, q_high + padding)
    if v_range is None:
        v_low, v_high = float(np.min(all_v)), float(np.max(all_v))
        padding = 0.05 * max(v_high - v_low, 1e-9)
        v_range = (v_low - padding, v_high + padding)

    q_low, q_high = q_range
    v_low, v_high = v_range
    if q_high <= q_low or v_high <= v_low:
        raise AnalysisError("axis ranges must have positive extent")

    grid = np.full((height, width), " ", dtype="<U1")

    def to_columns(q: np.ndarray) -> np.ndarray:
        fraction = (q - q_low) / (q_high - q_low)
        return np.round(fraction * (width - 1)).astype(int)

    def to_rows(v: np.ndarray) -> np.ndarray:
        fraction = (v - v_low) / (v_high - v_low)
        return (height - 1) - np.round(fraction * (height - 1)).astype(int)

    # Axis lines: nu = 0 and q = q_target (drawn first so data overwrites them).
    if v_low <= 0.0 <= v_high:
        grid[int(to_rows(np.asarray(0.0)))] = "-"
    if q_low <= q_target <= q_high:
        column = int(to_columns(np.asarray(q_target)))
        grid[:, column] = np.where(grid[:, column] == " ", "|", "+")

    for index, (q_values, v_values) in enumerate(trajectories):
        mark = _TRAJECTORY_MARKS[index % len(_TRAJECTORY_MARKS)]
        q_values = np.asarray(q_values, dtype=float)
        v_values = np.asarray(v_values, dtype=float)
        if q_values.shape != v_values.shape:
            raise AnalysisError("trajectory q and v arrays must align")
        # Vectorized rasterisation: every in-range sample writes the same
        # mark, so the scatter assignment is order-independent and matches
        # the old per-sample loop cell for cell.
        inside = ((q_low <= q_values) & (q_values <= q_high)
                  & (v_low <= v_values) & (v_values <= v_high))
        grid[to_rows(v_values[inside]), to_columns(q_values[inside])] = mark

    # Limit point marker (q_target, 0).
    if q_low <= q_target <= q_high and v_low <= 0.0 <= v_high:
        grid[int(to_rows(np.asarray(0.0))),
             int(to_columns(np.asarray(q_target)))] = "*"

    lines: List[str] = []
    lines.append(f"nu (growth rate)  range [{v_low:.3g}, {v_high:.3g}]")
    for row in grid:
        lines.append("".join(row))
    lines.append(f"q (queue length)  range [{q_low:.3g}, {q_high:.3g}]   "
                 f"'|' q = q_target, '-' nu = 0, '*' limit point")
    return "\n".join(lines)


def render_trajectory_portrait(trajectory, width: int = 72,
                               height: int = 24) -> str:
    """Render a single :class:`CharacteristicTrajectory`-like object.

    The object only needs ``queue``, ``rate``, ``mu`` and ``q_target``
    attributes, so both plain characteristics and delayed trajectories work.
    """
    q_values = np.asarray(trajectory.queue, dtype=float)
    v_values = np.asarray(trajectory.rate, dtype=float) - trajectory.mu
    return render_phase_portrait([(q_values, v_values)],
                                 q_target=trajectory.q_target,
                                 width=width, height=height)


def render_batch_portrait(batch, width: int = 72, height: int = 24,
                          q_range: Optional[Tuple[float, float]] = None,
                          v_range: Optional[Tuple[float, float]] = None) -> str:
    """Render a batched characteristic family in one portrait.

    *batch* is a :class:`~repro.characteristics.trajectory.CharacteristicBatch`
    (or anything exposing ``trajectory(i)``, ``batch_size`` and ``q_target``);
    every member is drawn with its own letter, cycling through the marks.
    The switching line is meaningful only for a family sharing one target, so
    heterogeneous ``q_target`` columns are rejected.
    """
    q_targets = np.unique(np.asarray(batch.q_target, dtype=float))
    if q_targets.size != 1:
        raise AnalysisError(
            "cannot draw one switching line for a family with heterogeneous "
            "q_target values; render sub-families instead")
    members = [batch.trajectory(index) for index in range(batch.batch_size)]
    pairs = [(member.queue, member.rate - member.mu) for member in members]
    return render_phase_portrait(pairs, q_target=float(q_targets[0]),
                                 width=width, height=height,
                                 q_range=q_range, v_range=v_range)
