"""Convergence assessment of time series.

Used to decide, for any of the substrates, whether a trajectory converges to
a target value (Theorem 1's claim for the undelayed JRJ system) or keeps
oscillating (the delayed-feedback regime), and how long it takes to settle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["ConvergenceReport", "assess_convergence", "settling_time"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of a convergence assessment of one scalar time series.

    Attributes
    ----------
    converged:
        True when the series ends inside the tolerance band around the
        target and stays there.
    settling_time:
        First time after which the series never leaves the band
        (``None`` when it never settles).
    final_value:
        Last value of the series.
    final_error:
        Absolute difference between the final value and the target.
    residual_amplitude:
        Half the peak-to-trough swing over the last quarter of the series --
        near zero for a converged series, positive for sustained
        oscillation.
    """

    converged: bool
    settling_time: Optional[float]
    final_value: float
    final_error: float
    residual_amplitude: float


def settling_time(times: np.ndarray, values: np.ndarray, target: float,
                  tolerance: float) -> Optional[float]:
    """First time after which ``|values − target| ≤ tolerance`` holds for good.

    Returns ``None`` when the series never settles inside the band.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape or times.size == 0:
        raise AnalysisError("times and values must be equal-length, non-empty")
    inside = np.abs(values - target) <= tolerance
    if not inside[-1]:
        return None
    # Walk backwards to the first index of the trailing all-inside run.
    index = values.size - 1
    while index > 0 and inside[index - 1]:
        index -= 1
    return float(times[index])


def assess_convergence(times: np.ndarray, values: np.ndarray, target: float,
                       tolerance: Optional[float] = None,
                       tail_fraction: float = 0.25) -> ConvergenceReport:
    """Assess whether the series converges to *target*.

    Parameters
    ----------
    times, values:
        The series to assess.
    target:
        The value convergence is measured against (e.g. ``q̂`` for the queue
        or ``μ`` for the rate).
    tolerance:
        Band half-width; defaults to 10 % of ``max(|target|, 1)``.
    tail_fraction:
        Fraction of the series used to measure the residual oscillation
        amplitude.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if values.size < 4:
        raise AnalysisError("need at least four samples to assess convergence")
    if tolerance is None:
        tolerance = 0.1 * max(abs(target), 1.0)

    settle = settling_time(times, values, target, tolerance)
    tail_start = int((1.0 - tail_fraction) * values.size)
    tail = values[max(tail_start, 0):]
    residual = 0.5 * float(np.max(tail) - np.min(tail))
    final_value = float(values[-1])
    final_error = abs(final_value - target)
    converged = settle is not None and residual <= tolerance

    return ConvergenceReport(converged=converged, settling_time=settle,
                             final_value=final_value, final_error=final_error,
                             residual_amplitude=residual)
