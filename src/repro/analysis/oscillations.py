"""Oscillation metrics for arbitrary time series.

A thin, substrate-independent wrapper over the peak/FFT utilities: given any
``(times, values)`` series it reports whether a sustained oscillation is
present and, if so, its amplitude and period.  The delayed-feedback and
algorithm-comparison experiments use it on the queue-length output of every
substrate so the numbers are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import AnalysisError
from ..numerics.spectral import detect_peaks, dominant_period

__all__ = ["OscillationMetrics", "OscillationMetricsBatch",
           "oscillation_metrics", "oscillation_metrics_batch"]


@dataclass(frozen=True)
class OscillationMetrics:
    """Amplitude / period summary of one series' steady-state window.

    Attributes
    ----------
    amplitude:
        Half the peak-to-trough swing over the analysis window.
    period:
        Dominant period (NaN when there is no sustained oscillation).
    sustained:
        Whether the amplitude exceeds the supplied floor.
    mean_value:
        Mean of the series over the window.
    n_peaks:
        Number of local maxima detected in the window.
    """

    amplitude: float
    period: float
    sustained: bool
    mean_value: float
    n_peaks: int


def oscillation_metrics(times: np.ndarray, values: np.ndarray,
                        steady_fraction: float = 0.5,
                        amplitude_floor: float = 0.05) -> OscillationMetrics:
    """Measure the steady-state oscillation of ``(times, values)``.

    The final *steady_fraction* of the series is used so start-up transients
    do not inflate the amplitude.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape or times.size < 8:
        raise AnalysisError("need at least eight samples for oscillation metrics")
    if not 0.0 < steady_fraction <= 1.0:
        raise AnalysisError("steady_fraction must lie in (0, 1]")

    start = int((1.0 - steady_fraction) * values.size)
    window_times = times[start:]
    window_values = values[start:]

    amplitude = 0.5 * float(np.max(window_values) - np.min(window_values))
    sustained = amplitude > amplitude_floor
    peaks = detect_peaks(window_values)

    period = float("nan")
    if sustained and window_values.size >= 8:
        dt = float(np.mean(np.diff(window_times)))
        try:
            period = dominant_period(window_values, dt)
        except AnalysisError:
            if len(peaks) >= 2:
                period = float(np.mean(np.diff(window_times[peaks])))

    return OscillationMetrics(amplitude=amplitude, period=period,
                              sustained=sustained,
                              mean_value=float(np.mean(window_values)),
                              n_peaks=len(peaks))


@dataclass(frozen=True)
class OscillationMetricsBatch:
    """Column-wise oscillation metrics of a family of series.

    Each attribute holds one value per column of the analysed block; see
    :class:`OscillationMetrics` for their meaning.
    """

    amplitude: np.ndarray
    period: np.ndarray
    sustained: np.ndarray
    mean_value: np.ndarray
    n_peaks: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of series in the family."""
        return int(self.amplitude.size)

    def member(self, index: int) -> OscillationMetrics:
        """Extract one column as a scalar :class:`OscillationMetrics`."""
        return OscillationMetrics(amplitude=float(self.amplitude[index]),
                                  period=float(self.period[index]),
                                  sustained=bool(self.sustained[index]),
                                  mean_value=float(self.mean_value[index]),
                                  n_peaks=int(self.n_peaks[index]))


def oscillation_metrics_batch(times: np.ndarray, values: np.ndarray,
                              steady_fraction: float = 0.5,
                              amplitude_floor: float = 0.05
                              ) -> OscillationMetricsBatch:
    """Column-wise :func:`oscillation_metrics` over a ``(n, batch)`` block.

    Every column is analysed by the scalar routine, so each member of the
    result is identical to the scalar call on that column -- the parity the
    gain-design sweeps rely on when they spot-check batch scores.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or times.shape != (values.shape[0],):
        raise AnalysisError(
            "oscillation_metrics_batch needs times of shape (n,) and values "
            "of shape (n, batch)")
    members = [oscillation_metrics(times, values[:, index],
                                   steady_fraction=steady_fraction,
                                   amplitude_floor=amplitude_floor)
               for index in range(values.shape[1])]
    return OscillationMetricsBatch(
        amplitude=np.array([m.amplitude for m in members]),
        period=np.array([m.period for m in members]),
        sustained=np.array([m.sustained for m in members], dtype=bool),
        mean_value=np.array([m.mean_value for m in members]),
        n_peaks=np.array([m.n_peaks for m in members], dtype=int))
