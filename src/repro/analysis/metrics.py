"""Small scalar metrics shared by the experiments."""

from __future__ import annotations

import numpy as np

from ..exceptions import AnalysisError

__all__ = [
    "overshoot",
    "time_to_first_peak",
    "mean_absolute_error",
    "root_mean_square_error",
]


def overshoot(values: np.ndarray, target: float) -> float:
    """Maximum excursion of *values* above *target* (zero when never exceeded)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("values must be non-empty")
    return float(max(np.max(values) - target, 0.0))


def time_to_first_peak(times: np.ndarray, values: np.ndarray) -> float:
    """Time of the global maximum of the series."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape or times.size == 0:
        raise AnalysisError("times and values must be equal-length, non-empty")
    return float(times[int(np.argmax(values))])


def mean_absolute_error(a: np.ndarray, b: np.ndarray) -> float:
    """Mean absolute difference of two equal-length series."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise AnalysisError("series must have the same shape")
    if a.size == 0:
        raise AnalysisError("series must be non-empty")
    return float(np.mean(np.abs(a - b)))


def root_mean_square_error(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square difference of two equal-length series."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise AnalysisError("series must have the same shape")
    if a.size == 0:
        raise AnalysisError("series must be non-empty")
    return float(np.sqrt(np.mean((a - b) ** 2)))
