"""Post-processing analyses shared by the tests, examples and benchmarks.

The modules here turn raw trajectories (from the characteristic / DDE /
fluid / packet-level / Fokker-Planck substrates) into the quantities the
paper's claims are stated about: convergence and settling time, oscillation
amplitude and period, fairness indices and share tables, and plain-text
report tables that the benchmark harness prints.
"""

from .convergence import ConvergenceReport, assess_convergence, settling_time
from .oscillations import (OscillationMetrics, OscillationMetricsBatch,
                           oscillation_metrics, oscillation_metrics_batch)
from .fairness import ShareTable, share_table
from .metrics import (
    overshoot,
    time_to_first_peak,
    mean_absolute_error,
    root_mean_square_error,
)
from .report import format_table, format_series, format_key_values
from .phase_portrait import (
    render_phase_portrait,
    render_trajectory_portrait,
    render_batch_portrait,
)

__all__ = [
    "render_phase_portrait",
    "render_trajectory_portrait",
    "render_batch_portrait",
    "ConvergenceReport",
    "assess_convergence",
    "settling_time",
    "OscillationMetrics",
    "OscillationMetricsBatch",
    "oscillation_metrics",
    "oscillation_metrics_batch",
    "ShareTable",
    "share_table",
    "overshoot",
    "time_to_first_peak",
    "mean_absolute_error",
    "root_mean_square_error",
    "format_table",
    "format_series",
    "format_key_values",
]
