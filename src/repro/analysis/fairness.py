"""Share tables: fairness comparison across sources and substrates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import AnalysisError
from ..multisource.fairness import jain_fairness_index

__all__ = ["ShareTable", "share_table"]


@dataclass
class ShareTable:
    """Per-source throughput shares with optional predictions.

    Attributes
    ----------
    names:
        Source labels.
    throughputs:
        Absolute throughputs (any common unit).
    shares:
        Normalised shares (sum to one).
    predicted_shares:
        Optional model prediction to compare against.
    jain_index:
        Jain fairness index of the throughputs.
    """

    names: List[str]
    throughputs: np.ndarray
    shares: np.ndarray
    predicted_shares: Optional[np.ndarray]
    jain_index: float

    def max_prediction_error(self) -> float:
        """Largest |observed − predicted| share (NaN without predictions)."""
        if self.predicted_shares is None:
            return float("nan")
        return float(np.max(np.abs(self.shares - self.predicted_shares)))

    def rows(self) -> List[dict]:
        """One dictionary per source, ready for table formatting."""
        rows = []
        for i, name in enumerate(self.names):
            row = {
                "source": name,
                "throughput": float(self.throughputs[i]),
                "share": float(self.shares[i]),
            }
            if self.predicted_shares is not None:
                row["predicted_share"] = float(self.predicted_shares[i])
            rows.append(row)
        return rows


def share_table(names: Sequence[str], throughputs: Sequence[float],
                predicted_shares: Optional[Sequence[float]] = None
                ) -> ShareTable:
    """Build a :class:`ShareTable` from raw throughputs.

    Raises
    ------
    AnalysisError
        On length mismatches or negative throughputs.
    """
    names = list(names)
    throughputs = np.asarray(list(throughputs), dtype=float)
    if len(names) != throughputs.size:
        raise AnalysisError("names and throughputs must have the same length")
    if np.any(throughputs < 0.0):
        raise AnalysisError("throughputs must be non-negative")
    total = float(np.sum(throughputs))
    shares = (throughputs / total if total > 0.0
              else np.full(throughputs.size, 1.0 / max(throughputs.size, 1)))

    predicted = None
    if predicted_shares is not None:
        predicted = np.asarray(list(predicted_shares), dtype=float)
        if predicted.size != throughputs.size:
            raise AnalysisError("predicted_shares length mismatch")

    return ShareTable(names=names, throughputs=throughputs, shares=shares,
                      predicted_shares=predicted,
                      jain_index=jain_fairness_index(throughputs))
