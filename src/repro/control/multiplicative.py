"""Multiplicative rate-control variants.

These laws round out the family of feedback controls the paper's generic
``g(q, λ)`` formulation covers.  They are used by the algorithm-comparison
benchmark (experiment E8) and by tests that exercise the Fokker-Planck
solver with drifts that depend on ``λ`` in both half planes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .base import RateControl

__all__ = [
    "MultiplicativeIncreaseMultiplicativeDecrease",
    "LinearIncreaseMultiplicativeStepDecrease",
]


class MultiplicativeIncreaseMultiplicativeDecrease(RateControl):
    """Exponential growth below the target and exponential decay above it.

        dλ/dt =  A λ     if q ≤ q̂,
        dλ/dt = −B λ     if q > q̂.

    With multiplicative increase the probing is aggressive at high rates,
    which is known (and reproduced by the characteristic analysis here) to
    produce larger queue excursions than the JRJ law.
    """

    def __init__(self, increase_gain: float, decrease_gain: float, q_target: float):
        if increase_gain <= 0.0:
            raise ConfigurationError("increase_gain must be positive")
        if decrease_gain <= 0.0:
            raise ConfigurationError("decrease_gain must be positive")
        if q_target < 0.0:
            raise ConfigurationError("q_target must be non-negative")
        self.increase_gain = float(increase_gain)
        self.decrease_gain = float(decrease_gain)
        self.q_target = float(q_target)

    def drift(self, queue_length, rate):
        """Return ``dλ/dt`` = ``+A λ`` below target, ``−B λ`` above."""
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        result = np.where(queue_length <= self.q_target,
                          self.increase_gain * rate,
                          -self.decrease_gain * rate)
        if result.shape == ():
            return float(result)
        return result

    def drift_batch(self, queue_length, rate, increase_gain=None,
                    decrease_gain=None, q_target=None):
        """Batched drift with per-trajectory gain/target columns."""
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        increase_gain = (self.increase_gain if increase_gain is None
                         else np.asarray(increase_gain, dtype=float))
        decrease_gain = (self.decrease_gain if decrease_gain is None
                         else np.asarray(decrease_gain, dtype=float))
        q_target = (self.q_target if q_target is None
                    else np.asarray(q_target, dtype=float))
        return np.where(queue_length <= q_target, increase_gain * rate,
                        -decrease_gain * rate)

    def describe(self) -> str:
        return (f"multiplicative-increase/multiplicative-decrease "
                f"(A={self.increase_gain:g}, B={self.decrease_gain:g}, "
                f"q_target={self.q_target:g})")


class LinearIncreaseMultiplicativeStepDecrease(RateControl):
    """Linear increase with a rate-proportional decrease of bounded slope.

        dλ/dt =  C0                          if q ≤ q̂,
        dλ/dt = −min(C1 λ, max_decrease)     if q > q̂.

    This models implementations that cap how fast the sending rate may be
    reduced in one control interval; the cap becomes visible as a flattening
    of the decrease segment of the phase-plane spiral.
    """

    def __init__(self, c0: float, c1: float, q_target: float,
                 max_decrease: float):
        if c0 <= 0.0 or c1 <= 0.0:
            raise ConfigurationError("c0 and c1 must be positive")
        if q_target < 0.0:
            raise ConfigurationError("q_target must be non-negative")
        if max_decrease <= 0.0:
            raise ConfigurationError("max_decrease must be positive")
        self.c0 = float(c0)
        self.c1 = float(c1)
        self.q_target = float(q_target)
        self.max_decrease = float(max_decrease)

    def drift(self, queue_length, rate):
        """Return the capped-decrease drift described in the class docstring."""
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        shape = np.broadcast(queue_length, rate).shape
        increase = np.full(shape, self.c0)
        decrease = -np.minimum(self.c1 * np.abs(rate), self.max_decrease)
        result = np.where(queue_length <= self.q_target, increase, decrease)
        if result.shape == ():
            return float(result)
        return result

    def drift_batch(self, queue_length, rate, c0=None, c1=None,
                    q_target=None, max_decrease=None):
        """Batched drift with per-trajectory ``c0``/``c1``/``q_target``/cap."""
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        c0 = self.c0 if c0 is None else np.asarray(c0, dtype=float)
        c1 = self.c1 if c1 is None else np.asarray(c1, dtype=float)
        q_target = (self.q_target if q_target is None
                    else np.asarray(q_target, dtype=float))
        max_decrease = (self.max_decrease if max_decrease is None
                        else np.asarray(max_decrease, dtype=float))
        decrease = -np.minimum(c1 * np.abs(rate), max_decrease)
        return np.where(queue_length <= q_target, c0, decrease)

    def describe(self) -> str:
        return (f"linear-increase/capped-multiplicative-decrease "
                f"(C0={self.c0:g}, C1={self.c1:g}, cap={self.max_decrease:g}, "
                f"q_target={self.q_target:g})")
