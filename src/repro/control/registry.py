"""Name-based registry of rate-control laws.

Scenario builders, the command-line examples and the benchmark harness refer
to control laws by short names ("jrj", "linear", ...) so that parameter
sweeps over algorithm families stay declarative.  New laws can be added by
downstream users through :func:`register_control`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import ConfigurationError
from .base import RateControl
from .jrj import JRJControl
from .linear import AdditiveIncreaseAdditiveDecrease, LinearIncreaseLinearDecrease
from .multiplicative import (
    LinearIncreaseMultiplicativeStepDecrease,
    MultiplicativeIncreaseMultiplicativeDecrease,
)

__all__ = ["register_control", "create_control", "available_controls"]

ControlFactory = Callable[..., RateControl]

_REGISTRY: Dict[str, ControlFactory] = {}


def register_control(name: str, factory: ControlFactory,
                     overwrite: bool = False) -> None:
    """Register *factory* under *name* (case-insensitive).

    Raises
    ------
    ConfigurationError
        If the name is already registered and *overwrite* is false.
    """
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("control-law name must be non-empty")
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"control law '{name}' is already registered")
    _REGISTRY[key] = factory


def create_control(name: str, **kwargs) -> RateControl:
    """Instantiate a registered control law by name with keyword parameters."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown control law '{name}'; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key](**kwargs)


def available_controls() -> List[str]:
    """Return the sorted list of registered control-law names."""
    return sorted(_REGISTRY)


# Built-in registrations.
register_control("jrj", JRJControl)
register_control("linear-exponential", JRJControl)
register_control("linear", LinearIncreaseLinearDecrease)
register_control("linear-linear", LinearIncreaseLinearDecrease)
register_control("aiad", AdditiveIncreaseAdditiveDecrease)
register_control("mimd", MultiplicativeIncreaseMultiplicativeDecrease)
register_control("capped-jrj", LinearIncreaseMultiplicativeStepDecrease)
