"""Rate-control and window-control algorithm library.

The paper analyses a *generic* rate-control law ``dλ/dt = g(q, λ)``
(Equation 4) and instantiates it with the Jacobson / Ramakrishnan-Jain
rate analogue (Equation 2): linear increase while the queue is below the
target ``q̂`` and exponential decrease above it.  This subpackage provides

* :class:`RateControl` -- the abstract interface every control law follows,
* the concrete laws used in the paper's discussion (JRJ
  linear-increase/exponential-decrease, linear/linear, multiplicative
  variants),
* window-based algorithms (Jacobson's TCP congestion avoidance and the
  Ramakrishnan-Jain DECbit scheme) used by the packet-level simulator, and
* a small registry so scenarios and benchmarks can look laws up by name.
"""

from .base import RateControl, WindowControl
from .jrj import JRJControl, jrj_from_parameters
from .linear import LinearIncreaseLinearDecrease, AdditiveIncreaseAdditiveDecrease
from .multiplicative import (
    MultiplicativeIncreaseMultiplicativeDecrease,
    LinearIncreaseMultiplicativeStepDecrease,
)
from .window import JacobsonWindow, DECbitWindow
from .registry import register_control, create_control, available_controls

__all__ = [
    "RateControl",
    "WindowControl",
    "JRJControl",
    "jrj_from_parameters",
    "LinearIncreaseLinearDecrease",
    "AdditiveIncreaseAdditiveDecrease",
    "MultiplicativeIncreaseMultiplicativeDecrease",
    "LinearIncreaseMultiplicativeStepDecrease",
    "JacobsonWindow",
    "DECbitWindow",
    "register_control",
    "create_control",
    "available_controls",
]
