"""Abstract interfaces for rate-based and window-based congestion control.

The central abstraction is :class:`RateControl`: a deterministic law
``g(q, λ)`` giving the instantaneous rate of change of the arrival rate as a
function of the observed queue length ``q`` and the current rate ``λ``.
This is exactly the ``g(·)`` of Equation 4 in the paper and it is consumed
unchanged by

* the Fokker-Planck solver (as the drift of the ν-advection term),
* the characteristic/ODE analyses of Section 5,
* the fluid (Bolot-Shankar) baseline, and
* the rate-based sources of the discrete-event simulator.

:class:`WindowControl` is the discrete, event-driven analogue used by the
packet-level simulator: the window is updated on each acknowledgement or
loss/congestion signal, matching the original window formulation
(Equation 1 of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["RateControl", "WindowControl"]


class RateControl(ABC):
    """A rate-adjustment law ``dλ/dt = g(q, λ)``.

    Implementations must be side-effect free: ``drift`` may be called with
    scalars or with numpy arrays (vectorised over a phase-plane grid) and
    must return the matching shape.
    """

    @abstractmethod
    def drift(self, queue_length, rate):
        """Return ``dλ/dt`` for observed queue length(s) and current rate(s).

        Parameters
        ----------
        queue_length:
            Scalar or array of observed queue lengths ``q``.
        rate:
            Scalar or array of current arrival rates ``λ`` (same shape).
        """

    def drift_batch(self, queue_length, rate, **columns):
        """Array-in/array-out drift with per-trajectory parameter columns.

        The batched trajectory engine calls this with ``(n_active,)`` arrays
        of queue lengths and rates plus optional keyword *columns* that
        override the law's own gains trajectory by trajectory (for example
        ``c0=np.array([...])`` for a gain sweep).  The accepted column names
        are law-specific; laws that implement no override simply inherit
        this fallback, which supports the no-column case through the plain
        (already vectorised) :meth:`drift`.

        Implementations must be bit-compatible with :meth:`drift`: for any
        element, the returned drift must equal what the scalar path would
        produce for the same ``(q, λ)`` and the same effective gains.
        """
        if columns:
            names = ", ".join(sorted(columns))
            raise ConfigurationError(
                f"{self.name} accepts no per-trajectory parameter columns "
                f"(got: {names})")
        return np.asarray(self.drift(queue_length, rate), dtype=float)

    def drift_in_growth_coordinates(self, queue_length, growth_rate, mu: float):
        """Return ``dν/dt`` where ``ν = λ − μ`` is the queue growth rate.

        Since ``μ`` is constant, ``dν/dt = dλ/dt`` evaluated at
        ``λ = ν + μ``; this is the form used on the ``(q, ν)`` phase grid of
        the Fokker-Planck solver.
        """
        return self.drift(queue_length, np.asarray(growth_rate) + mu)

    @property
    def name(self) -> str:
        """Human-readable name of the control law."""
        return type(self).__name__

    def describe(self) -> str:
        """One-line description used in reports and benchmark tables."""
        return self.name


class WindowControl(ABC):
    """Event-driven window adjustment (Equation 1 of the paper).

    The simulator calls :meth:`on_ack` for every acknowledgement that does
    not signal congestion and :meth:`on_congestion` when congestion is
    detected (a lost packet for the implicit-feedback Jacobson scheme, or a
    set congestion bit for the explicit-feedback DECbit scheme).  Both
    return the new window size.
    """

    @abstractmethod
    def on_ack(self, window: float) -> float:
        """Return the new window after a congestion-free acknowledgement."""

    @abstractmethod
    def on_congestion(self, window: float) -> float:
        """Return the new window after a congestion indication."""

    @property
    def minimum_window(self) -> float:
        """Smallest window the law will return (defaults to one packet)."""
        return 1.0

    @property
    def name(self) -> str:
        """Human-readable name of the window law."""
        return type(self).__name__
