"""Window-based congestion control algorithms (Equation 1 of the paper).

These are the discrete, per-acknowledgement algorithms whose rate analogue
the paper analyses.  They drive the window-based sources of the
discrete-event simulator (:mod:`repro.queueing.source`), reproducing the
measurement setting of Jacobson [Jac 88] and the simulation setting of
Zhang [Zha 89] that the paper's findings explain.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .base import WindowControl

__all__ = ["JacobsonWindow", "DECbitWindow"]


class JacobsonWindow(WindowControl):
    """Jacobson-style congestion avoidance with multiplicative decrease.

    In congestion avoidance the window grows by ``increase / window`` per
    acknowledgement (approximately one packet per round trip); on a
    congestion indication (packet loss for the implicit-feedback TCP case)
    the window is multiplied by ``decrease_factor``.  An optional slow-start
    phase doubles the window per round trip until ``slow_start_threshold``.
    """

    def __init__(self, increase: float = 1.0, decrease_factor: float = 0.5,
                 slow_start_threshold: float = 0.0,
                 max_window: float = float("inf")):
        if increase <= 0.0:
            raise ConfigurationError("increase must be positive")
        if not 0.0 < decrease_factor < 1.0:
            raise ConfigurationError("decrease_factor must lie in (0, 1)")
        if slow_start_threshold < 0.0:
            raise ConfigurationError("slow_start_threshold must be non-negative")
        if max_window <= 0.0:
            raise ConfigurationError("max_window must be positive")
        self.increase = float(increase)
        self.decrease_factor = float(decrease_factor)
        self.slow_start_threshold = float(slow_start_threshold)
        self.max_window = float(max_window)

    def on_ack(self, window: float) -> float:
        """Grow the window: slow start below the threshold, else AIMD increase."""
        if window < self.slow_start_threshold:
            new_window = window + self.increase
        else:
            new_window = window + self.increase / max(window, self.minimum_window)
        return min(new_window, self.max_window)

    def on_congestion(self, window: float) -> float:
        """Multiplicatively shrink the window (never below one packet)."""
        return max(self.minimum_window, window * self.decrease_factor)

    def describe(self) -> str:
        """One-line description for reports."""
        return (f"Jacobson window (increase={self.increase:g}, "
                f"decrease_factor={self.decrease_factor:g})")


class DECbitWindow(WindowControl):
    """Ramakrishnan-Jain DECbit window adjustment.

    The DECbit scheme increases the window additively by ``increase`` once
    per window of acknowledgements when fewer than half of them carried the
    congestion-indication bit, and otherwise decreases it multiplicatively
    by ``decrease_factor`` (0.875 in the original proposal).  Here the
    per-window vote is folded into the two callbacks: the simulator invokes
    :meth:`on_congestion` when the majority of the last window's bits were
    set and :meth:`on_ack` otherwise, once per window's worth of
    acknowledgements.
    """

    def __init__(self, increase: float = 1.0, decrease_factor: float = 0.875,
                 max_window: float = float("inf")):
        if increase <= 0.0:
            raise ConfigurationError("increase must be positive")
        if not 0.0 < decrease_factor < 1.0:
            raise ConfigurationError("decrease_factor must lie in (0, 1)")
        if max_window <= 0.0:
            raise ConfigurationError("max_window must be positive")
        self.increase = float(increase)
        self.decrease_factor = float(decrease_factor)
        self.max_window = float(max_window)

    def on_ack(self, window: float) -> float:
        """Additive increase of the window by one increase unit."""
        return min(window + self.increase, self.max_window)

    def on_congestion(self, window: float) -> float:
        """Multiplicative decrease by the DECbit factor (default 0.875)."""
        return max(self.minimum_window, window * self.decrease_factor)

    def describe(self) -> str:
        """One-line description for reports."""
        return (f"DECbit window (increase={self.increase:g}, "
                f"decrease_factor={self.decrease_factor:g})")
