"""Linear-increase / linear-decrease rate-control laws.

The paper's Section 1 observes that if the adaptive algorithm is
linear-increase / *linear*-decrease then oscillations can arise from the
algorithm itself, not only from delayed feedback (unlike the JRJ law whose
undelayed dynamics are a convergent spiral).  These laws are provided so the
benchmark comparing algorithm families (experiment E8) can exercise both.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .base import RateControl

__all__ = ["LinearIncreaseLinearDecrease", "AdditiveIncreaseAdditiveDecrease"]


class LinearIncreaseLinearDecrease(RateControl):
    """Constant-slope increase below the target and constant-slope decrease above.

        dλ/dt =  C0     if q ≤ q̂,
        dλ/dt = −D0     if q > q̂.

    Because the decrease does not depend on ``λ`` the phase-plane dynamics
    have no state-dependent damping; trajectories are parabolic arcs in both
    half planes and the undelayed system orbits rather than spirals inwards,
    which is exactly the qualitative difference the paper points out.
    """

    def __init__(self, c0: float, d0: float, q_target: float):
        if c0 <= 0.0:
            raise ConfigurationError(f"c0 must be positive, got {c0}")
        if d0 <= 0.0:
            raise ConfigurationError(f"d0 must be positive, got {d0}")
        if q_target < 0.0:
            raise ConfigurationError(f"q_target must be non-negative, got {q_target}")
        self.c0 = float(c0)
        self.d0 = float(d0)
        self.q_target = float(q_target)

    def drift(self, queue_length, rate):
        """Return ``dλ/dt``: ``+C0`` below target, ``−D0`` above."""
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        shape = np.broadcast(queue_length, rate).shape
        increase = np.full(shape, self.c0)
        decrease = np.full(shape, -self.d0)
        result = np.where(queue_length <= self.q_target, increase, decrease)
        if result.shape == ():
            return float(result)
        return result

    def drift_batch(self, queue_length, rate, c0=None, d0=None,
                    q_target=None):
        """Batched drift with optional per-trajectory ``c0``/``d0``/``q_target``.

        Called by the batched trajectory engine with ``(n_active,)`` arrays;
        each element is bit-identical to the scalar :meth:`drift` under the
        element's effective gains.
        """
        queue_length = np.asarray(queue_length, dtype=float)
        c0 = self.c0 if c0 is None else np.asarray(c0, dtype=float)
        d0 = self.d0 if d0 is None else np.asarray(d0, dtype=float)
        q_target = (self.q_target if q_target is None
                    else np.asarray(q_target, dtype=float))
        return np.where(queue_length <= q_target, c0, -d0)

    def describe(self) -> str:
        return (f"linear-increase/linear-decrease "
                f"(C0={self.c0:g}, D0={self.d0:g}, q_target={self.q_target:g})")


class AdditiveIncreaseAdditiveDecrease(LinearIncreaseLinearDecrease):
    """Alias emphasising the additive/additive naming used in later literature.

    Behaviourally identical to :class:`LinearIncreaseLinearDecrease`; kept as
    a distinct class so registry names and benchmark tables can refer to the
    AIAD family explicitly.
    """

    def describe(self) -> str:
        return (f"additive-increase/additive-decrease "
                f"(C0={self.c0:g}, D0={self.d0:g}, q_target={self.q_target:g})")
