"""The Jacobson / Ramakrishnan-Jain rate-control law (Equation 2).

This is the paper's central example: a *linear increase* of the arrival rate
while the observed queue is at or below the target ``q̂`` and an
*exponential decrease* above it,

    dλ/dt =  C0          if q ≤ q̂,
    dλ/dt = −C1 λ        if q > q̂.

It is the rate analogue of the window algorithm of Jacobson [Jac 88] and
Ramakrishnan-Jain [RaJa 88]: additive increase of the window when no
congestion is seen, multiplicative decrease when congestion is detected.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemParameters
from ..exceptions import ConfigurationError
from .base import RateControl

__all__ = ["JRJControl", "jrj_from_parameters"]


class JRJControl(RateControl):
    """Linear-increase / exponential-decrease rate control.

    Parameters
    ----------
    c0:
        Linear increase rate ``C0 > 0`` (rate units per unit time).
    c1:
        Exponential decrease constant ``C1 > 0`` (per unit time).
    q_target:
        Target queue length ``q̂ ≥ 0`` separating the increase and decrease
        regions.
    """

    def __init__(self, c0: float, c1: float, q_target: float):
        if c0 <= 0.0:
            raise ConfigurationError(f"c0 must be positive, got {c0}")
        if c1 <= 0.0:
            raise ConfigurationError(f"c1 must be positive, got {c1}")
        if q_target < 0.0:
            raise ConfigurationError(f"q_target must be non-negative, got {q_target}")
        self.c0 = float(c0)
        self.c1 = float(c1)
        self.q_target = float(q_target)

    def drift(self, queue_length, rate):
        """Return ``dλ/dt`` following Equation 2 of the paper.

        Vectorised: accepts scalars or arrays for both arguments.  Plain
        Python numbers skip the array machinery entirely: the packet-level
        simulator evaluates this once per control interval per source, and
        the branch below computes the identical float without allocating
        three temporaries.
        """
        if isinstance(queue_length, (float, int)) and isinstance(rate,
                                                                 (float, int)):
            if queue_length <= self.q_target:
                return self.c0
            return -self.c1 * rate
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        result = np.where(queue_length <= self.q_target, self.c0,
                          -self.c1 * rate)
        if result.shape == ():
            return float(result)
        return result

    def drift_batch(self, queue_length, rate, c0=None, c1=None,
                    q_target=None):
        """Batched drift with optional per-trajectory ``c0``/``c1``/``q_target``.

        Columns left at ``None`` fall back to the law's own (scalar) gains;
        each element of the result is bit-identical to what :meth:`drift`
        returns for that element's effective parameters.
        """
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        c0 = self.c0 if c0 is None else np.asarray(c0, dtype=float)
        c1 = self.c1 if c1 is None else np.asarray(c1, dtype=float)
        q_target = (self.q_target if q_target is None
                    else np.asarray(q_target, dtype=float))
        return np.where(queue_length <= q_target, c0, -c1 * rate)

    def describe(self) -> str:
        return (f"JRJ linear-increase/exponential-decrease "
                f"(C0={self.c0:g}, C1={self.c1:g}, q_target={self.q_target:g})")


def jrj_from_parameters(params: SystemParameters) -> JRJControl:
    """Build a :class:`JRJControl` from a :class:`SystemParameters` object."""
    return JRJControl(c0=params.c0, c1=params.c1, q_target=params.q_target)
