"""Delay-differential-equation integration by the method of steps.

Section 7 of the paper studies the control law evaluated on *delayed* queue
information, ``dλ/dt = g(Q(t − τ), λ(t))``.  The state derivative therefore
depends on the solution at an earlier time, which we support with a
:class:`DelayBuffer` -- a growing history of ``(t, state)`` samples with
linear interpolation -- and :func:`integrate_dde`, a fixed-step RK4 scheme
whose right-hand side receives a *lookup* function for past states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError, StabilityError

__all__ = ["DelayBuffer", "integrate_dde", "DDEResult"]

DelayedRHS = Callable[[float, np.ndarray, Callable[[float], np.ndarray]],
                      np.ndarray]


class DelayBuffer:
    """History of state samples supporting interpolated lookup of past values.

    The buffer is seeded with the constant pre-history (the state for
    ``t ≤ t_start``) and extended by the integrator after every accepted
    step.  Lookups before the earliest sample return the earliest sample,
    matching the usual constant-history convention for DDEs.
    """

    def __init__(self, t_start: float, initial_state: Sequence[float]):
        self._times: List[float] = [t_start]
        self._states: List[np.ndarray] = [np.asarray(initial_state, dtype=float).copy()]

    def append(self, t: float, state: np.ndarray) -> None:
        """Record the state at time *t* (times must be non-decreasing)."""
        if t < self._times[-1]:
            raise ValueError("DelayBuffer times must be non-decreasing")
        self._times.append(float(t))
        self._states.append(np.asarray(state, dtype=float).copy())

    def __len__(self) -> int:
        return len(self._times)

    @property
    def latest_time(self) -> float:
        """Most recent recorded time."""
        return self._times[-1]

    def lookup(self, t: float) -> np.ndarray:
        """Return the (interpolated) state at time *t*.

        Times before the first sample return the first sample; times after
        the last sample return the last sample (needed by RK stages that
        peek slightly beyond the current history).
        """
        times = self._times
        if t <= times[0]:
            return self._states[0]
        if t >= times[-1]:
            return self._states[-1]
        # Binary search for the bracketing interval.
        lo, hi = 0, len(times) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if times[mid] <= t:
                lo = mid
            else:
                hi = mid
        t0, t1 = times[lo], times[hi]
        s0, s1 = self._states[lo], self._states[hi]
        if t1 == t0:
            return s0
        weight = (t - t0) / (t1 - t0)
        return s0 + weight * (s1 - s0)


@dataclass
class DDEResult:
    """Trajectory returned by :func:`integrate_dde`."""

    times: np.ndarray
    states: np.ndarray

    @property
    def final_state(self) -> np.ndarray:
        """State at the end of the integration."""
        return self.states[-1]

    def component(self, index: int) -> np.ndarray:
        """Time series of a single state component."""
        return self.states[:, index]


def integrate_dde(rhs: DelayedRHS, initial_state: Sequence[float], t_end: float,
                  dt: float, t_start: float = 0.0,
                  projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                  ) -> DDEResult:
    """Integrate a delay differential equation with fixed-step RK4.

    Parameters
    ----------
    rhs:
        Callable ``rhs(t, state, history)`` where ``history(s)`` returns the
        (interpolated) state vector at the earlier time ``s``.
    initial_state:
        State for all ``t ≤ t_start`` (constant pre-history).
    t_end, dt, t_start:
        Integration horizon, step and start time.
    projection:
        Optional constraint projection applied after each step.
    """
    if dt <= 0.0:
        raise ConvergenceError("dt must be positive")
    if t_end <= t_start:
        raise ConvergenceError("t_end must exceed t_start")

    buffer = DelayBuffer(t_start, initial_state)
    state = np.asarray(initial_state, dtype=float).copy()
    times: List[float] = [t_start]
    states: List[np.ndarray] = [state.copy()]

    t = t_start
    n_steps = int(np.ceil((t_end - t_start) / dt))
    for _ in range(n_steps):
        step = min(dt, t_end - t)
        history = buffer.lookup

        k1 = np.asarray(rhs(t, state, history), dtype=float)
        k2 = np.asarray(rhs(t + 0.5 * step, state + 0.5 * step * k1, history),
                        dtype=float)
        k3 = np.asarray(rhs(t + 0.5 * step, state + 0.5 * step * k2, history),
                        dtype=float)
        k4 = np.asarray(rhs(t + step, state + step * k3, history), dtype=float)
        state = state + step / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        if projection is not None:
            state = projection(state)
        t += step
        if not np.all(np.isfinite(state)):
            raise StabilityError(f"DDE state became non-finite at t={t:.6g}")
        buffer.append(t, state)
        times.append(t)
        states.append(state.copy())

    return DDEResult(np.asarray(times), np.asarray(states))
