"""Tridiagonal linear solver (Thomas algorithm).

Used by the Crank-Nicolson diffusion step of the Fokker-Planck solver, where
the implicit operator ``(I - dt/2 * D)`` is tridiagonal along the queue axis.
A pure-numpy implementation is provided so the solver has no dependency on
``scipy.linalg.solve_banded`` internals; results are tested against a dense
solve.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConvergenceError

__all__ = ["solve_tridiagonal"]


def solve_tridiagonal(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` for a tridiagonal matrix ``A``.

    Parameters
    ----------
    lower:
        Sub-diagonal of length ``n`` (``lower[0]`` is ignored).
    diag:
        Main diagonal of length ``n``.
    upper:
        Super-diagonal of length ``n`` (``upper[-1]`` is ignored).
    rhs:
        Right-hand side.  May be one-dimensional of length ``n`` or
        two-dimensional of shape ``(n, m)`` to solve ``m`` systems that share
        the same matrix.

    Returns
    -------
    numpy.ndarray
        Solution with the same shape as *rhs*.

    Raises
    ------
    ConvergenceError
        If a pivot becomes numerically zero (the matrix is singular or badly
        conditioned for the Thomas algorithm).
    """
    lower = np.asarray(lower, dtype=float)
    diag = np.asarray(diag, dtype=float)
    upper = np.asarray(upper, dtype=float)
    rhs = np.asarray(rhs, dtype=float)

    n = diag.shape[0]
    if lower.shape[0] != n or upper.shape[0] != n:
        raise ValueError("lower, diag and upper must all have the same length")
    if rhs.shape[0] != n:
        raise ValueError("rhs first dimension must match the matrix size")

    one_dimensional = rhs.ndim == 1
    b = rhs.reshape(n, -1).copy()

    # Forward elimination with scaled pivots.
    c_prime = np.zeros(n)
    pivot = diag[0]
    if abs(pivot) < 1e-300:
        raise ConvergenceError("tridiagonal solve hit a zero pivot at row 0")
    c_prime[0] = upper[0] / pivot
    b[0] /= pivot
    for i in range(1, n):
        pivot = diag[i] - lower[i] * c_prime[i - 1]
        if abs(pivot) < 1e-300:
            raise ConvergenceError(
                f"tridiagonal solve hit a zero pivot at row {i}")
        c_prime[i] = upper[i] / pivot
        b[i] = (b[i] - lower[i] * b[i - 1]) / pivot

    # Back substitution.
    for i in range(n - 2, -1, -1):
        b[i] -= c_prime[i] * b[i + 1]

    return b[:, 0] if one_dimensional else b
