"""Tridiagonal linear solver (Thomas algorithm) with reusable factorizations.

Used by the Crank-Nicolson diffusion step of the Fokker-Planck solver, where
the implicit operator ``(I - dt/2 * D)`` is tridiagonal along the queue axis.
A pure-numpy implementation is provided so the solver has no dependency on
``scipy.linalg.solve_banded`` internals; results are tested against a dense
solve.

The solver comes in two layers:

* :class:`TridiagonalFactorization` runs the Thomas forward elimination for
  the *matrix* once (pivots and the ``c'`` coefficients) and can then solve
  against any number of right-hand sides.  The Fokker-Planck solver reuses
  one factorization for every Crank-Nicolson substep that shares the same
  diffusion number, which removes the per-step elimination cost that used to
  dominate the PDE hot path.
* :func:`solve_tridiagonal` is the original one-shot convenience wrapper; it
  simply builds a factorization and solves once.

The row-by-row arithmetic of :meth:`TridiagonalFactorization.solve` is the
same as the historical one-shot implementation (``b[i] = (b[i] - l[i] *
b[i-1]) / pivot[i]`` followed by back substitution), so cached solves are
bitwise identical to the original code path.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConvergenceError

__all__ = ["TridiagonalFactorization", "BatchedTridiagonalFactorization",
           "solve_tridiagonal"]


class TridiagonalFactorization:
    """Pre-eliminated Thomas factorization of a tridiagonal matrix.

    Parameters
    ----------
    lower:
        Sub-diagonal of length ``n`` (``lower[0]`` is ignored).
    diag:
        Main diagonal of length ``n``.
    upper:
        Super-diagonal of length ``n`` (``upper[-1]`` is ignored).

    Raises
    ------
    ConvergenceError
        If a pivot becomes numerically zero during the forward elimination
        (the matrix is singular or badly conditioned for the Thomas
        algorithm).
    """

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        lower = np.asarray(lower, dtype=float)
        diag = np.asarray(diag, dtype=float)
        upper = np.asarray(upper, dtype=float)
        n = diag.shape[0]
        if lower.shape[0] != n or upper.shape[0] != n:
            raise ValueError("lower, diag and upper must all have the same length")

        # Forward elimination of the matrix (python floats: IEEE-754 doubles,
        # bit-identical to the numpy scalar arithmetic they replace, and much
        # cheaper to index in the per-row loops below).
        lower_list = lower.tolist()
        diag_list = diag.tolist()
        upper_list = upper.tolist()
        pivots = [0.0] * n
        c_prime = [0.0] * n
        pivot = diag_list[0]
        if abs(pivot) < 1e-300:
            raise ConvergenceError("tridiagonal solve hit a zero pivot at row 0")
        pivots[0] = pivot
        c_prime[0] = upper_list[0] / pivot
        for i in range(1, n):
            pivot = diag_list[i] - lower_list[i] * c_prime[i - 1]
            if abs(pivot) < 1e-300:
                raise ConvergenceError(
                    f"tridiagonal solve hit a zero pivot at row {i}")
            pivots[i] = pivot
            c_prime[i] = upper_list[i] / pivot

        self.n = n
        self._lower = lower_list
        self._pivots = pivots
        self._c_prime = c_prime

    def solve(self, rhs: np.ndarray, out: np.ndarray | None = None
              ) -> np.ndarray:
        """Solve ``A x = rhs`` using the cached elimination coefficients.

        Parameters
        ----------
        rhs:
            Right-hand side.  May be one-dimensional of length ``n`` or
            two-dimensional of shape ``(n, m)`` to solve ``m`` systems that
            share the matrix (the column dimension is fully vectorized).
        out:
            Optional preallocated output array of the same shape as *rhs*
            (must not alias *rhs*).  When given, no allocation happens.

        Returns
        -------
        numpy.ndarray
            Solution with the same shape as *rhs* (*out* when provided).
        """
        rhs = np.asarray(rhs, dtype=float)
        n = self.n
        if rhs.shape[0] != n:
            raise ValueError("rhs first dimension must match the matrix size")

        one_dimensional = rhs.ndim == 1
        if out is None:
            b = rhs.reshape(n, -1).copy()
        else:
            if out.shape != rhs.shape:
                raise ValueError("out must have the same shape as rhs")
            b = out.reshape(n, -1)
            np.copyto(b, rhs.reshape(n, -1))

        lower = self._lower
        pivots = self._pivots
        c_prime = self._c_prime

        # Forward substitution on the right-hand side.
        b0 = b[0]
        np.divide(b0, pivots[0], out=b0)
        tmp = np.empty_like(b0)
        previous = b0
        for i in range(1, n):
            bi = b[i]
            np.multiply(previous, lower[i], out=tmp)
            np.subtract(bi, tmp, out=bi)
            np.divide(bi, pivots[i], out=bi)
            previous = bi

        # Back substitution.
        following = b[n - 1]
        for i in range(n - 2, -1, -1):
            bi = b[i]
            np.multiply(following, c_prime[i], out=tmp)
            np.subtract(bi, tmp, out=bi)
            following = bi

        if out is not None:
            return out
        return b[:, 0] if one_dimensional else b


class BatchedTridiagonalFactorization:
    """Thomas factorization of many independent tridiagonal systems.

    Where :class:`TridiagonalFactorization` solves *one* matrix against many
    right-hand-side columns, this class solves ``batch`` *different* matrices
    (each of size ``n``) against one right-hand side each, with every row
    operation vectorized across the batch.  This is the shape of the ADI
    half-step solves: the implicit q-direction operator decouples into one
    tridiagonal system per ν-column (and the ν-direction operator into one
    per q-row), each with its own coefficients.

    Parameters
    ----------
    lower, diag, upper:
        Band arrays of shape ``(batch, n)``; ``lower[:, 0]`` and
        ``upper[:, -1]`` are ignored.

    Raises
    ------
    ConvergenceError
        If any system hits a numerically zero pivot during elimination.
    """

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        lower = np.asarray(lower, dtype=float)
        diag = np.asarray(diag, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.ndim != 2 or lower.shape != diag.shape \
                or upper.shape != diag.shape:
            raise ValueError(
                "lower, diag and upper must share one (batch, n) shape")
        batch, n = diag.shape

        pivots = np.empty((batch, n))
        c_prime = np.empty((batch, n))
        pivot = diag[:, 0].copy()
        if float(np.min(np.abs(pivot))) < 1e-300:
            raise ConvergenceError(
                "batched tridiagonal solve hit a zero pivot at row 0")
        pivots[:, 0] = pivot
        c_prime[:, 0] = upper[:, 0] / pivot
        for i in range(1, n):
            pivot = diag[:, i] - lower[:, i] * c_prime[:, i - 1]
            if float(np.min(np.abs(pivot))) < 1e-300:
                raise ConvergenceError(
                    f"batched tridiagonal solve hit a zero pivot at row {i}")
            pivots[:, i] = pivot
            c_prime[:, i] = upper[:, i] / pivot

        self.batch = batch
        self.n = n
        # Column-sliced copies: the sweeps below touch one row index at a
        # time across the whole batch, so contiguous per-index columns keep
        # every vectorized operation stride-1.
        self._lower_cols = np.ascontiguousarray(lower.T)
        self._pivot_cols = np.ascontiguousarray(pivots.T)
        self._c_prime_cols = np.ascontiguousarray(c_prime.T)

    def solve(self, rhs: np.ndarray, out: np.ndarray | None = None
              ) -> np.ndarray:
        """Solve every system against its right-hand-side row.

        Parameters
        ----------
        rhs:
            Array of shape ``(batch, n)``; row ``b`` is the right-hand side
            of system ``b``.
        out:
            Optional preallocated ``(batch, n)`` output (must not alias
            *rhs*).

        Returns
        -------
        numpy.ndarray
            Solutions of shape ``(batch, n)`` (*out* when provided).
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.batch, self.n):
            raise ValueError(
                f"rhs must have shape {(self.batch, self.n)}, got {rhs.shape}")
        if out is None:
            b = rhs.copy()
        else:
            if out.shape != rhs.shape:
                raise ValueError("out must have the same shape as rhs")
            b = out
            np.copyto(b, rhs)

        n = self.n
        lower = self._lower_cols
        pivots = self._pivot_cols
        c_prime = self._c_prime_cols
        tmp = np.empty(self.batch)

        previous = b[:, 0]
        np.divide(previous, pivots[0], out=previous)
        for i in range(1, n):
            bi = b[:, i]
            np.multiply(previous, lower[i], out=tmp)
            np.subtract(bi, tmp, out=bi)
            np.divide(bi, pivots[i], out=bi)
            previous = bi

        following = b[:, n - 1]
        for i in range(n - 2, -1, -1):
            bi = b[:, i]
            np.multiply(following, c_prime[i], out=tmp)
            np.subtract(bi, tmp, out=bi)
            following = bi
        return b


def solve_tridiagonal(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` for a tridiagonal matrix ``A``.

    One-shot convenience wrapper around :class:`TridiagonalFactorization`;
    callers that solve against the same matrix repeatedly should build the
    factorization once and reuse it.

    Parameters
    ----------
    lower:
        Sub-diagonal of length ``n`` (``lower[0]`` is ignored).
    diag:
        Main diagonal of length ``n``.
    upper:
        Super-diagonal of length ``n`` (``upper[-1]`` is ignored).
    rhs:
        Right-hand side.  May be one-dimensional of length ``n`` or
        two-dimensional of shape ``(n, m)`` to solve ``m`` systems that share
        the same matrix.

    Returns
    -------
    numpy.ndarray
        Solution with the same shape as *rhs*.

    Raises
    ------
    ConvergenceError
        If a pivot becomes numerically zero (the matrix is singular or badly
        conditioned for the Thomas algorithm).
    """
    return TridiagonalFactorization(lower, diag, upper).solve(rhs)
