"""Ordinary differential equation integrators.

The characteristic system of Section 5 (``dq/dt = λ − μ``, ``dλ/dt = g``) is
integrated with the classical fourth-order Runge-Kutta method on a fixed
step, or with an embedded Runge-Kutta-Fehlberg 4(5) adaptive step for the
longer fairness runs.  Both return an :class:`ODEResult` that stores the full
time series so downstream analyses (oscillation detection, convergence
detection, Poincaré sections) can operate on the trajectory directly.

A small event facility is provided: an ``event`` callable evaluated on the
state can terminate integration when it changes sign, used for example to
detect crossings of the ``q = q̂`` switching line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError, StabilityError

__all__ = ["euler_step", "rk4_step", "integrate_fixed", "integrate_adaptive",
           "ODEResult"]

RHS = Callable[[float, np.ndarray], np.ndarray]


@dataclass
class ODEResult:
    """Trajectory returned by the ODE integrators.

    Attributes
    ----------
    times:
        Array of sample times, shape ``(n,)``.
    states:
        Array of states, shape ``(n, dim)``.
    event_time:
        Time at which a terminal event fired, or ``None``.
    """

    times: np.ndarray
    states: np.ndarray
    event_time: Optional[float] = None

    @property
    def final_state(self) -> np.ndarray:
        """State at the last recorded time."""
        return self.states[-1]

    @property
    def final_time(self) -> float:
        """Last recorded time."""
        return float(self.times[-1])

    def component(self, index: int) -> np.ndarray:
        """Time series of a single state component."""
        return self.states[:, index]

    def resample(self, times: np.ndarray) -> np.ndarray:
        """Linearly resample the trajectory at the given *times*."""
        times = np.asarray(times, dtype=float)
        resampled = np.empty((times.size, self.states.shape[1]))
        for j in range(self.states.shape[1]):
            resampled[:, j] = np.interp(times, self.times, self.states[:, j])
        return resampled


def euler_step(rhs: RHS, t: float, state: np.ndarray, dt: float) -> np.ndarray:
    """A single forward-Euler step (used mostly in tests as a reference)."""
    return state + dt * np.asarray(rhs(t, state), dtype=float)


def rk4_step(rhs: RHS, t: float, state: np.ndarray, dt: float) -> np.ndarray:
    """A single classical Runge-Kutta 4 step."""
    k1 = np.asarray(rhs(t, state), dtype=float)
    k2 = np.asarray(rhs(t + 0.5 * dt, state + 0.5 * dt * k1), dtype=float)
    k3 = np.asarray(rhs(t + 0.5 * dt, state + 0.5 * dt * k2), dtype=float)
    k4 = np.asarray(rhs(t + dt, state + dt * k3), dtype=float)
    return state + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def integrate_fixed(rhs: RHS, initial_state: Sequence[float], t_end: float,
                    dt: float, t_start: float = 0.0,
                    projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                    event: Optional[Callable[[float, np.ndarray], float]] = None,
                    ) -> ODEResult:
    """Integrate ``dx/dt = rhs(t, x)`` with fixed-step RK4.

    Parameters
    ----------
    rhs:
        Right-hand side function returning ``dx/dt``.
    initial_state:
        Initial state vector.
    t_end, dt, t_start:
        Integration horizon, step size and start time.
    projection:
        Optional callable applied to the state after every step; used to
        enforce constraints such as ``q ≥ 0`` and ``λ ≥ 0`` for the queue.
    event:
        Optional scalar function of ``(t, state)``; integration stops at the
        first step where its sign changes (the terminal event).

    Raises
    ------
    StabilityError
        If the state becomes non-finite.
    """
    if dt <= 0.0:
        raise ConvergenceError("dt must be positive")
    if t_end <= t_start:
        raise ConvergenceError("t_end must exceed t_start")

    state = np.asarray(initial_state, dtype=float).copy()
    n_steps = int(np.ceil((t_end - t_start) / dt))
    times: List[float] = [t_start]
    states: List[np.ndarray] = [state.copy()]
    event_time: Optional[float] = None
    previous_event = event(t_start, state) if event is not None else None

    t = t_start
    for _ in range(n_steps):
        step = min(dt, t_end - t)
        state = rk4_step(rhs, t, state, step)
        if projection is not None:
            state = projection(state)
        t += step
        if not np.all(np.isfinite(state)):
            raise StabilityError(f"ODE state became non-finite at t={t:.6g}")
        times.append(t)
        states.append(state.copy())
        if event is not None:
            current_event = event(t, state)
            if previous_event is not None and previous_event * current_event < 0:
                event_time = t
                break
            previous_event = current_event

    return ODEResult(np.asarray(times), np.asarray(states), event_time)


# Coefficients of the Runge-Kutta-Fehlberg 4(5) embedded pair.
_RKF_A = [
    [],
    [1.0 / 4.0],
    [3.0 / 32.0, 9.0 / 32.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0],
    [-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0],
]
_RKF_C = [0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0]
_RKF_B4 = [25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -1.0 / 5.0, 0.0]
_RKF_B5 = [16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0,
           -9.0 / 50.0, 2.0 / 55.0]


def integrate_adaptive(rhs: RHS, initial_state: Sequence[float], t_end: float,
                       t_start: float = 0.0, rtol: float = 1e-6,
                       atol: float = 1e-9, initial_dt: float = 1e-2,
                       max_dt: float = 1.0, min_dt: float = 1e-10,
                       projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                       max_steps: int = 2_000_000) -> ODEResult:
    """Integrate with the adaptive Runge-Kutta-Fehlberg 4(5) method.

    The step size is controlled so the estimated local error stays below
    ``atol + rtol * |state|`` component-wise.
    """
    state = np.asarray(initial_state, dtype=float).copy()
    t = t_start
    dt = initial_dt
    times: List[float] = [t]
    states: List[np.ndarray] = [state.copy()]

    for _ in range(max_steps):
        if t >= t_end:
            break
        dt = min(dt, t_end - t, max_dt)
        if dt < min_dt:
            raise ConvergenceError(
                "adaptive ODE step shrank below the minimum allowed",
                residual=dt)

        ks = []
        for stage in range(6):
            increment = np.zeros_like(state)
            for j, a in enumerate(_RKF_A[stage]):
                increment = increment + a * ks[j]
            ks.append(np.asarray(
                rhs(t + _RKF_C[stage] * dt, state + dt * increment), dtype=float))

        order4 = state + dt * sum(b * k for b, k in zip(_RKF_B4, ks))
        order5 = state + dt * sum(b * k for b, k in zip(_RKF_B5, ks))
        error = np.abs(order5 - order4)
        scale = atol + rtol * np.maximum(np.abs(state), np.abs(order5))
        error_ratio = float(np.max(error / scale))

        if error_ratio <= 1.0 or dt <= min_dt * 2.0:
            state = order5
            if projection is not None:
                state = projection(state)
            t += dt
            if not np.all(np.isfinite(state)):
                raise StabilityError(
                    f"adaptive ODE state became non-finite at t={t:.6g}")
            times.append(t)
            states.append(state.copy())

        # Standard safety-factor step-size update.
        if error_ratio == 0.0:
            dt *= 2.0
        else:
            dt *= min(2.0, max(0.2, 0.9 * error_ratio ** -0.2))
    else:
        raise ConvergenceError("adaptive ODE integration exceeded max_steps",
                               iterations=max_steps)

    return ODEResult(np.asarray(times), np.asarray(states))
