"""Ordinary differential equation integrators.

The characteristic system of Section 5 (``dq/dt = λ − μ``, ``dλ/dt = g``) is
integrated with the classical fourth-order Runge-Kutta method on a fixed
step, or with an embedded Runge-Kutta-Fehlberg 4(5) adaptive step for the
longer fairness runs.  Both return an :class:`ODEResult` that stores the full
time series so downstream analyses (oscillation detection, convergence
detection, Poincaré sections) can operate on the trajectory directly.

A small event facility is provided: an ``event`` callable evaluated on the
state can terminate integration when it changes sign, used for example to
detect crossings of the ``q = q̂`` switching line.

Batched variants integrate a whole *family* of trajectories as one
``(batch, dim)`` state block: :func:`integrate_fixed_batch` steps every
trajectory of the block through the identical RK4 update (so a batch of one
is bit-identical to :func:`integrate_fixed`), records into preallocated
strided storage, and handles per-trajectory terminal events through an
active mask that compacts the working block as trajectories finish.
:func:`integrate_adaptive_batch` is the embedded 4(5) analogue with a
per-trajectory time, step size and accept/reject mask.  Both return a
:class:`BatchODEResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError, StabilityError
from .interpolate import interp_columns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..health import HealthMonitor

__all__ = ["euler_step", "rk4_step", "integrate_fixed", "integrate_adaptive",
           "integrate_fixed_batch", "integrate_adaptive_batch",
           "ODEResult", "BatchODEResult"]

RHS = Callable[[float, np.ndarray], np.ndarray]

#: Right-hand side of a batched system: ``rhs(t, states, indices)`` receives
#: the block of currently-active states, shape ``(n_active, dim)``, plus the
#: integer array of *original* trajectory indices those rows correspond to
#: (so per-trajectory parameter columns can be gathered after the engine has
#: compacted finished trajectories away).  ``t`` is a scalar for the fixed-
#: step engine and an ``(n_active,)`` array for the adaptive engine.
BatchRHS = Callable[[object, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class ODEResult:
    """Trajectory returned by the ODE integrators.

    Attributes
    ----------
    times:
        Array of sample times, shape ``(n,)``.
    states:
        Array of states, shape ``(n, dim)``.
    event_time:
        Time at which a terminal event fired, or ``None``.
    """

    times: np.ndarray
    states: np.ndarray
    event_time: Optional[float] = None

    @property
    def final_state(self) -> np.ndarray:
        """State at the last recorded time."""
        return self.states[-1]

    @property
    def final_time(self) -> float:
        """Last recorded time."""
        return float(self.times[-1])

    def component(self, index: int) -> np.ndarray:
        """Time series of a single state component."""
        return self.states[:, index]

    def resample(self, times: np.ndarray) -> np.ndarray:
        """Linearly resample the trajectory at the given *times*.

        All state components are interpolated in one vectorized pass;
        the result matches a per-component ``np.interp`` loop exactly.
        """
        times = np.asarray(times, dtype=float)
        return interp_columns(times, self.times, self.states)


def euler_step(rhs: RHS, t: float, state: np.ndarray, dt: float) -> np.ndarray:
    """A single forward-Euler step (used mostly in tests as a reference)."""
    return state + dt * np.asarray(rhs(t, state), dtype=float)


def rk4_step(rhs: RHS, t: float, state: np.ndarray, dt: float) -> np.ndarray:
    """A single classical Runge-Kutta 4 step."""
    k1 = np.asarray(rhs(t, state), dtype=float)
    k2 = np.asarray(rhs(t + 0.5 * dt, state + 0.5 * dt * k1), dtype=float)
    k3 = np.asarray(rhs(t + 0.5 * dt, state + 0.5 * dt * k2), dtype=float)
    k4 = np.asarray(rhs(t + dt, state + dt * k3), dtype=float)
    return state + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def integrate_fixed(rhs: RHS, initial_state: Sequence[float], t_end: float,
                    dt: float, t_start: float = 0.0,
                    projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                    event: Optional[Callable[[float, np.ndarray], float]] = None,
                    health: Optional["HealthMonitor"] = None,
                    ) -> ODEResult:
    """Integrate ``dx/dt = rhs(t, x)`` with fixed-step RK4.

    Parameters
    ----------
    rhs:
        Right-hand side function returning ``dx/dt``.
    initial_state:
        Initial state vector.
    t_end, dt, t_start:
        Integration horizon, step size and start time.
    projection:
        Optional callable applied to the state after every step; used to
        enforce constraints such as ``q ≥ 0`` and ``λ ≥ 0`` for the queue.
    event:
        Optional scalar function of ``(t, state)``; integration stops at the
        first step where its sign changes (the terminal event).
    health:
        Optional :class:`~repro.health.HealthMonitor`.  When supplied, a
        step size exceeding the horizon fires the ``step-size`` invariant,
        and a non-finite state fires ``finiteness`` — typed abort under
        ``strict``/``observe``, and under ``repair`` the whole integration
        is retried at half the step (up to three halvings, each logged and
        counted) before aborting.  ``None`` keeps the original unmonitored
        behaviour exactly.

    Raises
    ------
    StabilityError
        If the state becomes non-finite.
    """
    if dt <= 0.0:
        raise ConvergenceError("dt must be positive")
    if t_end <= t_start:
        raise ConvergenceError("t_end must exceed t_start")
    if health is not None:
        health.check_step_size(dt, t_end - t_start, label="fixed-step ODE")
    halvings_left = 3 if health is not None and health.mode == "repair" else 0

    while True:
        state = np.asarray(initial_state, dtype=float).copy()
        n_steps = int(np.ceil((t_end - t_start) / dt))
        times: List[float] = [t_start]
        states: List[np.ndarray] = [state.copy()]
        event_time: Optional[float] = None
        previous_event = event(t_start, state) if event is not None else None

        t = t_start
        halved = False
        for _ in range(n_steps):
            step = min(dt, t_end - t)
            state = rk4_step(rhs, t, state, step)
            if projection is not None:
                state = projection(state)
            t += step
            if not np.all(np.isfinite(state)):
                if health is None:
                    raise StabilityError(
                        f"ODE state became non-finite at t={t:.6g}")
                # "Halve dt and substep": the repair action restarts the
                # whole march at half the step, so the retried run is
                # deterministic rather than patched mid-flight.
                repaired = health.check_finite_block(
                    state[None, :], t, label="fixed-step ODE",
                    repair=(lambda: None) if halvings_left > 0 else None,
                    fatal=True)
                if repaired:
                    halvings_left -= 1
                    dt = dt / 2.0
                    halved = True
                break
            times.append(t)
            states.append(state.copy())
            if event is not None:
                current_event = event(t, state)
                if previous_event is not None and previous_event * current_event < 0:
                    event_time = t
                    break
                previous_event = current_event
        if halved:
            continue
        return ODEResult(np.asarray(times), np.asarray(states), event_time)


@dataclass
class BatchODEResult:
    """A family of trajectories integrated as one state block.

    Attributes
    ----------
    times:
        Sample times.  Shape ``(n,)`` when all trajectories share the fixed
        step grid, or ``(n, batch)`` when each trajectory owns its grid
        (the adaptive engine).
    states:
        State block, shape ``(n, batch, dim)``.  Rows past a trajectory's
        ``n_samples`` are frozen copies of its last valid sample, so
        whole-block reductions stay meaningful after early termination.
    n_samples:
        Number of valid samples per trajectory, shape ``(batch,)``.
    event_times:
        Per-trajectory terminal-event times (``NaN`` where no event fired).
    failed:
        Boolean mask of trajectories stopped by a non-finite state (only
        ever set under ``on_nonfinite="mask"``).
    """

    times: np.ndarray
    states: np.ndarray
    n_samples: np.ndarray
    event_times: np.ndarray
    failed: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of trajectories in the block."""
        return self.states.shape[1]

    @property
    def dim(self) -> int:
        """State dimension."""
        return self.states.shape[2]

    @property
    def shared_grid(self) -> bool:
        """Whether all trajectories share one time grid."""
        return self.times.ndim == 1

    @property
    def final_states(self) -> np.ndarray:
        """Last valid state of every trajectory, shape ``(batch, dim)``."""
        rows = self.n_samples - 1
        return self.states[rows, np.arange(self.batch_size)]

    @property
    def final_times(self) -> np.ndarray:
        """Last valid sample time of every trajectory, shape ``(batch,)``."""
        rows = self.n_samples - 1
        if self.shared_grid:
            return self.times[rows]
        return self.times[rows, np.arange(self.batch_size)]

    def component(self, index: int) -> np.ndarray:
        """All trajectories of one state component, shape ``(n, batch)``."""
        return self.states[:, :, index]

    def event_time(self, trajectory: int) -> Optional[float]:
        """Terminal-event time of one trajectory, or ``None``."""
        value = float(self.event_times[trajectory])
        return None if np.isnan(value) else value

    def trajectory(self, index: int) -> ODEResult:
        """Extract one trajectory as a scalar :class:`ODEResult`.

        The extracted arrays are views truncated to the trajectory's valid
        samples; for a batch of one produced by :func:`integrate_fixed_batch`
        they are bit-identical to the output of :func:`integrate_fixed`.
        """
        n = int(self.n_samples[index])
        times = self.times[:n] if self.shared_grid else self.times[:n, index]
        return ODEResult(times, self.states[:n, index],
                         self.event_time(index))

    def trajectories(self) -> List[ODEResult]:
        """All trajectories as scalar results."""
        return [self.trajectory(i) for i in range(self.batch_size)]


def _as_state_block(initial_states: Sequence[Sequence[float]]) -> np.ndarray:
    """Coerce initial conditions to a fresh ``(batch, dim)`` float block."""
    block = np.array(initial_states, dtype=float, copy=True)
    if block.ndim == 1:
        block = block.reshape(1, -1)
    if block.ndim != 2 or block.size == 0:
        raise ConvergenceError(
            "initial_states must be a non-empty (batch, dim) block")
    return block


def _freeze_tails(storage: np.ndarray, n_samples: np.ndarray,
                  n_rows: int) -> None:
    """Repeat each trajectory's last valid row through the remaining rows."""
    for index in np.nonzero(n_samples < n_rows)[0]:
        last = int(n_samples[index]) - 1
        storage[last + 1:n_rows, index] = storage[last, index]


def integrate_fixed_batch(rhs: BatchRHS,
                          initial_states: Sequence[Sequence[float]],
                          t_end: float, dt: float, t_start: float = 0.0,
                          projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                          event: Optional[BatchRHS] = None,
                          on_nonfinite: str = "raise",
                          health: Optional["HealthMonitor"] = None
                          ) -> BatchODEResult:
    """Integrate a ``(batch, dim)`` family with fixed-step RK4.

    Every trajectory sees exactly the floating-point operations of
    :func:`integrate_fixed` (same step schedule, same RK4 expression), so a
    batch of one reproduces the scalar integrator bit for bit as long as
    *rhs* and *projection* are element-wise equivalents of their scalar
    counterparts.

    Parameters
    ----------
    rhs:
        Batched right-hand side ``rhs(t, states, indices) -> (n_active, dim)``
        (see :data:`BatchRHS`).
    initial_states:
        Initial conditions, shape ``(batch, dim)`` (a single ``(dim,)``
        vector is treated as a batch of one).
    t_end, dt, t_start:
        Integration horizon, step size and start time (shared by the batch).
    projection:
        Optional element-wise constraint applied to the state block after
        every step.
    event:
        Optional per-trajectory scalar function
        ``event(t, states, indices) -> (n_active,)``; a trajectory stops at
        the first step where its event value changes sign.  Finished
        trajectories are compacted out of the working block immediately, so
        the per-step cost tracks the number of *live* trajectories.
    on_nonfinite:
        ``"raise"`` (default) mirrors the scalar integrator and raises
        :class:`StabilityError` as soon as any trajectory goes non-finite;
        ``"mask"`` instead stops only the offending trajectories and flags
        them in ``BatchODEResult.failed`` so a parameter sweep survives
        isolated blow-ups.
    health:
        Optional :class:`~repro.health.HealthMonitor`.  Non-finite
        trajectories fire the ``finiteness`` invariant: ``strict`` aborts
        typed, ``repair`` degrades to the masking path regardless of
        *on_nonfinite* (each degradation counted), ``observe`` records and
        then honours *on_nonfinite* unchanged.  ``None`` keeps the
        original unmonitored behaviour exactly.
    """
    if dt <= 0.0:
        raise ConvergenceError("dt must be positive")
    if t_end <= t_start:
        raise ConvergenceError("t_end must exceed t_start")
    if on_nonfinite not in ("raise", "mask"):
        raise ConvergenceError("on_nonfinite must be 'raise' or 'mask'")
    if health is not None:
        health.check_step_size(dt, t_end - t_start,
                               label="batched fixed-step ODE")

    states = _as_state_block(initial_states)
    batch, dim = states.shape
    n_steps = int(np.ceil((t_end - t_start) / dt))

    times = np.empty(n_steps + 1)
    storage = np.empty((n_steps + 1, batch, dim))
    times[0] = t_start
    storage[0] = states
    n_samples = np.ones(batch, dtype=np.intp)
    event_times = np.full(batch, np.nan)
    failed = np.zeros(batch, dtype=bool)

    active = np.arange(batch)
    previous_event = None
    if event is not None:
        previous_event = np.asarray(event(t_start, states, active),
                                    dtype=float)

    n_rows = n_steps + 1
    t = t_start
    for step_index in range(1, n_steps + 1):
        step = min(dt, t_end - t)
        k1 = np.asarray(rhs(t, states, active), dtype=float)
        k2 = np.asarray(rhs(t + 0.5 * step, states + 0.5 * step * k1, active),
                        dtype=float)
        k3 = np.asarray(rhs(t + 0.5 * step, states + 0.5 * step * k2, active),
                        dtype=float)
        k4 = np.asarray(rhs(t + step, states + step * k3, active), dtype=float)
        states = states + step / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        if projection is not None:
            states = projection(states)
        t += step
        times[step_index] = t

        finite = np.isfinite(states).all(axis=1)
        if not finite.all():
            mask_out = on_nonfinite == "mask"
            if health is not None:
                repaired = health.check_finite_block(
                    states, t, label="batched fixed-step ODE",
                    repair=lambda: None, fatal=not mask_out)
                # strict (and observe under "raise") aborted inside the
                # check; a repair means "degrade to masking".
                mask_out = mask_out or repaired
            if not mask_out:
                raise StabilityError(
                    f"ODE state became non-finite at t={t:.6g}")
            failed[active[~finite]] = True
            active = active[finite]
            states = states[finite]
            if previous_event is not None:
                previous_event = previous_event[finite]
            if active.size == 0:
                n_rows = step_index
                break

        storage[step_index, active] = states
        n_samples[active] = step_index + 1

        if event is not None:
            current_event = np.asarray(event(t, states, active), dtype=float)
            fired = previous_event * current_event < 0.0
            if fired.any():
                event_times[active[fired]] = t
                keep = ~fired
                active = active[keep]
                states = states[keep]
                previous_event = current_event[keep]
                if active.size == 0:
                    n_rows = step_index + 1
                    break
            else:
                previous_event = current_event

    _freeze_tails(storage, n_samples, n_rows)
    return BatchODEResult(times=times[:n_rows], states=storage[:n_rows],
                          n_samples=n_samples, event_times=event_times,
                          failed=failed)


# Coefficients of the Runge-Kutta-Fehlberg 4(5) embedded pair.
_RKF_A = [
    [],
    [1.0 / 4.0],
    [3.0 / 32.0, 9.0 / 32.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0],
    [-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0],
]
_RKF_C = [0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0]
_RKF_B4 = [25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -1.0 / 5.0, 0.0]
_RKF_B5 = [16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0,
           -9.0 / 50.0, 2.0 / 55.0]


def integrate_adaptive(rhs: RHS, initial_state: Sequence[float], t_end: float,
                       t_start: float = 0.0, rtol: float = 1e-6,
                       atol: float = 1e-9, initial_dt: float = 1e-2,
                       max_dt: float = 1.0, min_dt: float = 1e-10,
                       projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                       max_steps: int = 2_000_000,
                       health: Optional["HealthMonitor"] = None) -> ODEResult:
    """Integrate with the adaptive Runge-Kutta-Fehlberg 4(5) method.

    The step size is controlled so the estimated local error stays below
    ``atol + rtol * |state|`` component-wise.  An optional *health* monitor
    reports step-size collapse and non-finite states (typed abort under
    ``strict``; record-only otherwise — the adaptive controller already
    owns the step size, so there is no separate repair).
    """
    state = np.asarray(initial_state, dtype=float).copy()
    t = t_start
    dt = initial_dt
    times: List[float] = [t]
    states: List[np.ndarray] = [state.copy()]

    for _ in range(max_steps):
        if t >= t_end:
            break
        dt = min(dt, t_end - t, max_dt)
        if dt < min_dt:
            if health is not None:
                health.check_min_step(dt, min_dt, t,
                                      label="adaptive ODE")
            raise ConvergenceError(
                "adaptive ODE step shrank below the minimum allowed",
                residual=dt)

        ks = []
        for stage in range(6):
            increment = np.zeros_like(state)
            for j, a in enumerate(_RKF_A[stage]):
                increment = increment + a * ks[j]
            ks.append(np.asarray(
                rhs(t + _RKF_C[stage] * dt, state + dt * increment), dtype=float))

        order4 = state + dt * sum(
            b * k for b, k in zip(_RKF_B4, ks, strict=True))
        order5 = state + dt * sum(
            b * k for b, k in zip(_RKF_B5, ks, strict=True))
        error = np.abs(order5 - order4)
        scale = atol + rtol * np.maximum(np.abs(state), np.abs(order5))
        error_ratio = float(np.max(error / scale))

        if error_ratio <= 1.0 or dt <= min_dt * 2.0:
            state = order5
            if projection is not None:
                state = projection(state)
            t += dt
            if not np.all(np.isfinite(state)):
                if health is not None:
                    health.check_finite_block(state[None, :], t,
                                              label="adaptive ODE",
                                              fatal=True)
                raise StabilityError(
                    f"adaptive ODE state became non-finite at t={t:.6g}")
            times.append(t)
            states.append(state.copy())

        # Standard safety-factor step-size update.
        if error_ratio == 0.0:
            dt *= 2.0
        else:
            dt *= min(2.0, max(0.2, 0.9 * error_ratio ** -0.2))
    else:
        raise ConvergenceError("adaptive ODE integration exceeded max_steps",
                               iterations=max_steps)

    return ODEResult(np.asarray(times), np.asarray(states))


def integrate_adaptive_batch(rhs: BatchRHS,
                             initial_states: Sequence[Sequence[float]],
                             t_end: float, t_start: float = 0.0,
                             rtol: float = 1e-6, atol: float = 1e-9,
                             initial_dt: float = 1e-2, max_dt: float = 1.0,
                             min_dt: float = 1e-10,
                             projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                             max_steps: int = 2_000_000,
                             health: Optional["HealthMonitor"] = None
                             ) -> BatchODEResult:
    """Adaptive Runge-Kutta-Fehlberg 4(5) over a ``(batch, dim)`` family.

    Each trajectory carries its own clock and step size; one loop iteration
    attempts a step for every live trajectory simultaneously and accepts or
    rejects per trajectory through a step mask.  Error control, the step-size
    update and the stage arithmetic are the element-wise images of
    :func:`integrate_adaptive`, so a batch of one reproduces the scalar
    adaptive integrator bit for bit.  Because accepted times differ across
    the batch, the result carries a per-trajectory time grid
    (``times`` of shape ``(n, batch)``).

    *rhs* receives the per-trajectory stage times as an ``(n_active,)``
    array (see :data:`BatchRHS`); an autonomous right-hand side can simply
    ignore them.
    """
    states = _as_state_block(initial_states)
    batch, dim = states.shape

    t = np.full(batch, float(t_start))
    dt = np.full(batch, float(initial_dt))
    attempts = np.zeros(batch, dtype=np.int64)

    capacity = 256
    times = np.empty((capacity, batch))
    storage = np.empty((capacity, batch, dim))
    times[0] = t_start
    storage[0] = states
    n_samples = np.ones(batch, dtype=np.intp)

    active = np.arange(batch)
    while active.size:
        done = t[active] >= t_end
        if done.any():
            keep = ~done
            active = active[keep]
            states = states[keep]
            if active.size == 0:
                break
        t_act = t[active]
        dt_act = np.minimum(np.minimum(dt[active], t_end - t_act), max_dt)
        if (dt_act < min_dt).any():
            if health is not None:
                worst = int(np.argmin(dt_act))
                health.check_min_step(float(dt_act.min()), min_dt,
                                      float(t_act[worst]),
                                      label="batched adaptive ODE")
            raise ConvergenceError(
                "adaptive ODE step shrank below the minimum allowed",
                residual=float(dt_act.min()))

        dt_col = dt_act[:, None]
        ks: List[np.ndarray] = []
        for stage in range(6):
            increment = np.zeros_like(states)
            for j, a in enumerate(_RKF_A[stage]):
                increment = increment + a * ks[j]
            ks.append(np.asarray(
                rhs(t_act + _RKF_C[stage] * dt_act,
                    states + dt_col * increment, active), dtype=float))

        order4 = states + dt_col * sum(
            b * k for b, k in zip(_RKF_B4, ks, strict=True))
        order5 = states + dt_col * sum(
            b * k for b, k in zip(_RKF_B5, ks, strict=True))
        error = np.abs(order5 - order4)
        scale = atol + rtol * np.maximum(np.abs(states), np.abs(order5))
        error_ratio = np.max(error / scale, axis=1)

        accepted = (error_ratio <= 1.0) | (dt_act <= min_dt * 2.0)
        if accepted.any():
            rows = active[accepted]
            updated = order5[accepted]
            if projection is not None:
                updated = projection(updated)
            t_new = t_act[accepted] + dt_act[accepted]
            if not np.isfinite(updated).all():
                bad = t_new[~np.isfinite(updated).all(axis=1)]
                if health is not None:
                    health.check_finite_block(updated, float(bad[0]),
                                              label="batched adaptive ODE",
                                              fatal=True)
                raise StabilityError(
                    f"adaptive ODE state became non-finite at "
                    f"t={float(bad[0]):.6g}")
            states[accepted] = updated
            t[rows] = t_new
            slots = n_samples[rows]
            if int(slots.max()) >= capacity:
                capacity *= 2
                times = np.concatenate(
                    [times, np.empty_like(times)], axis=0)
                storage = np.concatenate(
                    [storage, np.empty_like(storage)], axis=0)
            times[slots, rows] = t_new
            storage[slots, rows] = updated
            n_samples[rows] = slots + 1

        # Standard safety-factor step-size update, element-wise.  The power
        # is evaluated per element with scalar pow: numpy's vectorized pow
        # kernel can differ from libm by one ulp, which would break the
        # bit-identity of the step schedule with the scalar integrator.
        nonzero = error_ratio != 0.0
        factor = np.ones_like(error_ratio)
        factor[nonzero] = [0.9 * float(ratio) ** -0.2
                           for ratio in error_ratio[nonzero]]
        shrunk = dt_act * np.minimum(2.0, np.maximum(0.2, factor))
        dt[active] = np.where(nonzero, shrunk, 2.0 * dt_act)

        attempts[active] += 1
        exhausted = (attempts[active] >= max_steps) & (t[active] < t_end)
        if exhausted.any():
            raise ConvergenceError(
                "adaptive ODE integration exceeded max_steps",
                iterations=max_steps)

    n_rows = int(n_samples.max())
    times = times[:n_rows]
    storage = storage[:n_rows]
    _freeze_tails(times[:, :, None], n_samples, n_rows)
    _freeze_tails(storage, n_samples, n_rows)
    return BatchODEResult(times=times, states=storage, n_samples=n_samples,
                          event_times=np.full(batch, np.nan),
                          failed=np.zeros(batch, dtype=bool))
