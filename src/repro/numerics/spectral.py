"""Spectral and peak-based tools for oscillation analysis.

Section 7 of the paper predicts sustained oscillations of the queue length
and the arrival rate when feedback is delayed.  To quantify them we need the
dominant period and the oscillation amplitude of a (possibly noisy) signal.
Two complementary estimators are provided:

* :func:`dominant_period` -- FFT-based estimate of the strongest non-zero
  frequency of a detrended signal,
* :func:`detect_peaks` -- simple local-maximum detection used for
  peak-to-peak amplitude and successive-peak contraction ratios (the
  quantity appearing in the proof of Theorem 1).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["power_spectrum", "dominant_period", "detect_peaks"]


def power_spectrum(signal: np.ndarray, dt: float) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(frequencies, power)`` of the detrended real signal.

    The signal mean is removed before the FFT so the zero-frequency bin does
    not dominate the spectrum.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.size < 4:
        raise AnalysisError("need at least 4 samples for a power spectrum")
    detrended = signal - np.mean(signal)
    spectrum = np.fft.rfft(detrended)
    frequencies = np.fft.rfftfreq(signal.size, d=dt)
    power = np.abs(spectrum) ** 2
    return frequencies, power


def dominant_period(signal: np.ndarray, dt: float,
                    min_relative_power: float = 1e-12) -> float:
    """Return the period of the strongest non-zero frequency component.

    Raises
    ------
    AnalysisError
        If the signal is too short or has no appreciable non-zero-frequency
        content (i.e. it is essentially constant).
    """
    frequencies, power = power_spectrum(signal, dt)
    if frequencies.size < 2:
        raise AnalysisError("signal too short to estimate a period")
    nonzero_power = power[1:]
    total = float(np.sum(nonzero_power))
    if total <= 0.0 or float(np.max(nonzero_power)) < min_relative_power * max(total, 1.0):
        raise AnalysisError("signal has no detectable oscillation")
    peak_index = 1 + int(np.argmax(nonzero_power))
    frequency = frequencies[peak_index]
    if frequency <= 0.0:
        raise AnalysisError("dominant frequency is not positive")
    return float(1.0 / frequency)


def detect_peaks(signal: np.ndarray, min_prominence: float = 0.0) -> List[int]:
    """Return indices of local maxima of *signal*.

    A sample is a peak if it is strictly greater than its left neighbour and
    at least as large as its right neighbour; peaks whose height above the
    neighbouring minima is below *min_prominence* are discarded.  Plateaus
    report their first index.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.size < 3:
        return []
    if min_prominence <= 0.0:
        # Vectorized fast path: identical local-maximum predicate, no
        # prominence filtering to apply.
        interior = signal[1:-1]
        mask = (interior > signal[:-2]) & (interior >= signal[2:])
        return (np.nonzero(mask)[0] + 1).tolist()
    peaks: List[int] = []
    for i in range(1, signal.size - 1):
        if signal[i] > signal[i - 1] and signal[i] >= signal[i + 1]:
            if min_prominence > 0.0:
                left_min = float(np.min(signal[max(0, i - 1)::-1][:max(i, 1)])) \
                    if i > 0 else signal[i]
                left_min = float(np.min(signal[:i + 1]))
                right_min = float(np.min(signal[i:]))
                prominence = signal[i] - max(left_min, right_min)
                if prominence < min_prominence:
                    continue
            peaks.append(i)
    return peaks
