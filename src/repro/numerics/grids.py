"""Finite-volume style grids for the Fokker-Planck solver.

Two grid classes are provided:

* :class:`UniformGrid1D` -- a uniform cell-centred grid on an interval.
* :class:`PhaseGrid2D` -- the tensor product of a queue-length grid
  ``q ∈ [0, q_max]`` and a growth-rate grid ``ν ∈ [v_min, v_max]`` used to
  discretise the joint density ``f(t, q, ν)`` of Equation 14.

Densities are stored at cell centres; integrals over the grid therefore use
the cell areas, which makes conservation statements exact for the
finite-volume advection schemes in :mod:`repro.core.advection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..exceptions import GridError

__all__ = ["UniformGrid1D", "PhaseGrid2D"]


@dataclass(frozen=True)
class UniformGrid1D:
    """A uniform, cell-centred grid on ``[lower, upper]`` with ``n`` cells.

    Attributes
    ----------
    lower, upper:
        End points of the interval.
    n:
        Number of cells; must be at least 2.
    """

    lower: float
    upper: float
    n: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise GridError(f"grid needs at least 2 cells, got {self.n}")
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise GridError("grid bounds must be finite")
        if self.upper <= self.lower:
            raise GridError(
                f"upper bound {self.upper} must exceed lower bound {self.lower}")
        # Cache the coordinate arrays once: the solver hot loops read them on
        # every substep and the arrays never change (the dataclass is frozen).
        # They are marked read-only because they are shared between callers.
        dx = (self.upper - self.lower) / self.n
        centers = self.lower + (np.arange(self.n) + 0.5) * dx
        edges = self.lower + np.arange(self.n + 1) * dx
        centers.setflags(write=False)
        edges.setflags(write=False)
        object.__setattr__(self, "_centers", centers)
        object.__setattr__(self, "_edges", edges)
        object.__setattr__(self, "_max_abs", float(np.max(np.abs(centers))))

    @property
    def dx(self) -> float:
        """Cell width."""
        return (self.upper - self.lower) / self.n

    @property
    def centers(self) -> np.ndarray:
        """Cell-centre coordinates, shape ``(n,)`` (cached, read-only)."""
        return self._centers

    @property
    def edges(self) -> np.ndarray:
        """Cell-edge coordinates, shape ``(n + 1,)`` (cached, read-only)."""
        return self._edges

    @property
    def max_abs_center(self) -> float:
        """Largest absolute cell-centre coordinate, ``max |x_i|`` (cached)."""
        return self._max_abs

    def locate(self, x: float) -> int:
        """Return the index of the cell containing *x* (clamped to the grid)."""
        idx = int(np.floor((x - self.lower) / self.dx))
        return min(max(idx, 0), self.n - 1)

    def contains(self, x: float) -> bool:
        """Return ``True`` if *x* lies within the grid interval."""
        return self.lower <= x <= self.upper

    def delta_density(self, x: float) -> np.ndarray:
        """Return a discrete approximation of a Dirac delta centred at *x*.

        The mass ``1`` is placed in the cell containing *x*, scaled by
        ``1 / dx`` so that the trapezoid integral of the returned array over
        the grid is (approximately) one.
        """
        density = np.zeros(self.n)
        density[self.locate(x)] = 1.0 / self.dx
        return density


@dataclass(frozen=True)
class PhaseGrid2D:
    """Tensor-product grid over the ``(q, ν)`` phase plane.

    The first axis of every density array indexes the queue dimension and
    the second axis indexes the growth-rate dimension, i.e. arrays have shape
    ``(q_grid.n, v_grid.n)``.
    """

    q_grid: UniformGrid1D
    v_grid: UniformGrid1D

    def __post_init__(self) -> None:
        # Cache the cell-centre meshes and the maximum axis speeds used by
        # the CFL computation: both are consulted on every solver substep and
        # are immutable for a frozen grid.
        q_mesh, v_mesh = np.meshgrid(self.q_grid.centers, self.v_grid.centers,
                                     indexing="ij")
        q_mesh.setflags(write=False)
        v_mesh.setflags(write=False)
        object.__setattr__(self, "_mesh", (q_mesh, v_mesh))
        object.__setattr__(self, "_max_abs_v", self.v_grid.max_abs_center)

    @classmethod
    def from_bounds(cls, q_max: float, nq: int, v_min: float, v_max: float,
                    nv: int) -> "PhaseGrid2D":
        """Build a phase grid from the bounds used by :class:`GridParameters`."""
        return cls(UniformGrid1D(0.0, q_max, nq), UniformGrid1D(v_min, v_max, nv))

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape ``(nq, nv)`` of density arrays on this grid."""
        return (self.q_grid.n, self.v_grid.n)

    @property
    def dq(self) -> float:
        """Cell width along the queue axis."""
        return self.q_grid.dx

    @property
    def dv(self) -> float:
        """Cell width along the growth-rate axis."""
        return self.v_grid.dx

    @property
    def cell_area(self) -> float:
        """Area of a single phase-plane cell."""
        return self.dq * self.dv

    @property
    def q_centers(self) -> np.ndarray:
        """Queue-axis cell centres, shape ``(nq,)``."""
        return self.q_grid.centers

    @property
    def v_centers(self) -> np.ndarray:
        """Growth-rate-axis cell centres, shape ``(nv,)``."""
        return self.v_grid.centers

    @property
    def max_abs_v(self) -> float:
        """Largest absolute growth-rate cell centre, ``max |ν|`` (cached).

        This is the fastest queue-axis advection speed on the grid, used by
        the CFL time-step computation on every solver substep.
        """
        return self._max_abs_v

    def meshgrid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(Q, V)`` arrays of shape ``(nq, nv)`` with cell centres.

        The arrays are cached on the grid and read-only; callers that need a
        mutable mesh should copy.
        """
        return self._mesh

    def total_mass(self, density: np.ndarray) -> float:
        """Integral of *density* over the whole phase plane (cell-sum rule)."""
        self._check_shape(density)
        return float(np.sum(density) * self.cell_area)

    def normalize(self, density: np.ndarray) -> np.ndarray:
        """Return *density* rescaled to unit total mass."""
        mass = self.total_mass(density)
        if mass <= 0.0:
            raise GridError("cannot normalise a density with non-positive mass")
        return density / mass

    def gaussian_density(self, q_mean: float, v_mean: float,
                         q_std: float, v_std: float) -> np.ndarray:
        """Return a normalised (truncated) Gaussian density on the grid.

        Used to approximate the initial condition ``f(0, q, ν)`` concentrated
        near a known starting point ``(Q(0), ν(0))``; a narrow Gaussian is a
        smooth stand-in for the delta function of the paper's derivation.
        """
        if q_std <= 0.0 or v_std <= 0.0:
            raise GridError("standard deviations must be positive")
        q, v = self.meshgrid()
        density = np.exp(-0.5 * ((q - q_mean) / q_std) ** 2
                         - 0.5 * ((v - v_mean) / v_std) ** 2)
        return self.normalize(density)

    def _check_shape(self, density: np.ndarray) -> None:
        if density.shape != self.shape:
            raise GridError(
                f"density shape {density.shape} does not match grid {self.shape}")
