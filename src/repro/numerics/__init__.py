"""Numerical substrate used by the Fokker-Planck solver and the analyses.

The subpackage is deliberately self-contained: every routine needed by the
higher layers (grids, tridiagonal solves, quadrature, interpolation, ODE /
DDE / SDE integration, spectral period estimation, streaming statistics and
root finding) lives here, so the physics and control layers above never have
to reach for ad-hoc numerical code.
"""

from .grids import UniformGrid1D, PhaseGrid2D
from .tridiag import TridiagonalFactorization, solve_tridiagonal
from .backend import (
    BACKEND_ENV_VAR,
    NumericsBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .integrate import trapezoid, simpson, cumulative_trapezoid, normalize_density
from .interpolate import (
    linear_interpolate,
    bilinear_interpolate,
    interp_columns,
    Interpolant1D,
)
from .ode import (
    euler_step,
    rk4_step,
    integrate_fixed,
    integrate_adaptive,
    integrate_fixed_batch,
    integrate_adaptive_batch,
    ODEResult,
    BatchODEResult,
)
from .dde import DelayBuffer, integrate_dde, DDEResult
from .sde import euler_maruyama, milstein, SDEPaths
from .spectral import dominant_period, power_spectrum, detect_peaks
from .stats import RunningStatistics, WeightedStatistics, empirical_density
from .rootfind import bisect, newton

__all__ = [
    "UniformGrid1D",
    "PhaseGrid2D",
    "TridiagonalFactorization",
    "solve_tridiagonal",
    "BACKEND_ENV_VAR",
    "NumericsBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "trapezoid",
    "simpson",
    "cumulative_trapezoid",
    "normalize_density",
    "linear_interpolate",
    "bilinear_interpolate",
    "interp_columns",
    "Interpolant1D",
    "euler_step",
    "rk4_step",
    "integrate_fixed",
    "integrate_adaptive",
    "integrate_fixed_batch",
    "integrate_adaptive_batch",
    "ODEResult",
    "BatchODEResult",
    "DelayBuffer",
    "integrate_dde",
    "DDEResult",
    "euler_maruyama",
    "milstein",
    "SDEPaths",
    "dominant_period",
    "power_spectrum",
    "detect_peaks",
    "RunningStatistics",
    "WeightedStatistics",
    "empirical_density",
    "bisect",
    "newton",
]
