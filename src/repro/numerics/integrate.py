"""Quadrature helpers for densities defined on uniform grids."""

from __future__ import annotations

import numpy as np

from ..exceptions import GridError

__all__ = [
    "trapezoid",
    "simpson",
    "cumulative_trapezoid",
    "normalize_density",
]


def trapezoid(values: np.ndarray, dx: float) -> float:
    """Trapezoidal rule for samples *values* spaced *dx* apart."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise GridError("trapezoid needs at least two samples")
    return float(np.trapezoid(values, dx=dx))


def simpson(values: np.ndarray, dx: float) -> float:
    """Composite Simpson rule (falls back to trapezoid on the last interval
    when the number of samples is even)."""
    values = np.asarray(values, dtype=float)
    n = values.size
    if n < 3:
        return trapezoid(values, dx)
    if n % 2 == 1:
        weights = np.ones(n)
        weights[1:-1:2] = 4.0
        weights[2:-1:2] = 2.0
        return float(np.sum(weights * values) * dx / 3.0)
    # Even number of samples: Simpson on the first n-1, trapezoid on the tail.
    head = simpson(values[:-1], dx)
    tail = 0.5 * dx * (values[-2] + values[-1])
    return head + tail


def cumulative_trapezoid(values: np.ndarray, dx: float) -> np.ndarray:
    """Cumulative trapezoidal integral, same length as *values* (starts at 0)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return np.zeros(0)
    partial = np.concatenate(
        ([0.0], np.cumsum(0.5 * dx * (values[1:] + values[:-1]))))
    return partial


def normalize_density(values: np.ndarray, dx: float) -> np.ndarray:
    """Rescale a non-negative sampled density to integrate to one."""
    values = np.asarray(values, dtype=float)
    mass = float(np.sum(values) * dx)
    if mass <= 0.0:
        raise GridError("cannot normalise a density with non-positive mass")
    return values / mass
