"""Light-weight interpolation routines.

The delay-differential solver needs fast linear interpolation into a history
buffer, and the Fokker-Planck post-processing needs bilinear interpolation of
the joint density.  Both are small enough to implement here without reaching
for :mod:`scipy.interpolate`, keeping the hot paths allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["linear_interpolate", "bilinear_interpolate", "Interpolant1D"]


def linear_interpolate(x: float, xs: np.ndarray, ys: np.ndarray) -> float:
    """Piecewise-linear interpolation of ``(xs, ys)`` at scalar *x*.

    Values outside the range of *xs* are clamped to the boundary values,
    which is the behaviour wanted for DDE history lookups before time zero.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0:
        raise ValueError("cannot interpolate with an empty abscissa array")
    if xs.size == 1:
        return float(ys[0])
    if x <= xs[0]:
        return float(ys[0])
    if x >= xs[-1]:
        return float(ys[-1])
    idx = int(np.searchsorted(xs, x) - 1)
    idx = min(max(idx, 0), xs.size - 2)
    x0, x1 = xs[idx], xs[idx + 1]
    y0, y1 = ys[idx], ys[idx + 1]
    if x1 == x0:
        return float(y0)
    weight = (x - x0) / (x1 - x0)
    return float(y0 + weight * (y1 - y0))


def bilinear_interpolate(q: float, v: float, q_centers: np.ndarray,
                         v_centers: np.ndarray, values: np.ndarray) -> float:
    """Bilinear interpolation of a 2-D field sampled at cell centres.

    *values* must have shape ``(len(q_centers), len(v_centers))``.  Points
    outside the sampled rectangle are clamped to the nearest edge.
    """
    q_centers = np.asarray(q_centers, dtype=float)
    v_centers = np.asarray(v_centers, dtype=float)
    values = np.asarray(values, dtype=float)

    def _bracket(x: float, centers: np.ndarray) -> tuple[int, int, float]:
        if x <= centers[0]:
            return 0, 0, 0.0
        if x >= centers[-1]:
            last = centers.size - 1
            return last, last, 0.0
        hi = int(np.searchsorted(centers, x))
        lo = hi - 1
        span = centers[hi] - centers[lo]
        weight = 0.0 if span == 0 else (x - centers[lo]) / span
        return lo, hi, weight

    qi_lo, qi_hi, wq = _bracket(q, q_centers)
    vi_lo, vi_hi, wv = _bracket(v, v_centers)

    f00 = values[qi_lo, vi_lo]
    f01 = values[qi_lo, vi_hi]
    f10 = values[qi_hi, vi_lo]
    f11 = values[qi_hi, vi_hi]
    return float((1 - wq) * ((1 - wv) * f00 + wv * f01)
                 + wq * ((1 - wv) * f10 + wv * f11))


@dataclass
class Interpolant1D:
    """A reusable piecewise-linear interpolant over fixed samples."""

    xs: np.ndarray
    ys: np.ndarray

    def __post_init__(self) -> None:
        self.xs = np.asarray(self.xs, dtype=float)
        self.ys = np.asarray(self.ys, dtype=float)
        if self.xs.shape != self.ys.shape:
            raise ValueError("xs and ys must have the same shape")
        if self.xs.size < 1:
            raise ValueError("need at least one sample")
        if np.any(np.diff(self.xs) < 0):
            raise ValueError("xs must be non-decreasing")

    def __call__(self, x: float) -> float:
        """Evaluate the interpolant at *x* (clamped outside the range)."""
        return linear_interpolate(x, self.xs, self.ys)

    def vectorized(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate at many points (clamped), returning an array."""
        return np.interp(np.asarray(xs, dtype=float), self.xs, self.ys,
                         left=self.ys[0], right=self.ys[-1])
