"""Light-weight interpolation routines.

The delay-differential solver needs fast linear interpolation into a history
buffer, and the Fokker-Planck post-processing needs bilinear interpolation of
the joint density.  Both are small enough to implement here without reaching
for :mod:`scipy.interpolate`, keeping the hot paths allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["linear_interpolate", "bilinear_interpolate", "interp_columns",
           "Interpolant1D"]


def interp_columns(x: np.ndarray, xp: np.ndarray,
                   fp: np.ndarray) -> np.ndarray:
    """Piecewise-linear interpolation of every column of *fp* at once.

    Vectorized equivalent of running ``np.interp(x, xp, fp[:, j])`` for each
    column ``j``; the arithmetic (slope formula, exact-node short-circuit,
    boundary clamping and the NaN fallback) mirrors ``np.interp`` so the
    results are bitwise identical to the per-column loop.

    Parameters
    ----------
    x:
        Query points, shape ``(k,)``.
    xp:
        Monotonically increasing sample abscissae, shape ``(n,)`` with
        ``n >= 1``.
    fp:
        Sample values, shape ``(n, m)``.

    Returns
    -------
    np.ndarray
        Interpolated values of shape ``(k, m)``.
    """
    x = np.atleast_1d(np.asarray(x, dtype=float))
    xp = np.asarray(xp, dtype=float)
    fp = np.asarray(fp, dtype=float)
    if xp.ndim != 1 or xp.size == 0:
        raise ValueError("xp must be a non-empty 1-D array")
    if fp.ndim != 2 or fp.shape[0] != xp.size:
        raise ValueError("fp must have shape (len(xp), m)")
    if xp.size == 1:
        return np.broadcast_to(fp[0], (x.size, fp.shape[1])).copy()

    index = np.clip(np.searchsorted(xp, x, side="right") - 1, 0, xp.size - 2)
    x0 = xp[index]
    x1 = xp[index + 1]
    f0 = fp[index]
    f1 = fp[index + 1]
    with np.errstate(invalid="ignore", divide="ignore"):
        slope = (f1 - f0) / (x1 - x0)[:, None]
        result = slope * (x - x0)[:, None] + f0
        # np.interp's NaN fallback: retry the interpolation anchored at the
        # right endpoint, and fall back to the (equal) endpoints outright.
        bad = np.isnan(result)
        if bad.any():
            alternative = slope * (x - x1)[:, None] + f1
            result = np.where(bad, alternative, result)
            result = np.where(np.isnan(result) & (f0 == f1), f0, result)
    result = np.where((x0 == x)[:, None], f0, result)
    result = np.where((x >= xp[-1])[:, None], fp[-1], result)
    result = np.where((x < xp[0])[:, None], fp[0], result)
    # A NaN query point stays NaN (np.interp's behaviour); without this the
    # equal-endpoint fallback above would fabricate a finite value for it.
    return np.where(np.isnan(x)[:, None], np.nan, result)


def linear_interpolate(x: float, xs: np.ndarray, ys: np.ndarray) -> float:
    """Piecewise-linear interpolation of ``(xs, ys)`` at scalar *x*.

    Values outside the range of *xs* are clamped to the boundary values,
    which is the behaviour wanted for DDE history lookups before time zero.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0:
        raise ValueError("cannot interpolate with an empty abscissa array")
    if xs.size == 1:
        return float(ys[0])
    if x <= xs[0]:
        return float(ys[0])
    if x >= xs[-1]:
        return float(ys[-1])
    idx = int(np.searchsorted(xs, x) - 1)
    idx = min(max(idx, 0), xs.size - 2)
    x0, x1 = xs[idx], xs[idx + 1]
    y0, y1 = ys[idx], ys[idx + 1]
    if x1 == x0:
        return float(y0)
    weight = (x - x0) / (x1 - x0)
    return float(y0 + weight * (y1 - y0))


def bilinear_interpolate(q: float, v: float, q_centers: np.ndarray,
                         v_centers: np.ndarray, values: np.ndarray) -> float:
    """Bilinear interpolation of a 2-D field sampled at cell centres.

    *values* must have shape ``(len(q_centers), len(v_centers))``.  Points
    outside the sampled rectangle are clamped to the nearest edge.
    """
    q_centers = np.asarray(q_centers, dtype=float)
    v_centers = np.asarray(v_centers, dtype=float)
    values = np.asarray(values, dtype=float)

    def _bracket(x: float, centers: np.ndarray) -> tuple[int, int, float]:
        if x <= centers[0]:
            return 0, 0, 0.0
        if x >= centers[-1]:
            last = centers.size - 1
            return last, last, 0.0
        hi = int(np.searchsorted(centers, x))
        lo = hi - 1
        span = centers[hi] - centers[lo]
        weight = 0.0 if span == 0 else (x - centers[lo]) / span
        return lo, hi, weight

    qi_lo, qi_hi, wq = _bracket(q, q_centers)
    vi_lo, vi_hi, wv = _bracket(v, v_centers)

    f00 = values[qi_lo, vi_lo]
    f01 = values[qi_lo, vi_hi]
    f10 = values[qi_hi, vi_lo]
    f11 = values[qi_hi, vi_hi]
    return float((1 - wq) * ((1 - wv) * f00 + wv * f01)
                 + wq * ((1 - wv) * f10 + wv * f11))


@dataclass
class Interpolant1D:
    """A reusable piecewise-linear interpolant over fixed samples."""

    xs: np.ndarray
    ys: np.ndarray

    def __post_init__(self) -> None:
        self.xs = np.asarray(self.xs, dtype=float)
        self.ys = np.asarray(self.ys, dtype=float)
        if self.xs.shape != self.ys.shape:
            raise ValueError("xs and ys must have the same shape")
        if self.xs.size < 1:
            raise ValueError("need at least one sample")
        if np.any(np.diff(self.xs) < 0):
            raise ValueError("xs must be non-decreasing")

    def __call__(self, x: float) -> float:
        """Evaluate the interpolant at *x* (clamped outside the range)."""
        return linear_interpolate(x, self.xs, self.ys)

    def vectorized(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate at many points (clamped), returning an array."""
        return np.interp(np.asarray(xs, dtype=float), self.xs, self.ys,
                         left=self.ys[0], right=self.ys[-1])
