"""Stochastic differential equation integrators.

The Langevin analogue of the Fokker-Planck equation (Equation 14) is

    dQ = ν dt + σ dW,      dν = g(Q, λ) dt,

i.e. the diffusion acts on the queue length while the growth rate follows
the deterministic control law along each random sample path.  The ensemble
of such particles has exactly the density governed by the FP equation, which
gives an independent Monte-Carlo check of the PDE solver.

Two schemes are provided: Euler-Maruyama (strong order 0.5, sufficient for
additive noise) and Milstein, which for state-dependent diffusion adds the
derivative correction term.  For the additive-noise case used by the paper
the two coincide; Milstein is included for the general interface and tested
against known moments of geometric Brownian motion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..exceptions import ConvergenceError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..health import HealthMonitor

__all__ = ["euler_maruyama", "milstein", "SDEPaths"]

Drift = Callable[[float, np.ndarray], np.ndarray]
Diffusion = Callable[[float, np.ndarray], np.ndarray]


@dataclass
class SDEPaths:
    """Monte-Carlo sample paths produced by the SDE integrators.

    Attributes
    ----------
    times:
        Sample times, shape ``(n_times,)``.
    paths:
        Sample paths, shape ``(n_times, n_paths, dim)``.
    """

    times: np.ndarray
    paths: np.ndarray

    @property
    def n_paths(self) -> int:
        """Number of Monte-Carlo particles."""
        return self.paths.shape[1]

    @property
    def final_states(self) -> np.ndarray:
        """States of all particles at the final time, shape ``(n_paths, dim)``."""
        return self.paths[-1]

    def component(self, index: int) -> np.ndarray:
        """All sample paths of one component, shape ``(n_times, n_paths)``."""
        return self.paths[:, :, index]

    def mean(self, index: int) -> np.ndarray:
        """Ensemble mean of a component as a function of time."""
        return np.mean(self.paths[:, :, index], axis=1)

    def variance(self, index: int) -> np.ndarray:
        """Ensemble variance of a component as a function of time."""
        return np.var(self.paths[:, :, index], axis=1)


def _simulate(drift: Drift, diffusion: Diffusion, initial: np.ndarray,
              t_end: float, dt: float, n_paths: int, rng: np.random.Generator,
              projection: Optional[Callable[[np.ndarray], np.ndarray]],
              record_every: int, milstein_correction: bool,
              health: Optional["HealthMonitor"] = None) -> SDEPaths:
    if dt <= 0.0:
        raise ConvergenceError("dt must be positive")
    if n_paths < 1:
        raise ConvergenceError("n_paths must be at least 1")
    if health is not None:
        health.check_step_size(dt, t_end, label="SDE integrator")

    initial = np.asarray(initial, dtype=float)
    dim = initial.shape[-1] if initial.ndim > 0 else 1
    states = np.broadcast_to(initial, (n_paths, dim)).astype(float).copy()

    n_steps = int(np.ceil(t_end / dt))

    # Preallocate the snapshot storage: the recording schedule is known up
    # front, so the per-record ``states.copy()`` appends become writes into
    # one contiguous array (same layout the delayed Langevin loop uses).
    n_records = n_steps // record_every
    if n_steps % record_every:
        n_records += 1
    times = np.empty(n_records + 1)
    snapshots = np.empty((n_records + 1, n_paths, dim))
    times[0] = 0.0
    snapshots[0] = states
    record_index = 1

    sqrt_dt = np.sqrt(dt)
    bump = 1e-7

    t = 0.0
    for step_index in range(1, n_steps + 1):
        noise = rng.standard_normal(states.shape) * sqrt_dt
        drift_term = drift(t, states)
        diffusion_term = diffusion(t, states)
        increment = drift_term * dt + diffusion_term * noise
        if milstein_correction:
            # Finite-difference estimate of d(diffusion)/dx for the Milstein
            # term 0.5 * b * b' * (dW^2 - dt), applied component-wise.
            bumped = diffusion(t, states + bump)
            derivative = (bumped - diffusion_term) / bump
            increment = increment + 0.5 * diffusion_term * derivative * (
                noise ** 2 - dt)
        states = states + increment
        if projection is not None:
            states = projection(states)
        t += dt
        if step_index % record_every == 0 or step_index == n_steps:
            if health is not None:
                bad = ~np.isfinite(states)
                if bad.any():

                    def _hold_last(states=states, bad=bad,
                                   previous=snapshots[record_index - 1]):
                        # Replace non-finite entries with the path's last
                        # recorded value (held constant); the path is
                        # flagged by the report rather than poisoning the
                        # whole ensemble's moments.
                        np.copyto(states, previous, where=bad)

                    health.check_finite_block(states, t,
                                              label="SDE path block",
                                              repair=_hold_last)
            times[record_index] = t
            snapshots[record_index] = states
            record_index += 1

    return SDEPaths(times[:record_index], snapshots[:record_index])


def euler_maruyama(drift: Drift, diffusion: Diffusion, initial: np.ndarray,
                   t_end: float, dt: float, n_paths: int,
                   rng: Optional[np.random.Generator] = None,
                   projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                   record_every: int = 1,
                   health: Optional["HealthMonitor"] = None) -> SDEPaths:
    """Simulate sample paths with the Euler-Maruyama scheme.

    Parameters
    ----------
    drift, diffusion:
        Vectorised callables mapping ``(t, states)`` with *states* of shape
        ``(n_paths, dim)`` to arrays of the same shape.
    initial:
        Initial state (shared by all particles) of shape ``(dim,)``.
    t_end, dt:
        Horizon and step size.
    n_paths:
        Number of Monte-Carlo particles.
    rng:
        Optional :class:`numpy.random.Generator` for reproducibility.
    projection:
        Optional constraint projection (e.g. clip the queue at zero).
    record_every:
        Record a snapshot every this many steps to bound memory use.
    health:
        Optional :class:`~repro.health.HealthMonitor`.  At every record
        point the path block is checked for finiteness: ``strict`` aborts
        typed, ``repair`` holds diverged paths at their last recorded
        value (counted), ``observe`` records the report only.  ``None``
        keeps the original unmonitored behaviour exactly.
    """
    rng = rng if rng is not None else np.random.default_rng()
    return _simulate(drift, diffusion, np.asarray(initial, dtype=float), t_end,
                     dt, n_paths, rng, projection, record_every,
                     milstein_correction=False, health=health)


def milstein(drift: Drift, diffusion: Diffusion, initial: np.ndarray,
             t_end: float, dt: float, n_paths: int,
             rng: Optional[np.random.Generator] = None,
             projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
             record_every: int = 1,
             health: Optional["HealthMonitor"] = None) -> SDEPaths:
    """Simulate sample paths with the Milstein scheme (adds the ``b b'`` term)."""
    rng = rng if rng is not None else np.random.default_rng()
    return _simulate(drift, diffusion, np.asarray(initial, dtype=float), t_end,
                     dt, n_paths, rng, projection, record_every,
                     milstein_correction=True, health=health)
