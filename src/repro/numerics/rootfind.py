"""Scalar root finding used by the equilibrium and share-formula analyses."""

from __future__ import annotations

from typing import Callable, Optional

from ..exceptions import ConvergenceError

__all__ = ["bisect", "newton"]


def bisect(func: Callable[[float], float], lower: float, upper: float,
           tolerance: float = 1e-12, max_iterations: int = 200) -> float:
    """Find a root of *func* in ``[lower, upper]`` by bisection.

    The end points must bracket a sign change.  Converges unconditionally to
    within *tolerance* of a root.
    """
    f_lower = func(lower)
    f_upper = func(upper)
    if f_lower == 0.0:
        return lower
    if f_upper == 0.0:
        return upper
    if f_lower * f_upper > 0.0:
        raise ConvergenceError(
            "bisection requires a sign change over the bracket "
            f"[{lower}, {upper}]")

    for _ in range(max_iterations):
        midpoint = 0.5 * (lower + upper)
        f_mid = func(midpoint)
        if f_mid == 0.0 or (upper - lower) < tolerance:
            return midpoint
        if f_lower * f_mid < 0.0:
            upper = midpoint
        else:
            lower, f_lower = midpoint, f_mid
    raise ConvergenceError("bisection did not converge",
                           iterations=max_iterations,
                           residual=upper - lower)


def newton(func: Callable[[float], float], x0: float,
           derivative: Optional[Callable[[float], float]] = None,
           tolerance: float = 1e-12, max_iterations: int = 100) -> float:
    """Newton's method with an optional analytic derivative.

    When *derivative* is omitted a central finite difference is used.  Falls
    back to halving the step whenever an iterate would leave the finite
    range or the derivative is numerically zero.
    """
    x = float(x0)
    step_scale = 1e-7
    for _ in range(max_iterations):
        fx = func(x)
        if abs(fx) < tolerance:
            return x
        if derivative is not None:
            dfx = derivative(x)
        else:
            h = step_scale * max(1.0, abs(x))
            dfx = (func(x + h) - func(x - h)) / (2.0 * h)
        if dfx == 0.0:
            raise ConvergenceError("Newton iteration hit a zero derivative",
                                   residual=abs(fx))
        x_next = x - fx / dfx
        if not (abs(x_next) < 1e300):
            raise ConvergenceError("Newton iteration diverged", residual=abs(fx))
        if abs(x_next - x) < tolerance * max(1.0, abs(x)):
            return x_next
        x = x_next
    raise ConvergenceError("Newton iteration did not converge",
                           iterations=max_iterations, residual=abs(func(x)))
