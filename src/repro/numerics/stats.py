"""Streaming and weighted statistics plus empirical density estimation.

The discrete-event simulator and the Monte-Carlo ensembles produce long
sample streams; :class:`RunningStatistics` (Welford's algorithm) accumulates
mean/variance without storing the samples, and :class:`WeightedStatistics`
does the same for time-weighted quantities such as the time-average queue
length.  :func:`empirical_density` bins samples onto a grid so they can be
compared directly with a Fokker-Planck marginal.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["RunningStatistics", "WeightedStatistics", "empirical_density"]


class RunningStatistics:
    """Streaming mean/variance accumulator using Welford's algorithm."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = float("inf")
        self._maximum = float("-inf")

    def update(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def update_many(self, values: np.ndarray) -> None:
        """Add a batch of samples."""
        for value in np.asarray(values, dtype=float).ravel():
            self.update(float(value))

    @property
    def count(self) -> int:
        """Number of samples seen so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def minimum(self) -> float:
        """Smallest sample seen (``inf`` when empty)."""
        return self._minimum

    @property
    def maximum(self) -> float:
        """Largest sample seen (``-inf`` when empty)."""
        return self._maximum


class WeightedStatistics:
    """Weighted mean/variance accumulator for time-averaged metrics.

    Each sample carries a non-negative weight; for a piecewise-constant
    signal the natural weight is the duration for which the value held,
    yielding the time-average and time-variance of the signal.
    """

    def __init__(self) -> None:
        self._weight_sum = 0.0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float, weight: float) -> None:
        """Add a sample *value* with the given non-negative *weight*."""
        weight = float(weight)
        if weight < 0.0:
            raise AnalysisError("weights must be non-negative")
        if weight == 0.0:
            return
        value = float(value)
        new_weight_sum = self._weight_sum + weight
        delta = value - self._mean
        ratio = weight / new_weight_sum
        self._mean += delta * ratio
        self._m2 += weight * delta * (value - self._mean)
        self._weight_sum = new_weight_sum

    @property
    def total_weight(self) -> float:
        """Sum of the weights seen so far."""
        return self._weight_sum

    @property
    def mean(self) -> float:
        """Weighted mean (0.0 when no weight has been accumulated)."""
        return self._mean if self._weight_sum > 0.0 else 0.0

    @property
    def variance(self) -> float:
        """Weighted (population) variance."""
        if self._weight_sum <= 0.0:
            return 0.0
        return self._m2 / self._weight_sum

    @property
    def std(self) -> float:
        """Weighted standard deviation."""
        return float(np.sqrt(self.variance))


def empirical_density(samples: np.ndarray, edges: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram *samples* into bins given by *edges* and normalise to a density.

    Returns ``(centers, density)`` where ``density`` integrates to one over
    the binned range (samples falling outside the edges are ignored).
    """
    samples = np.asarray(samples, dtype=float)
    edges = np.asarray(edges, dtype=float)
    if edges.size < 2:
        raise AnalysisError("need at least two bin edges")
    counts, _ = np.histogram(samples, bins=edges)
    widths = np.diff(edges)
    total = float(np.sum(counts))
    if total == 0.0:
        raise AnalysisError("no samples fell inside the histogram range")
    density = counts / (total * widths)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density
