"""Pluggable kernel backends for the numerical hot paths.

The Fokker-Planck solver spends nearly all of its time in a small set of
kernels (tridiagonal solves for the Crank-Nicolson diffusion step above
all).  This module provides a tiny registry so those kernels can be swapped
without touching the physics code:

* the ``"numpy"`` backend is the pure-numpy reference implementation
  (:class:`repro.numerics.tridiag.TridiagonalFactorization`) and is always
  available;
* the ``"scipy"`` backend uses LAPACK's tridiagonal factorization
  (``dgttrf`` / ``dgttrs`` via :mod:`scipy.linalg`) when scipy is
  importable, falling back to ``scipy.linalg.solve_banded`` if the low-level
  wrappers are missing.

Besides the tridiagonal kernels, every backend supplies a *sparse-operator*
kernel family used by the 2-D ADI stepper and the direct stationary solves:

* :meth:`NumericsBackend.factorize_sparse` turns a COO matrix into a
  reusable factorization with a ``solve(rhs, out=None)`` method.  The scipy
  backend routes through ``scipy.sparse.linalg.splu`` (any sparsity
  pattern); the numpy backend stays self-contained with a pure-numpy banded
  path -- tridiagonal patterns run on the Thomas kernels (vectorized across
  independent blocks when the caller supplies ``block_size``), and small
  general patterns fall back to a dense solve.
* :meth:`NumericsBackend.stationary_null_vector` solves ``M p = 0`` for the
  mass-normalised stationary density (dense row replacement on numpy,
  ``splu`` shifted inverse iteration on scipy).

Both backends must agree to tight tolerances; the parity is enforced by the
unit tests.  Backend selection order:

1. an explicit name passed to :func:`get_backend`,
2. the :data:`BACKEND_ENV_VAR` environment variable (``REPRO_BACKEND``),
3. the default, ``"numpy"``.

The special name ``"auto"`` resolves to ``"scipy"`` when scipy is
available and ``"numpy"`` otherwise.  :class:`repro.config.SystemParameters`
carries an optional ``backend`` field that the solvers feed into
:func:`get_backend`, so a backend can also be pinned per experiment (and
therefore participates in the runner's content-addressed job hashes).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError, ConvergenceError
from .tridiag import BatchedTridiagonalFactorization, TridiagonalFactorization

__all__ = [
    "BACKEND_ENV_VAR",
    "NumericsBackend",
    "NumpyBackend",
    "ScipyBackend",
    "available_backends",
    "get_backend",
    "is_known_backend",
    "register_backend",
    "scipy_available",
]

#: Environment variable consulted when no explicit backend name is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def scipy_available() -> bool:
    """Return ``True`` when :mod:`scipy.linalg` is importable."""
    try:
        import scipy.linalg  # noqa: F401
    except ImportError:
        return False
    return True


def _coo_matvec(rows: np.ndarray, cols: np.ndarray, values: np.ndarray,
                n: int, vector: np.ndarray) -> np.ndarray:
    """``M @ vector`` for a COO matrix, without scipy."""
    return np.bincount(rows, weights=values * vector[cols], minlength=n)


def _normalize_null_vector(vector: np.ndarray, weights: np.ndarray
                           ) -> np.ndarray:
    """Orient, clamp and mass-normalise a raw null-vector iterate.

    A stationary density is non-negative with unit mass ``weights · p = 1``;
    the raw algebraic null vector is defined only up to scale and may carry
    rounding-level negative cells.  The clamp removes those before the final
    normalisation.
    """
    total = float(weights @ vector)
    if total < 0.0:
        vector = -vector
        total = -total
    vector = np.maximum(vector, 0.0)
    total = float(weights @ vector)
    if not total > 0.0:
        raise ConvergenceError(
            "null-vector solve produced a non-positive density")
    return vector / total


class NumericsBackend:
    """Base class for kernel backends.

    A backend supplies factorized tridiagonal solvers, reusable sparse
    factorizations and a sparse stationary null-vector solve; everything
    else in the PDE pipeline is backend-independent numpy.  Subclasses must
    set :attr:`name` and implement :meth:`factorize_tridiagonal`; the
    sparse-operator kernels are optional (the ADI stepper and the design
    subsystem check for them).
    """

    #: Registry name of the backend.
    name: str = ""

    def is_available(self) -> bool:
        """Whether the backend can run in this environment."""
        return True

    def factorize_tridiagonal(self, lower: np.ndarray, diag: np.ndarray,
                              upper: np.ndarray):
        """Return an object with ``solve(rhs, out=None)`` for this matrix."""
        raise NotImplementedError

    def solve_tridiagonal(self, lower: np.ndarray, diag: np.ndarray,
                          upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """One-shot tridiagonal solve (factorize then solve)."""
        return self.factorize_tridiagonal(lower, diag, upper).solve(rhs)

    def factorize_sparse(self, rows: np.ndarray, cols: np.ndarray,
                         values: np.ndarray, n: int,
                         block_size: Optional[int] = None):
        """Factorize a COO matrix into an object with ``solve(rhs, out=None)``.

        The returned factorization is reusable: callers cache it keyed by
        the operator identity (the ADI stepper keys its cache per time step,
        like the PR 2 Crank-Nicolson operator cache) and call ``solve``
        against length-``n`` vectors every substep.

        Parameters
        ----------
        rows, cols, values, n:
            The matrix in COO triplet form (duplicate entries sum).
        block_size:
            Structure hint: when given, the matrix is expected to decouple
            into ``n // block_size`` independent tridiagonal blocks of that
            size (the shape of the ADI half-step operators in their
            direction-contiguous orderings).  Backends with a general sparse
            factorization may ignore it; the pure-numpy fallback uses it to
            run all blocks through one vectorized batched Thomas solve.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not implement sparse factorizations")

    def stationary_null_vector(self, rows: np.ndarray, cols: np.ndarray,
                               values: np.ndarray, n: int,
                               guess: Optional[np.ndarray] = None,
                               weights: Optional[np.ndarray] = None,
                               tol: float = 1e-9,
                               max_iterations: int = 50):
        """Solve ``M p = 0`` for the mass-normalised stationary vector.

        Parameters
        ----------
        rows, cols, values, n:
            The matrix in COO triplet form.  The operators assembled by
            :func:`repro.core.generator.assemble_generator` have (near-)
            dependent rows -- probability conservation makes the column
            sums vanish wherever the density lives -- so the null space is
            one-dimensional up to boundary outflow at rounding level.
        guess:
            Optional seed vector (a coarse steady-state estimate); used to
            pick the pivot row of the dense reference solve and to start
            the sparse inverse iteration.
        weights:
            Quadrature weights defining the mass normalisation
            ``weights · p = 1`` (defaults to uniform).
        tol:
            Relative residual target ``max|M p| / (max|M| · max|p|)``.
        max_iterations:
            Iteration cap for iterative methods.

        Returns
        -------
        (p, info):
            The non-negative, mass-normalised stationary vector and a
            dictionary with ``residual``, ``iterations`` and ``method``.

        Raises
        ------
        ConvergenceError
            When the residual target cannot be met.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not implement a stationary "
            f"null-vector solve")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


#: Largest dimension for which the numpy backend falls back to a dense
#: factorization when a sparse pattern is not tridiagonal.  The dense
#: fallback inverts the matrix once (O(n³)), so it is only meant for small
#: operators; every pattern the ADI stepper produces is tridiagonal in its
#: direction-contiguous ordering and never hits this path.
DENSE_SPARSE_LIMIT = 2048

#: Largest dimension for which the numpy backend runs its dense
#: row-replacement stationary null solve (n² floats of memory, O(n³) work;
#: 20000² doubles is ~3.2 GB).  Larger stationary problems need the scipy
#: backend's sparse inverse iteration.
DENSE_NULL_LIMIT = 20000


def _coo_tridiagonal_bands(rows: np.ndarray, cols: np.ndarray,
                           values: np.ndarray, n: int):
    """``(lower, diag, upper)`` when all entries sit on offsets −1/0/+1.

    Returns ``None`` for any other sparsity pattern.  Duplicate COO entries
    sum, matching the dense materialisation semantics of
    :class:`repro.core.generator.SparseOperator`.
    """
    offsets = cols - rows
    if offsets.size and (int(offsets.min()) < -1 or int(offsets.max()) > 1):
        return None
    lower = np.zeros(n)
    diag = np.zeros(n)
    upper = np.zeros(n)
    for offset, band in ((-1, lower), (0, diag), (1, upper)):
        mask = offsets == offset
        np.add.at(band, rows[mask], values[mask])
    return lower, diag, upper


class _FlatTridiagonalFactorization:
    """Length-``n`` vector interface over one Thomas factorization."""

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        self._factorization = TridiagonalFactorization(lower, diag, upper)
        self.n = int(np.asarray(diag).shape[0])

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        return self._factorization.solve(rhs, out=out)


class _BlockTridiagonalFactorization:
    """Vectorized solve of a tridiagonal matrix made of independent blocks.

    The ADI half-step operators are tridiagonal in their direction-contiguous
    orderings *and* their off-diagonals vanish at every block boundary (no
    physical coupling crosses a grid line of the other axis), so the flat
    system splits into ``n // block_size`` independent systems solved as one
    batched Thomas sweep -- the pure-numpy banded fallback that keeps the
    numpy backend self-contained at production grid sizes.
    """

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray, block_size: int):
        n = diag.shape[0]
        blocks = n // block_size
        self._batched = BatchedTridiagonalFactorization(
            lower.reshape(blocks, block_size),
            diag.reshape(blocks, block_size),
            upper.reshape(blocks, block_size))
        self.n = n
        self._blocks = blocks
        self._block_size = block_size

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.n,):
            raise ValueError(f"rhs must have shape ({self.n},), got {rhs.shape}")
        if out is None:
            out = np.empty(self.n)
        stacked = out.reshape(self._blocks, self._block_size)
        if stacked.base is None:
            raise ValueError("out must be a contiguous length-n vector")
        self._batched.solve(rhs.reshape(self._blocks, self._block_size),
                            out=stacked)
        return out


class _DenseFallbackFactorization:
    """Dense inverse for small non-banded patterns (numpy fallback)."""

    def __init__(self, rows: np.ndarray, cols: np.ndarray,
                 values: np.ndarray, n: int):
        dense = np.zeros((n, n))
        np.add.at(dense, (rows, cols), values)
        try:
            self._inverse = np.linalg.inv(dense)
        except np.linalg.LinAlgError as error:
            raise ConvergenceError(
                f"dense sparse-fallback factorization failed: {error}"
            ) from error
        self.n = n

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.n,):
            raise ValueError(f"rhs must have shape ({self.n},), got {rhs.shape}")
        if out is None:
            return self._inverse @ rhs
        np.matmul(self._inverse, rhs, out=out)
        return out


class NumpyBackend(NumericsBackend):
    """Reference backend: pure-numpy Thomas algorithm and dense null solve."""

    name = "numpy"

    def factorize_tridiagonal(self, lower, diag, upper):
        return TridiagonalFactorization(lower, diag, upper)

    def factorize_sparse(self, rows, cols, values, n, block_size=None):
        """Pure-numpy banded fallback of the sparse kernel family.

        Tridiagonal patterns run on the Thomas kernels -- vectorized across
        independent blocks when *block_size* is given and the off-diagonals
        really do vanish at every block boundary (the structure of both ADI
        half-step operators).  Small general patterns fall back to a dense
        inverse; larger ones need the scipy backend.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        values = np.asarray(values, dtype=float)
        bands = _coo_tridiagonal_bands(rows, cols, values, n)
        if bands is not None:
            lower, diag, upper = bands
            if (block_size and n % block_size == 0 and n > block_size
                    and not np.any(lower[block_size::block_size])
                    and not np.any(upper[block_size - 1::block_size])):
                return _BlockTridiagonalFactorization(lower, diag, upper,
                                                      int(block_size))
            return _FlatTridiagonalFactorization(lower, diag, upper)
        if n <= DENSE_SPARSE_LIMIT:
            return _DenseFallbackFactorization(rows, cols, values, n)
        raise ConfigurationError(
            f"the numpy backend only factorizes banded sparse operators "
            f"above n={DENSE_SPARSE_LIMIT} (got a non-tridiagonal pattern "
            f"with n={n}); select the 'scipy' backend for general sparse "
            f"solves")

    def stationary_null_vector(self, rows, cols, values, n,
                               guess=None, weights=None,
                               tol=1e-9, max_iterations=50):
        """Dense reference null-space solve by row replacement.

        The matrix rows are linearly dependent (mass conservation), so one
        row -- the one where the seed density is largest, i.e. well inside
        the support -- is replaced by the mass-normalisation row and the
        system solved directly.  One step of iterative refinement sharpens
        the result; intended for moderate grids (the dense LU is O(n³)).
        """
        if n > DENSE_NULL_LIMIT:
            raise ConfigurationError(
                f"the numpy backend's dense stationary solve needs an "
                f"n x n matrix (n={n} exceeds the {DENSE_NULL_LIMIT} "
                f"limit); select the 'scipy' backend, whose sparse "
                f"inverse iteration scales to large grids")
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        values = np.asarray(values, dtype=float)
        weights = (np.ones(n) if weights is None
                   else np.asarray(weights, dtype=float))
        pivot = 0 if guess is None else int(np.argmax(np.asarray(guess)))

        dense = np.zeros((n, n))
        np.add.at(dense, (rows, cols), values)
        scale = float(np.max(np.abs(values))) if values.size else 1.0
        replaced = dense.copy()
        replaced[pivot, :] = weights
        rhs = np.zeros(n)
        rhs[pivot] = 1.0
        try:
            solution = np.linalg.solve(replaced, rhs)
            # One iterative-refinement pass against the replaced system.
            residual_vector = rhs - replaced @ solution
            solution = solution + np.linalg.solve(replaced, residual_vector)
        except np.linalg.LinAlgError as error:
            raise ConvergenceError(
                f"dense stationary solve failed: {error}") from error

        solution = _normalize_null_vector(solution, weights)
        residual = float(np.max(np.abs(_coo_matvec(rows, cols, values, n,
                                                   solution))))
        relative = residual / (scale * float(np.max(np.abs(solution))))
        if relative > tol:
            raise ConvergenceError(
                f"dense stationary solve residual {relative:.3e} exceeds "
                f"tol {tol:.3e}", iterations=1, residual=relative)
        return solution, {"residual": relative, "iterations": 1,
                          "method": "dense-row-replacement"}


class _ScipyGttrfFactorization:
    """LAPACK ``dgttrf`` factorization with a ``dgttrs`` solve."""

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        from scipy.linalg import lapack

        lower = np.ascontiguousarray(lower, dtype=float)
        diag = np.ascontiguousarray(diag, dtype=float)
        upper = np.ascontiguousarray(upper, dtype=float)
        n = diag.shape[0]
        if lower.shape[0] != n or upper.shape[0] != n:
            raise ValueError("lower, diag and upper must all have the same length")

        gttrf, gttrs = lapack.get_lapack_funcs(("gttrf", "gttrs"), (diag,))
        dl, d, du, du2, ipiv, info = gttrf(lower[1:], diag, upper[:-1])
        if info != 0:
            raise ConvergenceError(
                f"LAPACK gttrf failed to factorize the tridiagonal matrix "
                f"(info={info})")
        self.n = n
        self._gttrs = gttrs
        self._bands = (dl, d, du, du2, ipiv)

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.n:
            raise ValueError("rhs first dimension must match the matrix size")
        dl, d, du, du2, ipiv = self._bands
        one_dimensional = rhs.ndim == 1
        b = rhs.reshape(self.n, -1)
        x, info = self._gttrs(dl, d, du, du2, ipiv, b)
        if info != 0:
            raise ConvergenceError(
                f"LAPACK gttrs failed to solve the tridiagonal system "
                f"(info={info})")
        x = x.reshape(rhs.shape) if not one_dimensional else x[:, 0]
        if out is not None:
            np.copyto(out, x)
            return out
        return np.ascontiguousarray(x)


class _ScipyBandedFactorization:
    """Fallback scipy path built on ``scipy.linalg.solve_banded``.

    No reusable LAPACK factorization is exposed here, but the pre-assembled
    band matrix is cached so repeated solves still skip the setup cost.
    """

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        lower = np.asarray(lower, dtype=float)
        diag = np.asarray(diag, dtype=float)
        upper = np.asarray(upper, dtype=float)
        n = diag.shape[0]
        if lower.shape[0] != n or upper.shape[0] != n:
            raise ValueError("lower, diag and upper must all have the same length")
        ab = np.zeros((3, n))
        ab[0, 1:] = upper[:-1]
        ab[1, :] = diag
        ab[2, :-1] = lower[1:]
        self.n = n
        self._ab = ab

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        from scipy.linalg import solve_banded

        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.n:
            raise ValueError("rhs first dimension must match the matrix size")
        try:
            x = solve_banded((1, 1), self._ab, rhs, check_finite=False)
        except np.linalg.LinAlgError as error:
            raise ConvergenceError(
                f"banded tridiagonal solve failed: {error}") from error
        if out is not None:
            np.copyto(out, x)
            return out
        return x


class _SpluSparseFactorization:
    """SuperLU factorization of a general COO matrix (scipy backend)."""

    def __init__(self, rows: np.ndarray, cols: np.ndarray,
                 values: np.ndarray, n: int):
        from scipy.sparse import csc_matrix
        from scipy.sparse.linalg import splu

        matrix = csc_matrix(
            (np.asarray(values, dtype=float),
             (np.asarray(rows, dtype=np.intp),
              np.asarray(cols, dtype=np.intp))),
            shape=(n, n))
        try:
            self._factor = splu(matrix.tocsc())
        except RuntimeError as error:
            raise ConvergenceError(
                f"sparse LU factorization failed: {error}") from error
        self.n = n

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.n,):
            raise ValueError(f"rhs must have shape ({self.n},), got {rhs.shape}")
        x = self._factor.solve(rhs)
        if out is not None:
            np.copyto(out, x)
            return out
        return x


class ScipyBackend(NumericsBackend):
    """LAPACK-accelerated backend (requires scipy)."""

    name = "scipy"

    def __init__(self):
        self._use_gttrf: Optional[bool] = None

    def is_available(self) -> bool:
        return scipy_available()

    def stationary_null_vector(self, rows, cols, values, n,
                               guess=None, weights=None,
                               tol=1e-9, max_iterations=50):
        """Sparse shifted-inverse-iteration null solve via ``splu``.

        The matrix is factorized once with a tiny diagonal shift (so the LU
        of the numerically singular operator stays well-posed) and the seed
        vector is driven into the null space by repeated solves; each
        iteration multiplies the unwanted spectral components by
        ``shift / |λ|``, so convergence is typically 2-3 iterations.  Falls
        back to a row-replacement ``spsolve`` when the iteration stalls.
        """
        if not self.is_available():  # pragma: no cover - env dependent
            raise ConfigurationError(
                "the 'scipy' backend was requested but scipy is not installed")
        from scipy.sparse import csc_matrix, identity
        from scipy.sparse.linalg import splu, spsolve

        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        values = np.asarray(values, dtype=float)
        weights = (np.ones(n) if weights is None
                   else np.asarray(weights, dtype=float))
        matrix = csc_matrix((values, (rows, cols)), shape=(n, n))
        scale = float(np.max(np.abs(values))) if values.size else 1.0

        if guess is None:
            vector = np.ones(n)
        else:
            vector = np.asarray(guess, dtype=float).ravel().copy()
            if float(np.max(np.abs(vector))) == 0.0:
                vector = np.ones(n)

        shift = 1e-12 * scale
        iterations = 0
        best = None
        best_residual = np.inf
        try:
            factor = splu(matrix - shift * identity(n, format="csc"))
            for iterations in range(1, max_iterations + 1):
                vector = factor.solve(vector)
                peak = float(np.max(np.abs(vector)))
                if not np.isfinite(peak) or peak == 0.0:
                    break
                vector /= peak
                relative = float(np.max(np.abs(matrix @ vector))) / scale
                if relative < best_residual:
                    best_residual = relative
                    best = vector.copy()
                if relative <= tol:
                    break
        except RuntimeError:
            # Exactly singular factorization: fall through to row replacement.
            best = None

        if best is not None and best_residual <= tol:
            solution = _normalize_null_vector(best, weights)
            return solution, {"residual": best_residual,
                              "iterations": iterations,
                              "method": "sparse-inverse-iteration"}

        # Fallback: replace the pivot row by the mass row and solve directly.
        pivot = 0 if guess is None else int(np.argmax(np.asarray(guess)))
        lil = matrix.tolil()
        lil[pivot, :] = weights
        rhs = np.zeros(n)
        rhs[pivot] = 1.0
        solution = spsolve(lil.tocsc(), rhs)
        solution = _normalize_null_vector(np.asarray(solution), weights)
        relative = (float(np.max(np.abs(matrix @ solution)))
                    / (scale * float(np.max(np.abs(solution)))))
        if relative > tol:
            raise ConvergenceError(
                f"sparse stationary solve residual {relative:.3e} exceeds "
                f"tol {tol:.3e}", iterations=iterations, residual=relative)
        return solution, {"residual": relative,
                          "iterations": iterations,
                          "method": "sparse-row-replacement"}

    def factorize_sparse(self, rows, cols, values, n, block_size=None):
        """General sparse LU via ``scipy.sparse.linalg.splu``.

        Handles any sparsity pattern; *block_size* is accepted for interface
        parity but not needed (SuperLU's fill-reducing ordering exploits the
        block structure on its own).
        """
        if not self.is_available():  # pragma: no cover - env dependent
            raise ConfigurationError(
                "the 'scipy' backend was requested but scipy is not installed")
        return _SpluSparseFactorization(rows, cols, values, n)

    def factorize_tridiagonal(self, lower, diag, upper):
        if not self.is_available():  # pragma: no cover - env dependent
            raise ConfigurationError(
                "the 'scipy' backend was requested but scipy is not installed")
        # LAPACK's gttrf wrapper rejects systems smaller than 3 rows; route
        # those through the banded solver, which handles any size.
        if np.asarray(diag).shape[0] < 3:
            return _ScipyBandedFactorization(lower, diag, upper)
        if self._use_gttrf is None:
            try:
                from scipy.linalg import lapack
                lapack.get_lapack_funcs(("gttrf", "gttrs"),
                                        (np.zeros(2, dtype=float),))
                self._use_gttrf = True
            except Exception:  # pragma: no cover - very old scipy
                self._use_gttrf = False
        if self._use_gttrf:
            return _ScipyGttrfFactorization(lower, diag, upper)
        return _ScipyBandedFactorization(lower, diag, upper)  # pragma: no cover


_REGISTRY: Dict[str, Callable[[], NumericsBackend]] = {}
_INSTANCES: Dict[str, NumericsBackend] = {}


def register_backend(name: str,
                     factory: Callable[[], NumericsBackend]) -> None:
    """Register a backend *factory* under *name* (overwrites silently)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


register_backend(NumpyBackend.name, NumpyBackend)
register_backend(ScipyBackend.name, ScipyBackend)


def available_backends() -> list:
    """Names of the registered backends usable in this environment."""
    names = []
    for name in sorted(_REGISTRY):
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _REGISTRY[name]()
        if instance.is_available():
            _INSTANCES[name] = instance
            names.append(name)
    return names


def is_known_backend(name: str) -> bool:
    """Whether *name* is resolvable by :func:`get_backend` (``""`` = auto)."""
    return name in ("", "auto") or name in _REGISTRY


def get_backend(name: Optional[str] = None) -> NumericsBackend:
    """Resolve and return a :class:`NumericsBackend` instance.

    Resolution order: explicit *name* -> the :data:`BACKEND_ENV_VAR`
    environment variable -> ``"numpy"``.  ``"auto"`` (or an empty string)
    picks ``"scipy"`` when available, ``"numpy"`` otherwise.

    Raises
    ------
    ConfigurationError
        For unknown backend names, or when the requested backend cannot run
        in this environment.
    """
    source = "explicit"
    if not name:
        env_name = os.environ.get(BACKEND_ENV_VAR, "")
        if env_name:
            name = env_name
            source = f"the {BACKEND_ENV_VAR} environment variable"
        else:
            name = "numpy"
    if name == "auto":
        name = ScipyBackend.name if scipy_available() else NumpyBackend.name
    factory = _REGISTRY.get(name)
    if factory is None:
        origin = "" if source == "explicit" else f" (from {source})"
        raise ConfigurationError(
            f"unknown numerics backend {name!r}{origin}; available backends "
            f"in this environment: {available_backends()} (plus 'auto')")
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    if not instance.is_available():
        raise ConfigurationError(
            f"numerics backend {name!r} is not available in this environment")
    return instance
