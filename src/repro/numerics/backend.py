"""Pluggable kernel backends for the numerical hot paths.

The Fokker-Planck solver spends nearly all of its time in a small set of
kernels (tridiagonal solves for the Crank-Nicolson diffusion step above
all).  This module provides a tiny registry so those kernels can be swapped
without touching the physics code:

* the ``"numpy"`` backend is the pure-numpy reference implementation
  (:class:`repro.numerics.tridiag.TridiagonalFactorization`) and is always
  available;
* the ``"scipy"`` backend uses LAPACK's tridiagonal factorization
  (``dgttrf`` / ``dgttrs`` via :mod:`scipy.linalg`) when scipy is
  importable, falling back to ``scipy.linalg.solve_banded`` if the low-level
  wrappers are missing.

Both backends must agree to tight tolerances; the parity is enforced by the
unit tests.  Backend selection order:

1. an explicit name passed to :func:`get_backend`,
2. the :data:`BACKEND_ENV_VAR` environment variable (``REPRO_BACKEND``),
3. the default, ``"numpy"``.

The special name ``"auto"`` resolves to ``"scipy"`` when scipy is
available and ``"numpy"`` otherwise.  :class:`repro.config.SystemParameters`
carries an optional ``backend`` field that the solvers feed into
:func:`get_backend`, so a backend can also be pinned per experiment (and
therefore participates in the runner's content-addressed job hashes).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError, ConvergenceError
from .tridiag import TridiagonalFactorization

__all__ = [
    "BACKEND_ENV_VAR",
    "NumericsBackend",
    "NumpyBackend",
    "ScipyBackend",
    "available_backends",
    "get_backend",
    "is_known_backend",
    "register_backend",
    "scipy_available",
]

#: Environment variable consulted when no explicit backend name is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def scipy_available() -> bool:
    """Return ``True`` when :mod:`scipy.linalg` is importable."""
    try:
        import scipy.linalg  # noqa: F401
    except ImportError:
        return False
    return True


class NumericsBackend:
    """Base class for kernel backends.

    A backend supplies factorized tridiagonal solvers; everything else in
    the PDE pipeline is backend-independent numpy.  Subclasses must set
    :attr:`name` and implement :meth:`factorize_tridiagonal`.
    """

    #: Registry name of the backend.
    name: str = ""

    def is_available(self) -> bool:
        """Whether the backend can run in this environment."""
        return True

    def factorize_tridiagonal(self, lower: np.ndarray, diag: np.ndarray,
                              upper: np.ndarray):
        """Return an object with ``solve(rhs, out=None)`` for this matrix."""
        raise NotImplementedError

    def solve_tridiagonal(self, lower: np.ndarray, diag: np.ndarray,
                          upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """One-shot tridiagonal solve (factorize then solve)."""
        return self.factorize_tridiagonal(lower, diag, upper).solve(rhs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class NumpyBackend(NumericsBackend):
    """Reference backend: pure-numpy Thomas algorithm."""

    name = "numpy"

    def factorize_tridiagonal(self, lower, diag, upper):
        return TridiagonalFactorization(lower, diag, upper)


class _ScipyGttrfFactorization:
    """LAPACK ``dgttrf`` factorization with a ``dgttrs`` solve."""

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        from scipy.linalg import lapack

        lower = np.ascontiguousarray(lower, dtype=float)
        diag = np.ascontiguousarray(diag, dtype=float)
        upper = np.ascontiguousarray(upper, dtype=float)
        n = diag.shape[0]
        if lower.shape[0] != n or upper.shape[0] != n:
            raise ValueError("lower, diag and upper must all have the same length")

        gttrf, gttrs = lapack.get_lapack_funcs(("gttrf", "gttrs"), (diag,))
        dl, d, du, du2, ipiv, info = gttrf(lower[1:], diag, upper[:-1])
        if info != 0:
            raise ConvergenceError(
                f"LAPACK gttrf failed to factorize the tridiagonal matrix "
                f"(info={info})")
        self.n = n
        self._gttrs = gttrs
        self._bands = (dl, d, du, du2, ipiv)

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.n:
            raise ValueError("rhs first dimension must match the matrix size")
        dl, d, du, du2, ipiv = self._bands
        one_dimensional = rhs.ndim == 1
        b = rhs.reshape(self.n, -1)
        x, info = self._gttrs(dl, d, du, du2, ipiv, b)
        if info != 0:
            raise ConvergenceError(
                f"LAPACK gttrs failed to solve the tridiagonal system "
                f"(info={info})")
        x = x.reshape(rhs.shape) if not one_dimensional else x[:, 0]
        if out is not None:
            np.copyto(out, x)
            return out
        return np.ascontiguousarray(x)


class _ScipyBandedFactorization:
    """Fallback scipy path built on ``scipy.linalg.solve_banded``.

    No reusable LAPACK factorization is exposed here, but the pre-assembled
    band matrix is cached so repeated solves still skip the setup cost.
    """

    def __init__(self, lower: np.ndarray, diag: np.ndarray,
                 upper: np.ndarray):
        lower = np.asarray(lower, dtype=float)
        diag = np.asarray(diag, dtype=float)
        upper = np.asarray(upper, dtype=float)
        n = diag.shape[0]
        if lower.shape[0] != n or upper.shape[0] != n:
            raise ValueError("lower, diag and upper must all have the same length")
        ab = np.zeros((3, n))
        ab[0, 1:] = upper[:-1]
        ab[1, :] = diag
        ab[2, :-1] = lower[1:]
        self.n = n
        self._ab = ab

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None
              ) -> np.ndarray:
        from scipy.linalg import solve_banded

        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.n:
            raise ValueError("rhs first dimension must match the matrix size")
        try:
            x = solve_banded((1, 1), self._ab, rhs, check_finite=False)
        except np.linalg.LinAlgError as error:
            raise ConvergenceError(
                f"banded tridiagonal solve failed: {error}") from error
        if out is not None:
            np.copyto(out, x)
            return out
        return x


class ScipyBackend(NumericsBackend):
    """LAPACK-accelerated backend (requires scipy)."""

    name = "scipy"

    def __init__(self):
        self._use_gttrf: Optional[bool] = None

    def is_available(self) -> bool:
        return scipy_available()

    def factorize_tridiagonal(self, lower, diag, upper):
        if not self.is_available():  # pragma: no cover - env dependent
            raise ConfigurationError(
                "the 'scipy' backend was requested but scipy is not installed")
        # LAPACK's gttrf wrapper rejects systems smaller than 3 rows; route
        # those through the banded solver, which handles any size.
        if np.asarray(diag).shape[0] < 3:
            return _ScipyBandedFactorization(lower, diag, upper)
        if self._use_gttrf is None:
            try:
                from scipy.linalg import lapack
                lapack.get_lapack_funcs(("gttrf", "gttrs"),
                                        (np.zeros(2, dtype=float),))
                self._use_gttrf = True
            except Exception:  # pragma: no cover - very old scipy
                self._use_gttrf = False
        if self._use_gttrf:
            return _ScipyGttrfFactorization(lower, diag, upper)
        return _ScipyBandedFactorization(lower, diag, upper)  # pragma: no cover


_REGISTRY: Dict[str, Callable[[], NumericsBackend]] = {}
_INSTANCES: Dict[str, NumericsBackend] = {}


def register_backend(name: str,
                     factory: Callable[[], NumericsBackend]) -> None:
    """Register a backend *factory* under *name* (overwrites silently)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


register_backend(NumpyBackend.name, NumpyBackend)
register_backend(ScipyBackend.name, ScipyBackend)


def available_backends() -> list:
    """Names of the registered backends usable in this environment."""
    names = []
    for name in sorted(_REGISTRY):
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _REGISTRY[name]()
        if instance.is_available():
            _INSTANCES[name] = instance
            names.append(name)
    return names


def is_known_backend(name: str) -> bool:
    """Whether *name* is resolvable by :func:`get_backend` (``""`` = auto)."""
    return name in ("", "auto") or name in _REGISTRY


def get_backend(name: Optional[str] = None) -> NumericsBackend:
    """Resolve and return a :class:`NumericsBackend` instance.

    Resolution order: explicit *name* -> the :data:`BACKEND_ENV_VAR`
    environment variable -> ``"numpy"``.  ``"auto"`` (or an empty string)
    picks ``"scipy"`` when available, ``"numpy"`` otherwise.

    Raises
    ------
    ConfigurationError
        For unknown backend names, or when the requested backend cannot run
        in this environment.
    """
    if not name:
        name = os.environ.get(BACKEND_ENV_VAR, "") or "numpy"
    if name == "auto":
        name = ScipyBackend.name if scipy_available() else NumpyBackend.name
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown numerics backend {name!r}; registered backends: "
            f"{sorted(_REGISTRY)}")
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    if not instance.is_available():
        raise ConfigurationError(
            f"numerics backend {name!r} is not available in this environment")
    return instance
