"""Langevin / Monte-Carlo validation of the Fokker-Planck model.

The density governed by Equation 14 is exactly the ensemble density of
particles following the Langevin system

    dQ = ν dt + σ dW,        dν = g(Q, λ) dt,

with the reflecting behaviour at ``Q = 0``.  Simulating a large ensemble of
such particles therefore provides an independent, discretisation-free check
of the PDE solver: means, variances and full marginal densities must agree
within Monte-Carlo error.  The ensemble runner also supports per-particle
feedback delay, giving a reference solution for the delayed-FP
approximation.
"""

from .langevin import LangevinModel
from .ensemble import (
    EnsembleResult,
    compare_with_density,
    run_ensemble,
    shard_sizes,
)

__all__ = [
    "LangevinModel",
    "EnsembleResult",
    "run_ensemble",
    "shard_sizes",
    "compare_with_density",
]
