"""The Langevin (pathwise) analogue of the controlled-queue Fokker-Planck model."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..numerics.sde import SDEPaths, euler_maruyama

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..health import HealthMonitor

__all__ = ["LangevinModel"]


class LangevinModel:
    """Particle dynamics whose ensemble density obeys Equation 14.

    Each particle carries a state ``(Q, λ)``.  The queue coordinate receives
    the diffusion (σ dW) and drifts with ``λ − μ``; the rate coordinate
    follows the deterministic control law evaluated on the particle's own
    queue (or on its *delayed* queue when ``feedback_delay > 0``, in which
    case a per-particle history ring buffer supplies ``Q(t − τ)``).

    Parameters
    ----------
    control:
        Rate-control law.
    params:
        System parameters; ``sigma`` sets the diffusion strength.
    feedback_delay:
        Optional feedback delay applied per particle.
    """

    def __init__(self, control: RateControl, params: SystemParameters,
                 feedback_delay: float = 0.0):
        if feedback_delay < 0.0:
            raise ValueError("feedback_delay must be non-negative")
        self.control = control
        self.params = params
        self.feedback_delay = float(feedback_delay)

    def simulate(self, q0: float, rate0: float, t_end: float, dt: float,
                 n_paths: int, rng: Optional[np.random.Generator] = None,
                 health: Optional["HealthMonitor"] = None) -> SDEPaths:
        """Simulate *n_paths* particles from the common start ``(q0, rate0)``.

        Without delay the simulation delegates to the generic Euler-Maruyama
        integrator; with delay a dedicated loop maintains a circular history
        of queue positions per particle.  An optional *health* monitor
        checks the recorded path blocks for finiteness (``repair`` holds
        diverged paths at their last recorded value); ``None`` keeps the
        unmonitored behaviour exactly.
        """
        rng = rng if rng is not None else np.random.default_rng(20210214)
        mu = self.params.mu
        sigma = self.params.sigma

        if self.feedback_delay == 0.0:
            def drift(_t: float, states: np.ndarray) -> np.ndarray:
                q = states[:, 0]
                lam = states[:, 1]
                dq = lam - mu
                dq = np.where((q <= 0.0) & (dq < 0.0), 0.0, dq)
                dlam = np.asarray(self.control.drift(q, lam), dtype=float)
                return np.column_stack([dq, dlam])

            def diffusion(_t: float, states: np.ndarray) -> np.ndarray:
                noise = np.zeros_like(states)
                noise[:, 0] = sigma
                return noise

            def project(states: np.ndarray) -> np.ndarray:
                return np.maximum(states, 0.0)

            return euler_maruyama(drift, diffusion,
                                  initial=np.array([q0, rate0]),
                                  t_end=t_end, dt=dt, n_paths=n_paths,
                                  rng=rng, projection=project,
                                  record_every=max(1, int(round(0.5 / dt))),
                                  health=health)

        return self._simulate_with_delay(q0, rate0, t_end, dt, n_paths, rng,
                                         health=health)

    def _simulate_with_delay(self, q0: float, rate0: float, t_end: float,
                             dt: float, n_paths: int,
                             rng: np.random.Generator,
                             health: Optional["HealthMonitor"] = None
                             ) -> SDEPaths:
        mu = self.params.mu
        sigma = self.params.sigma
        delay_steps = max(1, int(round(self.feedback_delay / dt)))
        n_steps = int(np.ceil(t_end / dt))
        record_every = max(1, int(round(0.5 / dt)))

        states = np.tile(np.array([q0, rate0], dtype=float), (n_paths, 1))
        history = np.full((delay_steps + 1, n_paths), q0, dtype=float)
        history_index = 0

        # Preallocate the snapshot storage: the recording schedule is known
        # up front, so the per-record ``states.copy()`` appends of the old
        # implementation become writes into one contiguous array.
        n_records = n_steps // record_every
        if n_steps % record_every:
            n_records += 1
        times = np.empty(n_records + 1)
        snapshots = np.empty((n_records + 1, n_paths, 2))
        times[0] = 0.0
        snapshots[0] = states
        record_index = 1

        sqrt_dt = np.sqrt(dt)
        t = 0.0
        for step in range(1, n_steps + 1):
            q = states[:, 0]
            lam = states[:, 1]
            # Queue value the controller sees: delay_steps steps in the past.
            delayed_index = (history_index + 1) % (delay_steps + 1)
            q_seen = history[delayed_index]

            dq = lam - mu
            dq = np.where((q <= 0.0) & (dq < 0.0), 0.0, dq)
            dlam = np.asarray(self.control.drift(q_seen, lam), dtype=float)

            noise = rng.standard_normal(n_paths) * sigma * sqrt_dt
            states[:, 0] = np.maximum(q + dq * dt + noise, 0.0)
            states[:, 1] = np.maximum(lam + dlam * dt, 0.0)

            history_index = (history_index + 1) % (delay_steps + 1)
            history[history_index] = states[:, 0]

            t += dt
            if step % record_every == 0 or step == n_steps:
                if health is not None:
                    bad = ~np.isfinite(states)
                    if bad.any():

                        def _hold_last(states=states, bad=bad,
                                       previous=snapshots[record_index - 1]):
                            np.copyto(states, previous, where=bad)

                        health.check_finite_block(states, t,
                                                  label="delayed Langevin block",
                                                  repair=_hold_last)
                times[record_index] = t
                snapshots[record_index] = states
                record_index += 1

        return SDEPaths(times[:record_index], snapshots[:record_index])
