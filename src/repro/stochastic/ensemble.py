"""Ensemble summaries and comparison against the Fokker-Planck density."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..core.moments import marginal_q
from ..core.solver import FokkerPlanckResult
from ..exceptions import AnalysisError
from ..numerics.sde import SDEPaths
from ..numerics.stats import empirical_density
from .langevin import LangevinModel

__all__ = ["EnsembleResult", "run_ensemble", "compare_with_density"]


@dataclass
class EnsembleResult:
    """Summary of one Langevin Monte-Carlo ensemble run.

    Attributes
    ----------
    paths:
        The raw sample paths.
    mu:
        Service rate used, kept so rate-vs-growth conversions need no extra
        argument.
    """

    paths: SDEPaths
    mu: float

    @property
    def times(self) -> np.ndarray:
        """Snapshot times of the ensemble."""
        return self.paths.times

    @property
    def mean_queue(self) -> np.ndarray:
        """Ensemble-mean queue length over time."""
        return self.paths.mean(0)

    @property
    def std_queue(self) -> np.ndarray:
        """Ensemble standard deviation of the queue length over time."""
        return np.sqrt(self.paths.variance(0))

    @property
    def mean_rate(self) -> np.ndarray:
        """Ensemble-mean arrival rate over time."""
        return self.paths.mean(1)

    def final_queue_samples(self) -> np.ndarray:
        """Queue lengths of all particles at the final time."""
        return self.paths.final_states[:, 0]

    def final_queue_density(self, edges: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Empirical queue-length density at the final time on the given bins."""
        return empirical_density(self.final_queue_samples(), edges)

    def overflow_probability(self, threshold: float) -> float:
        """Fraction of particles whose final queue exceeds *threshold*."""
        samples = self.final_queue_samples()
        return float(np.mean(samples > threshold))


def run_ensemble(control: RateControl, params: SystemParameters, q0: float,
                 rate0: float, t_end: float, dt: float = 0.02,
                 n_paths: int = 2000, feedback_delay: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> EnsembleResult:
    """Run a Langevin ensemble with the given control law and parameters."""
    model = LangevinModel(control, params, feedback_delay=feedback_delay)
    paths = model.simulate(q0=q0, rate0=rate0, t_end=t_end, dt=dt,
                           n_paths=n_paths, rng=rng)
    return EnsembleResult(paths=paths, mu=params.mu)


def compare_with_density(ensemble: EnsembleResult,
                         fp_result: FokkerPlanckResult) -> dict:
    """Compare an ensemble against a Fokker-Planck result at the final time.

    Returns a dictionary with the absolute differences of the final mean and
    standard deviation of the queue, and the L1 distance between the FP
    queue marginal and the empirical particle density binned on the same
    grid.  The two runs must cover (approximately) the same horizon.
    """
    if abs(ensemble.times[-1] - fp_result.times[-1]) > 1.0:
        raise AnalysisError(
            "ensemble and Fokker-Planck runs cover different horizons")

    fp_moments = fp_result.final_moments
    mean_difference = abs(float(ensemble.mean_queue[-1]) - fp_moments.mean_q)
    std_difference = abs(float(ensemble.std_queue[-1]) - fp_moments.std_q)

    grid = fp_result.grid
    edges = grid.q_grid.edges
    _, empirical = ensemble.final_queue_density(edges)
    fp_marginal = marginal_q(fp_result.final_density, grid)
    fp_marginal = fp_marginal / max(float(np.sum(fp_marginal) * grid.dq), 1e-300)
    l1_distance = float(np.sum(np.abs(empirical - fp_marginal)) * grid.dq)

    return {
        "mean_queue_difference": mean_difference,
        "std_queue_difference": std_difference,
        "marginal_l1_distance": l1_distance,
    }
