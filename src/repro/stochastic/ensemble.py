"""Ensemble summaries and comparison against the Fokker-Planck density.

Large ensembles can be *sharded*: passing ``seed=`` (instead of ``rng=``)
to :func:`run_ensemble` splits the particle population into independently
seeded shards whose seeds come from the spawn-key derivation in
:mod:`repro.queueing.random_streams`.  Shard ``i`` depends only on
``(seed, i, its particle count)``, so results are reproducible and
bit-identical whether the shards run serially or across worker processes
(``n_jobs > 1``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..core.moments import marginal_q
from ..core.solver import FokkerPlanckResult
from ..exceptions import AnalysisError, ConfigurationError
from ..numerics.sde import SDEPaths
from ..numerics.stats import empirical_density
from ..queueing.random_streams import child_seed_sequences
from .langevin import LangevinModel

__all__ = ["EnsembleResult", "run_ensemble", "compare_with_density",
           "shard_sizes"]

#: Shard count used when ``seed=`` is given without an explicit ``n_shards``.
#: A fixed constant (never ``n_jobs``) so the sharded result is identical no
#: matter how many workers execute it.
DEFAULT_SHARDS = 8


@dataclass
class EnsembleResult:
    """Summary of one Langevin Monte-Carlo ensemble run.

    Attributes
    ----------
    paths:
        The raw sample paths.
    mu:
        Service rate used, kept so rate-vs-growth conversions need no extra
        argument.
    """

    paths: SDEPaths
    mu: float

    @property
    def times(self) -> np.ndarray:
        """Snapshot times of the ensemble."""
        return self.paths.times

    @property
    def mean_queue(self) -> np.ndarray:
        """Ensemble-mean queue length over time."""
        return self.paths.mean(0)

    @property
    def std_queue(self) -> np.ndarray:
        """Ensemble standard deviation of the queue length over time."""
        return np.sqrt(self.paths.variance(0))

    @property
    def mean_rate(self) -> np.ndarray:
        """Ensemble-mean arrival rate over time."""
        return self.paths.mean(1)

    def final_queue_samples(self) -> np.ndarray:
        """Queue lengths of all particles at the final time."""
        return self.paths.final_states[:, 0]

    def final_queue_density(self, edges: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Empirical queue-length density at the final time on the given bins."""
        return empirical_density(self.final_queue_samples(), edges)

    def overflow_probability(self, threshold: float) -> float:
        """Fraction of particles whose final queue exceeds *threshold*."""
        samples = self.final_queue_samples()
        return float(np.mean(samples > threshold))


def shard_sizes(n_paths: int, n_shards: int) -> List[int]:
    """Split *n_paths* into *n_shards* near-equal, deterministic shard sizes.

    The first ``n_paths % n_shards`` shards carry one extra particle, so the
    split depends only on the two counts -- never on execution order.
    """
    if n_paths < 1:
        raise ConfigurationError("n_paths must be at least 1")
    if n_shards < 1:
        raise ConfigurationError("n_shards must be at least 1")
    if n_shards > n_paths:
        n_shards = n_paths
    base, extra = divmod(n_paths, n_shards)
    return [base + (1 if index < extra else 0) for index in range(n_shards)]


def _simulate_shard(control: RateControl, params: SystemParameters,
                    q0: float, rate0: float, t_end: float, dt: float,
                    n_paths: int, feedback_delay: float,
                    seed_sequence: np.random.SeedSequence) -> SDEPaths:
    """Run one shard of an ensemble (module-level so it can cross processes)."""
    model = LangevinModel(control, params, feedback_delay=feedback_delay)
    return model.simulate(q0=q0, rate0=rate0, t_end=t_end, dt=dt,
                          n_paths=n_paths,
                          rng=np.random.default_rng(seed_sequence))


def run_ensemble(control: RateControl, params: SystemParameters, q0: float,
                 rate0: float, t_end: float, dt: float = 0.02,
                 n_paths: int = 2000, feedback_delay: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None,
                 n_shards: Optional[int] = None,
                 n_jobs: int = 1) -> EnsembleResult:
    """Run a Langevin ensemble with the given control law and parameters.

    Two execution modes:

    * **single-stream** (default, backwards compatible): all particles share
      one generator, supplied via *rng* (or a fixed default);
    * **sharded** (``seed`` given): particles are split into ``n_shards``
      shards (default :data:`DEFAULT_SHARDS` -- deliberately *not* tied to
      ``n_jobs``), each with its own spawn-key-derived child stream,
      optionally simulated across ``n_jobs`` worker processes.  For fixed
      ``(seed, n_paths, n_shards)`` the combined paths are bit-identical
      regardless of ``n_jobs``.
    """
    if seed is not None and rng is not None:
        raise ConfigurationError("pass either rng= or seed=, not both")
    if seed is None and (n_jobs > 1 or (n_shards or 1) > 1):
        raise ConfigurationError(
            "sharded/parallel ensembles need an explicit seed= so shard "
            "streams can be derived deterministically")

    if seed is None:
        model = LangevinModel(control, params, feedback_delay=feedback_delay)
        paths = model.simulate(q0=q0, rate0=rate0, t_end=t_end, dt=dt,
                               n_paths=n_paths, rng=rng)
        return EnsembleResult(paths=paths, mu=params.mu)

    if n_shards is None:
        n_shards = DEFAULT_SHARDS
    sizes = shard_sizes(n_paths, n_shards)
    seeds = child_seed_sequences(seed, len(sizes), key=("ensemble",))

    if n_jobs > 1 and len(sizes) > 1:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(sizes))) as pool:
            futures = [pool.submit(_simulate_shard, control, params, q0,
                                   rate0, t_end, dt, size, feedback_delay,
                                   shard_seed)
                       for size, shard_seed in zip(sizes, seeds, strict=True)]
            shards = [future.result() for future in futures]
    else:
        shards = [_simulate_shard(control, params, q0, rate0, t_end, dt,
                                  size, feedback_delay, shard_seed)
                  for size, shard_seed in zip(sizes, seeds, strict=True)]

    # Shards are concatenated in shard-index order (never completion order),
    # which is what makes the result independent of scheduling.
    combined = SDEPaths(times=shards[0].times,
                        paths=np.concatenate([shard.paths for shard in shards],
                                             axis=1))
    return EnsembleResult(paths=combined, mu=params.mu)


def compare_with_density(ensemble: EnsembleResult,
                         fp_result: FokkerPlanckResult) -> dict:
    """Compare an ensemble against a Fokker-Planck result at the final time.

    Returns a dictionary with the absolute differences of the final mean and
    standard deviation of the queue, and the L1 distance between the FP
    queue marginal and the empirical particle density binned on the same
    grid.  The two runs must cover (approximately) the same horizon.
    """
    if abs(ensemble.times[-1] - fp_result.times[-1]) > 1.0:
        raise AnalysisError(
            "ensemble and Fokker-Planck runs cover different horizons")

    fp_moments = fp_result.final_moments
    mean_difference = abs(float(ensemble.mean_queue[-1]) - fp_moments.mean_q)
    std_difference = abs(float(ensemble.std_queue[-1]) - fp_moments.std_q)

    grid = fp_result.grid
    edges = grid.q_grid.edges
    _, empirical = ensemble.final_queue_density(edges)
    fp_marginal = marginal_q(fp_result.final_density, grid)
    fp_marginal = fp_marginal / max(float(np.sum(fp_marginal) * grid.dq), 1e-300)
    l1_distance = float(np.sum(np.abs(empirical - fp_marginal)) * grid.dq)

    return {
        "mean_queue_difference": mean_difference,
        "std_queue_difference": std_difference,
        "marginal_l1_distance": l1_distance,
    }
