"""Ensemble summaries and comparison against the Fokker-Planck density.

Large ensembles can be *sharded*: passing ``seed=`` (instead of ``rng=``)
to :func:`run_ensemble` splits the particle population into independently
seeded shards whose seeds come from the spawn-key derivation in
:mod:`repro.queueing.random_streams`.  Shard ``i`` depends only on
``(seed, i, its particle count)``, so results are reproducible and
bit-identical whether the shards run serially or across worker processes
(``n_jobs > 1``).

Since the columnar data-plane redesign, sharded ensembles also take a
``retention`` policy.  Under ``retention="full"`` every sample path is
kept (optionally spilled to a ``numpy.memmap`` via ``memmap_dir``) exactly
as before.  Under ``"moments"`` each shard's paths are folded into
streaming per-snapshot-time Welford moments (exact Chan parallel merge,
shard-index fold order) plus the final particle states, and the shard's
history is discarded -- the working set is one shard, not the ensemble.
Under ``"none"`` even the final states are streamed into a fixed-bin
histogram and overflow counters.  Because shard streams depend only on
``(seed, shard index, shard size)``, a moments-mode run integrates exactly
the same sample paths as the full-mode run it summarises.
"""

from __future__ import annotations

import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..core.moments import marginal_q
from ..core.solver import FokkerPlanckResult
from ..dataplane import StreamingHistogram, StreamingMoments, validate_retention
from ..exceptions import AnalysisError, ConfigurationError
from ..health import HealthMonitor, resolve_health
from ..health.report import HealthLog
from ..numerics.sde import SDEPaths
from ..numerics.stats import empirical_density
from ..queueing.random_streams import child_seed_sequences
from .langevin import LangevinModel

__all__ = ["EnsembleResult", "EnsembleStats", "run_ensemble",
           "compare_with_density", "shard_sizes"]

#: Shard count used when ``seed=`` is given without an explicit ``n_shards``.
#: A fixed constant (never ``n_jobs``) so the sharded result is identical no
#: matter how many workers execute it.
DEFAULT_SHARDS = 8


@dataclass
class EnsembleStats:
    """Streamed summary of an ensemble (what survives discarding paths).

    Attributes
    ----------
    times:
        Snapshot times, shape ``(n_times,)``.
    n_paths:
        Total particle count folded in.
    moments:
        Per-snapshot-time, per-component Welford moments with state shape
        ``(n_times, dim)``; particles are the sample axis.
    final_states:
        Particle states at the final time, shape ``(n_paths, dim)``; kept
        under ``retention="moments"`` (so overflow probabilities and
        empirical densities stay exact), ``None`` under ``"none"``.
    final_queue_histogram:
        Fixed-bin histogram of final queue lengths (``retention="none"``
        with ``histogram_edges``), else ``None``.
    overflow_counts:
        Exact counts of final queues strictly above each configured
        threshold (``retention="none"``), keyed by threshold.
    """

    times: np.ndarray
    n_paths: int
    moments: StreamingMoments
    final_states: Optional[np.ndarray] = None
    final_queue_histogram: Optional[StreamingHistogram] = None
    overflow_counts: Dict[float, int] = field(default_factory=dict)

    def merge(self, other: "EnsembleStats") -> "EnsembleStats":
        """Fold another shard-group summary into this one."""
        if not np.array_equal(self.times, other.times):
            raise AnalysisError(
                "cannot merge ensemble summaries with different time grids")
        self.moments.merge(other.moments)
        self.n_paths += other.n_paths
        if self.final_states is not None and other.final_states is not None:
            self.final_states = np.concatenate(
                [self.final_states, other.final_states], axis=0)
        elif other.final_states is not None:
            self.final_states = other.final_states.copy()
        if other.final_queue_histogram is not None:
            if self.final_queue_histogram is None:
                self.final_queue_histogram = StreamingHistogram.from_dict(
                    other.final_queue_histogram.to_dict())
            else:
                self.final_queue_histogram.merge(other.final_queue_histogram)
        for threshold, count in other.overflow_counts.items():
            self.overflow_counts[threshold] = (
                self.overflow_counts.get(threshold, 0) + count)
        return self

    def to_dict(self) -> dict:
        """JSON-friendly state; exact round trip via :meth:`from_dict`."""
        return {
            "__stats__": "EnsembleStats",
            "times": self.times.tolist(),
            "n_paths": int(self.n_paths),
            "moments": self.moments.to_dict(),
            "final_states": (self.final_states.tolist()
                             if self.final_states is not None else None),
            "final_queue_histogram": (
                self.final_queue_histogram.to_dict()
                if self.final_queue_histogram is not None else None),
            "overflow_counts": {repr(threshold): int(count)
                                for threshold, count
                                in self.overflow_counts.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnsembleStats":
        """Rebuild a summary from :meth:`to_dict` output."""
        if data.get("__stats__") != "EnsembleStats":
            raise ConfigurationError(
                "payload is not a serialised EnsembleStats")
        final_states = data.get("final_states")
        histogram = data.get("final_queue_histogram")
        return cls(
            times=np.asarray(data["times"], dtype=float),
            n_paths=int(data["n_paths"]),
            moments=StreamingMoments.from_dict(data["moments"]),
            final_states=(np.asarray(final_states, dtype=float)
                          if final_states is not None else None),
            final_queue_histogram=(StreamingHistogram.from_dict(histogram)
                                   if histogram is not None else None),
            overflow_counts={float(threshold): int(count)
                             for threshold, count
                             in data.get("overflow_counts", {}).items()},
        )


@dataclass
class EnsembleResult:
    """Summary of one Langevin Monte-Carlo ensemble run.

    Exactly one of :attr:`paths` (``retention="full"``) and :attr:`stats`
    (streamed retention) carries the data; the series accessors
    (:attr:`mean_queue_series` and friends) work for both.

    Attributes
    ----------
    mu:
        Service rate used, kept so rate-vs-growth conversions need no
        extra argument.
    retention:
        The retention policy the run used.
    paths:
        The raw sample paths (``retention="full"`` only).
    stats:
        The streamed summary (``retention="moments"``/``"none"`` only).
    """

    mu: float
    retention: str = "full"
    paths: Optional[SDEPaths] = None
    stats: Optional[EnsembleStats] = None
    #: Merged per-shard health log (``None`` when the run was unmonitored).
    health: Optional[HealthLog] = None

    def __post_init__(self) -> None:
        validate_retention(self.retention)
        if (self.paths is None) == (self.stats is None):
            raise ConfigurationError(
                "EnsembleResult needs exactly one of paths= or stats=")

    @property
    def n_paths(self) -> int:
        """Total particle count."""
        if self.paths is not None:
            return self.paths.n_paths
        return self.stats.n_paths

    @property
    def times(self) -> np.ndarray:
        """Snapshot times of the ensemble."""
        if self.paths is not None:
            return self.paths.times
        return self.stats.times

    def _moment_series(self, component: int, kind: str) -> np.ndarray:
        if self.paths is not None:
            if kind == "mean":
                return self.paths.mean(component)
            return np.sqrt(self.paths.variance(component))
        moments = self.stats.moments
        if kind == "mean":
            return moments.mean[:, component]
        return moments.std[:, component]

    @property
    def mean_queue_series(self) -> np.ndarray:
        """Ensemble-mean queue length over time."""
        return self._moment_series(0, "mean")

    @property
    def std_queue_series(self) -> np.ndarray:
        """Ensemble standard deviation of the queue length over time."""
        return self._moment_series(0, "std")

    @property
    def mean_rate_series(self) -> np.ndarray:
        """Ensemble-mean arrival rate over time."""
        return self._moment_series(1, "mean")

    # -- deprecated spellings ----------------------------------------------

    @property
    def mean_queue(self) -> np.ndarray:
        """Deprecated alias of :attr:`mean_queue_series`."""
        warnings.warn("EnsembleResult.mean_queue is deprecated; use "
                      "EnsembleResult.mean_queue_series",
                      DeprecationWarning, stacklevel=2)
        return self.mean_queue_series

    @property
    def std_queue(self) -> np.ndarray:
        """Deprecated alias of :attr:`std_queue_series`."""
        warnings.warn("EnsembleResult.std_queue is deprecated; use "
                      "EnsembleResult.std_queue_series",
                      DeprecationWarning, stacklevel=2)
        return self.std_queue_series

    @property
    def mean_rate(self) -> np.ndarray:
        """Deprecated alias of :attr:`mean_rate_series`."""
        warnings.warn("EnsembleResult.mean_rate is deprecated; use "
                      "EnsembleResult.mean_rate_series",
                      DeprecationWarning, stacklevel=2)
        return self.mean_rate_series

    # -- final-time statistics ---------------------------------------------

    def final_queue_samples(self) -> np.ndarray:
        """Queue lengths of all particles at the final time.

        Available under ``retention="full"`` and ``"moments"``; under
        ``"none"`` the per-particle samples were not retained.
        """
        if self.paths is not None:
            return self.paths.final_states[:, 0]
        if self.stats.final_states is not None:
            return self.stats.final_states[:, 0]
        raise AnalysisError(
            "final particle states are unavailable under retention='none'; "
            "rerun with retention='moments' or configure histogram_edges")

    def final_queue_density(self, edges: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Empirical queue-length density at the final time on the given bins."""
        if self.paths is None and self.stats.final_states is None:
            histogram = self.stats.final_queue_histogram
            if histogram is not None and np.array_equal(
                    histogram.edges, np.asarray(edges, dtype=float)):
                return histogram.density()
            raise AnalysisError(
                "empirical density under retention='none' needs "
                "histogram_edges matching the requested bins")
        return empirical_density(self.final_queue_samples(), edges)

    def overflow_probability(self, threshold: float) -> float:
        """Fraction of particles whose final queue exceeds *threshold*."""
        if self.paths is None and self.stats.final_states is None:
            for configured, count in self.stats.overflow_counts.items():
                if abs(configured - threshold) <= 1e-12 * max(
                        1.0, abs(configured)):
                    return count / self.stats.n_paths
            histogram = self.stats.final_queue_histogram
            if histogram is not None:
                return histogram.tail_fraction(threshold)
            raise AnalysisError(
                f"overflow threshold {threshold:g} was not streamed; pass it "
                "via overflow_thresholds= or use retention='moments'")
        samples = self.final_queue_samples()
        return float(np.mean(samples > threshold))

    # -- serde --------------------------------------------------------------

    def summary(self) -> dict:
        """Cheap structural summary of the run."""
        return {
            "retention": self.retention,
            "n_paths": self.n_paths,
            "n_times": int(self.times.shape[0]),
            "t_end": float(self.times[-1]),
            "mu": self.mu,
        }

    def to_dict(self) -> dict:
        """JSON-friendly payload; exact round trip via :meth:`from_dict`."""
        payload = {
            "__result__": "EnsembleResult",
            "mu": float(self.mu),
            "retention": self.retention,
        }
        if self.paths is not None:
            payload["paths"] = {
                "times": self.paths.times.tolist(),
                "paths": self.paths.paths.tolist(),
            }
        else:
            payload["stats"] = self.stats.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "EnsembleResult":
        """Rebuild a result from :meth:`to_dict` output."""
        if data.get("__result__") != "EnsembleResult":
            raise ConfigurationError(
                "payload is not a serialised EnsembleResult")
        paths_payload = data.get("paths")
        if paths_payload is not None:
            paths = SDEPaths(
                times=np.asarray(paths_payload["times"], dtype=float),
                paths=np.asarray(paths_payload["paths"], dtype=float))
            return cls(mu=float(data["mu"]), retention=data["retention"],
                       paths=paths)
        return cls(mu=float(data["mu"]), retention=data["retention"],
                   stats=EnsembleStats.from_dict(data["stats"]))


def shard_sizes(n_paths: int, n_shards: int) -> List[int]:
    """Split *n_paths* into *n_shards* near-equal, deterministic shard sizes.

    The first ``n_paths % n_shards`` shards carry one extra particle, so the
    split depends only on the two counts -- never on execution order.
    """
    if n_paths < 1:
        raise ConfigurationError("n_paths must be at least 1")
    if n_shards < 1:
        raise ConfigurationError("n_shards must be at least 1")
    if n_shards > n_paths:
        n_shards = n_paths
    base, extra = divmod(n_paths, n_shards)
    return [base + (1 if index < extra else 0) for index in range(n_shards)]


def _simulate_shard(control: RateControl, params: SystemParameters,
                    q0: float, rate0: float, t_end: float, dt: float,
                    n_paths: int, feedback_delay: float,
                    seed_sequence: np.random.SeedSequence,
                    health_mode: str = "off",
                    shard_index: int = 0
                    ) -> Tuple[SDEPaths, Optional[dict]]:
    """Run one shard of an ensemble (module-level so it can cross processes).

    Returns the shard's paths plus its health-log summary (``None`` when
    unmonitored); the summary is a JSON dict so it pickles across worker
    processes regardless of how the log is later merged.
    """
    monitor = HealthMonitor.create(
        health_mode, where=f"stochastic.ensemble/shard{shard_index}")
    model = LangevinModel(control, params, feedback_delay=feedback_delay)
    paths = model.simulate(q0=q0, rate0=rate0, t_end=t_end, dt=dt,
                           n_paths=n_paths,
                           rng=np.random.default_rng(seed_sequence),
                           health=monitor)
    return paths, (monitor.log.summary() if monitor is not None else None)


def _fold_shard(stats: Optional[EnsembleStats], shard: SDEPaths,
                retention: str,
                histogram_edges: Optional[np.ndarray],
                overflow_thresholds: Sequence[float]) -> EnsembleStats:
    """Fold one shard's paths into the streamed summary, then drop them."""
    n_times, n_paths, dim = shard.paths.shape
    if stats is None:
        stats = EnsembleStats(times=shard.times.copy(), n_paths=0,
                              moments=StreamingMoments((n_times, dim)))
        if retention == "moments":
            stats.final_states = np.empty((0, dim), dtype=float)
        elif histogram_edges is not None:
            stats.final_queue_histogram = StreamingHistogram(histogram_edges)
        stats.overflow_counts = ({float(t): 0 for t in overflow_thresholds}
                                 if retention == "none" else {})
    stats.moments.update_batch(shard.paths, axis=1)
    stats.n_paths += n_paths
    final = shard.final_states
    if stats.final_states is not None:
        stats.final_states = np.concatenate([stats.final_states, final],
                                            axis=0)
    else:
        final_queues = final[:, 0]
        if stats.final_queue_histogram is not None:
            stats.final_queue_histogram.update(final_queues)
        for threshold in stats.overflow_counts:
            stats.overflow_counts[threshold] += int(
                np.count_nonzero(final_queues > threshold))
    return stats


def _combine_full(shards: List[SDEPaths],
                  memmap_dir: Optional[str]) -> SDEPaths:
    """Concatenate shard paths along the particle axis (optionally memmapped)."""
    if memmap_dir is None:
        return SDEPaths(times=shards[0].times,
                        paths=np.concatenate(
                            [shard.paths for shard in shards], axis=1))
    import os
    import tempfile
    n_times, _, dim = shards[0].paths.shape
    n_paths = sum(shard.paths.shape[1] for shard in shards)
    fd, path = tempfile.mkstemp(suffix=".paths", dir=memmap_dir)
    try:
        os.ftruncate(fd, n_times * n_paths * dim * 8)
        combined = np.memmap(path, dtype=np.float64, mode="r+",
                             shape=(n_times, n_paths, dim))
    finally:
        os.close(fd)
    os.unlink(path)
    offset = 0
    for shard in shards:
        width = shard.paths.shape[1]
        combined[:, offset:offset + width, :] = shard.paths
        offset += width
    return SDEPaths(times=shards[0].times, paths=combined)


def _merged_health(summaries: Sequence[Optional[dict]],
                   mode: str) -> Optional[HealthLog]:
    """Fold per-shard health summaries (shard-index order) into one log."""
    logs = [HealthLog.from_summary(s) for s in summaries if s is not None]
    if not logs:
        return None
    merged = HealthLog(mode=mode, where="stochastic.ensemble")
    for log in logs:
        merged.merge(log)
    return merged


def run_ensemble(control: RateControl, params: SystemParameters, q0: float,
                 rate0: float, t_end: float, dt: float = 0.02,
                 n_paths: int = 2000, feedback_delay: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None,
                 n_shards: Optional[int] = None,
                 n_jobs: int = 1,
                 retention: str = "full",
                 memmap_dir: Optional[str] = None,
                 histogram_edges: Optional[np.ndarray] = None,
                 overflow_thresholds: Optional[Sequence[float]] = None,
                 health: Optional[str] = None
                 ) -> EnsembleResult:
    """Run a Langevin ensemble with the given control law and parameters.

    Two execution modes:

    * **single-stream** (default, backwards compatible): all particles share
      one generator, supplied via *rng* (or a fixed default);
    * **sharded** (``seed`` given): particles are split into ``n_shards``
      shards (default :data:`DEFAULT_SHARDS` -- deliberately *not* tied to
      ``n_jobs``), each with its own spawn-key-derived child stream,
      optionally simulated across ``n_jobs`` worker processes.  For fixed
      ``(seed, n_paths, n_shards)`` the combined paths are bit-identical
      regardless of ``n_jobs``.

    The ``retention`` policy bounds memory for sharded runs: ``"full"``
    keeps every path (``memmap_dir`` spills the combined array to disk),
    ``"moments"`` streams per-snapshot Welford moments plus the final
    particle states and discards each shard after folding, ``"none"``
    additionally replaces the final states with a fixed-bin histogram
    (``histogram_edges``) and exact overflow counters
    (``overflow_thresholds``, default ``(2 * params.q_target,)``).
    Moments-mode runs integrate exactly the same sample paths as the
    full-mode run with the same ``(seed, n_paths, n_shards)``.

    ``health`` selects the numerical-health policy (falling back to
    ``params.health``, then the ``REPRO_HEALTH`` environment / the
    ``observe`` default): each shard runs under its own monitor, and the
    per-shard logs are merged in shard-index order into
    :attr:`EnsembleResult.health`.  ``"off"`` is bit-identical to the
    unmonitored engine.
    """
    validate_retention(retention)
    health_mode = resolve_health(health or params.health or None)
    if seed is not None and rng is not None:
        raise ConfigurationError("pass either rng= or seed=, not both")
    if seed is None and (n_jobs > 1 or (n_shards or 1) > 1):
        raise ConfigurationError(
            "sharded/parallel ensembles need an explicit seed= so shard "
            "streams can be derived deterministically")
    if retention != "full" and seed is None:
        raise ConfigurationError(
            "streamed retention folds per-shard summaries, so it needs the "
            "sharded mode: pass seed= (optionally n_shards=)")
    if overflow_thresholds is None:
        overflow_thresholds = (2.0 * params.q_target,)
    if histogram_edges is not None:
        histogram_edges = np.asarray(histogram_edges, dtype=float)

    if seed is None:
        monitor = HealthMonitor.create(health_mode,
                                       where="stochastic.ensemble")
        model = LangevinModel(control, params, feedback_delay=feedback_delay)
        paths = model.simulate(q0=q0, rate0=rate0, t_end=t_end, dt=dt,
                               n_paths=n_paths, rng=rng, health=monitor)
        return EnsembleResult(paths=paths, mu=params.mu,
                              health=monitor.log if monitor else None)

    if n_shards is None:
        n_shards = DEFAULT_SHARDS
    sizes = shard_sizes(n_paths, n_shards)
    seeds = child_seed_sequences(seed, len(sizes), key=("ensemble",))

    if retention == "full":
        if n_jobs > 1 and len(sizes) > 1:
            with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(sizes))) as pool:
                futures = [pool.submit(_simulate_shard, control, params, q0,
                                       rate0, t_end, dt, size, feedback_delay,
                                       shard_seed, health_mode, index)
                           for index, (size, shard_seed)
                           in enumerate(zip(sizes, seeds, strict=True))]
                results = [future.result() for future in futures]
        else:
            results = [_simulate_shard(control, params, q0, rate0, t_end, dt,
                                       size, feedback_delay, shard_seed,
                                       health_mode, index)
                       for index, (size, shard_seed)
                       in enumerate(zip(sizes, seeds, strict=True))]
        shards = [paths for paths, _ in results]
        # Shards are concatenated in shard-index order (never completion
        # order), which is what makes the result independent of scheduling.
        return EnsembleResult(
            paths=_combine_full(shards, memmap_dir), mu=params.mu,
            health=_merged_health([summary for _, summary in results],
                                  health_mode))

    # Streamed retention: fold shard-by-shard in shard-index order (the fold
    # order is part of the reproducibility contract), keeping at most the
    # in-flight window of shard results alive.
    stats: Optional[EnsembleStats] = None
    summaries: List[Optional[dict]] = []
    if n_jobs > 1 and len(sizes) > 1:
        work = deque(enumerate(zip(sizes, seeds, strict=True)))
        window = min(n_jobs, len(sizes)) + 1
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(sizes))) as pool:
            pending: deque = deque()
            while work or pending:
                while work and len(pending) < window:
                    index, (size, shard_seed) = work.popleft()
                    pending.append(pool.submit(
                        _simulate_shard, control, params, q0, rate0, t_end,
                        dt, size, feedback_delay, shard_seed, health_mode,
                        index))
                shard, summary = pending.popleft().result()
                summaries.append(summary)
                stats = _fold_shard(stats, shard,
                                    retention, histogram_edges,
                                    overflow_thresholds)
    else:
        for index, (size, shard_seed) in enumerate(
                zip(sizes, seeds, strict=True)):
            shard, summary = _simulate_shard(control, params, q0, rate0,
                                             t_end, dt, size, feedback_delay,
                                             shard_seed, health_mode, index)
            summaries.append(summary)
            stats = _fold_shard(stats, shard, retention, histogram_edges,
                                overflow_thresholds)
    return EnsembleResult(mu=params.mu, retention=retention, stats=stats,
                          health=_merged_health(summaries, health_mode))


def compare_with_density(ensemble: EnsembleResult,
                         fp_result: FokkerPlanckResult) -> dict:
    """Compare an ensemble against a Fokker-Planck result at the final time.

    Returns a dictionary with the absolute differences of the final mean and
    standard deviation of the queue, and the L1 distance between the FP
    queue marginal and the empirical particle density binned on the same
    grid.  The two runs must cover (approximately) the same horizon.
    """
    if abs(ensemble.times[-1] - fp_result.times[-1]) > 1.0:
        raise AnalysisError(
            "ensemble and Fokker-Planck runs cover different horizons")

    fp_moments = fp_result.final_moments
    mean_difference = abs(float(ensemble.mean_queue_series[-1])
                          - fp_moments.mean_q)
    std_difference = abs(float(ensemble.std_queue_series[-1])
                         - fp_moments.std_q)

    grid = fp_result.grid
    edges = grid.q_grid.edges
    _, empirical = ensemble.final_queue_density(edges)
    fp_marginal = marginal_q(fp_result.final_density, grid)
    fp_marginal = fp_marginal / max(float(np.sum(fp_marginal) * grid.dq), 1e-300)
    l1_distance = float(np.sum(np.abs(empirical - fp_marginal)) * grid.dq)

    return {
        "mean_queue_difference": mean_difference,
        "std_queue_difference": std_difference,
        "marginal_l1_distance": l1_distance,
    }
