"""The invariant monitor: per-engine checks bound to a degradation policy.

A :class:`HealthMonitor` bundles a resolved health mode with a
:class:`~repro.health.report.HealthLog` and exposes one check method per
invariant family.  Engines create a monitor with :meth:`HealthMonitor.create`
(``None`` under ``off``, so the unguarded hot path survives bit-identically)
and call the checks at their natural cadence — the Fokker-Planck solver once
per output interval, the DES engines at segment boundaries, the SDE/ODE
engines at record points.

Policy semantics per check:

``strict``
    every violation aborts with its typed
    :class:`~repro.exceptions.NumericalHealthError` subclass;
``repair``
    violations with a registered repair apply it (logged and counted);
    violations without one degrade to observe, unless *fatal*;
``observe``
    record-only — except *fatal* violations (a non-finite density cannot
    be integrated further), which abort exactly as the pre-health code did,
    just with a richer, typed error.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..exceptions import (
    EventBudgetError,
    MassConservationError,
    NegativeDensityError,
    NonFiniteStateError,
    QueueInvariantError,
    ResidualHealthError,
    SimTimeError,
    StepSizeError,
)
from .policy import resolve_health
from .report import HealthLog, HealthReport

__all__ = ["HealthMonitor", "MASS_TOLERANCE", "NEGATIVE_TOLERANCE"]

#: Allowed drift of total FP mass from its conservation target before the
#: ``mass`` invariant fires.  Healthy runs on the golden configs stay below
#: 1e-11; 1e-8 leaves three decades of headroom against grid refinement.
MASS_TOLERANCE = 1e-8

#: Most negative density cell tolerated before ``positivity`` fires; the
#: kernels clamp, so anything beyond rounding noise indicates a bug.
NEGATIVE_TOLERANCE = 1e-12


class HealthMonitor:
    """One run's invariant watcher, bound to a degradation policy."""

    __slots__ = ("mode", "where", "log", "_budget_fired")

    def __init__(self, mode: str, where: str = ""):
        self.mode = mode
        self.where = where
        self.log = HealthLog(mode=mode, where=where)
        self._budget_fired = False

    @classmethod
    def create(cls, health: Optional[str] = None,
               where: str = "") -> Optional["HealthMonitor"]:
        """Monitor for the resolved mode, or ``None`` under ``off``.

        Returning ``None`` (rather than a no-op monitor) lets hot paths
        keep their original unguarded branches, which is what makes
        ``--health=off`` bit-identical to the pre-health code by
        construction.
        """
        mode = resolve_health(health)
        if mode == "off":
            return None
        return cls(mode, where=where)

    # ------------------------------------------------------------------
    # policy core

    def _fire(self, invariant: str, *, time: float, magnitude: float,
              threshold: float, error_cls: type, message: str,
              cell: Optional[Tuple[int, ...]] = None,
              repair: Optional[Callable[[], None]] = None,
              fatal: bool = False) -> bool:
        """Record a violation and act on it; True when a repair ran."""
        if self.mode == "repair" and repair is not None:
            action = "repair"
        elif self.mode == "strict" or fatal:
            action = "abort"
        else:
            action = "observe"
        report = HealthReport(
            where=self.where, invariant=invariant, time=float(time),
            magnitude=float(magnitude), threshold=float(threshold),
            action=action, cell=cell,
            trend=self.log.trend(invariant, magnitude), message=message)
        self.log.record(report)
        if action == "abort":
            raise error_cls(message, report=report)
        if action == "repair":
            repair()
            return True
        return False

    # ------------------------------------------------------------------
    # Fokker-Planck density invariants (core/, delay/, multisource/)

    def check_fp_density(self, density: np.ndarray, grid, t: float,
                         absorbed: float = 0.0) -> None:
        """Finiteness, positivity and mass conservation of an FP density.

        Runs once per output interval; mutates *density* in place only in
        repair mode.  *absorbed* is the mass fraction legitimately removed
        by an absorbing boundary, so the conservation target is
        ``1 - absorbed``.
        """
        total = float(density.sum())
        # density >= 0 on the healthy path, so a finite sum certifies every
        # cell; a NaN/Inf anywhere poisons the sum (same certificate the
        # pre-health check used).
        if not (total < np.inf):
            self._fire_non_finite_density(density, grid, t, absorbed)
            total = float(density.sum())

        min_value = float(density.min())
        if min_value < -NEGATIVE_TOLERANCE:
            flat_index = int(np.argmin(density))
            cell = tuple(int(i) for i in
                         np.unravel_index(flat_index, density.shape))

            def _clamp() -> None:
                np.maximum(density, 0.0, out=density)

            self._fire(
                "positivity", time=t, magnitude=-min_value,
                threshold=NEGATIVE_TOLERANCE, error_cls=NegativeDensityError,
                cell=cell, repair=_clamp,
                message=(f"density cell {cell} negative ({min_value:.3e}) "
                         f"at t={t:.6g}"))
            total = float(density.sum())

        mass = total * grid.cell_area
        expected = 1.0 - absorbed
        drift = abs(mass - expected)
        if drift > MASS_TOLERANCE:

            def _renormalize() -> None:
                if mass > 0.0 and expected > 0.0:
                    np.multiply(density, expected / mass, out=density)

            self._fire(
                "mass", time=t, magnitude=drift, threshold=MASS_TOLERANCE,
                error_cls=MassConservationError, repair=_renormalize,
                message=(f"total mass {mass:.12g} drifted {drift:.3e} from "
                         f"conservation target {expected:.12g} at t={t:.6g}"))

    def check_fp_half_step(self, intermediate: np.ndarray, grid,
                           t: float) -> None:
        """Finiteness and positivity of an ADI half-step intermediate.

        The Peaceman-Rachford intermediate ``f*`` is a genuine density
        candidate (its upwind half is positivity-preserving and its
        implicit factor is an M-matrix), so non-finite values or negatives
        beyond rounding noise flag the same failures the committed-density
        checks do — caught half a step earlier.  Mass is *not* checked
        here: the intermediate legitimately differs from the conservation
        target by in-flight boundary outflow, which only the committed
        density accounts for.  The stashed copy is never mutated, so there
        is no repair; ``repair`` mode degrades to observe.
        """
        total = float(intermediate.sum())
        if not (total < np.inf):
            bad = np.flatnonzero(~np.isfinite(intermediate.ravel()))
            n_bad = int(bad.size)
            cell = (int(bad[0]),) if n_bad else None
            self._fire(
                "finiteness", time=t, magnitude=float(n_bad), threshold=0.0,
                error_cls=NonFiniteStateError, cell=cell, fatal=True,
                message=(f"ADI half-step intermediate non-finite at "
                         f"t={t:.6g}: {n_bad} bad cells, first at {cell}"))

        min_value = float(intermediate.min())
        if min_value < -NEGATIVE_TOLERANCE:
            cell = (int(np.argmin(intermediate)),)
            self._fire(
                "positivity", time=t, magnitude=-min_value,
                threshold=NEGATIVE_TOLERANCE, error_cls=NegativeDensityError,
                cell=cell,
                message=(f"ADI half-step intermediate cell {cell} negative "
                         f"({min_value:.3e}) at t={t:.6g}"))

    def _fire_non_finite_density(self, density: np.ndarray, grid, t: float,
                                 absorbed: float) -> None:
        bad = np.flatnonzero(~np.isfinite(density.ravel()))
        n_bad = int(bad.size)
        cell = (tuple(int(i) for i in
                      np.unravel_index(int(bad[0]), density.shape))
                if n_bad else None)

        def _scrub() -> None:
            np.nan_to_num(density, copy=False, nan=0.0,
                          posinf=0.0, neginf=0.0)
            remaining = grid.total_mass(density)
            expected = 1.0 - absorbed
            if remaining <= 0.0 or expected <= 0.0:
                raise NonFiniteStateError(
                    f"density unrecoverable at t={t:.6g}: no finite mass "
                    f"left after scrubbing {n_bad} non-finite cells")
            np.multiply(density, expected / remaining, out=density)

        self._fire(
            "finiteness", time=t, magnitude=float(n_bad), threshold=0.0,
            error_cls=NonFiniteStateError, cell=cell, repair=_scrub,
            fatal=True,
            message=(f"density non-finite at t={t:.6g}: {n_bad} bad cells, "
                     f"first at {cell}"))

    # ------------------------------------------------------------------
    # generic array finiteness (ODE / SDE batch engines)

    def check_finite_block(self, states: np.ndarray, t: float, *,
                           label: str = "state",
                           repair: Optional[Callable[[], None]] = None,
                           fatal: bool = False) -> bool:
        """Finiteness of a trajectory/path block; True when repaired."""
        if np.isfinite(states).all():
            return False
        bad = np.argwhere(~np.isfinite(states))
        cell = tuple(int(i) for i in bad[0])
        n_bad = int(bad.shape[0])
        return self._fire(
            "finiteness", time=t, magnitude=float(n_bad), threshold=0.0,
            error_cls=NonFiniteStateError, cell=cell, repair=repair,
            fatal=fatal,
            message=(f"{label}: {n_bad} non-finite entries at t={t:.6g}, "
                     f"first at index {cell}"))

    def check_step_size(self, dt: float, span: float, *,
                        label: str = "integrator") -> bool:
        """Step-size sanity: dt must resolve the integration horizon."""
        if span <= 0.0 or dt <= span:
            return False
        return self._fire(
            "step-size", time=0.0, magnitude=float(dt),
            threshold=float(span), error_cls=StepSizeError,
            message=(f"{label}: dt={dt:.6g} exceeds the integration "
                     f"horizon {span:.6g}"))

    def check_min_step(self, dt: float, min_dt: float, t: float, *,
                       label: str = "adaptive integrator") -> bool:
        """Step-size collapse in an adaptive integrator (strict aborts;
        otherwise the caller's original error still follows)."""
        if dt >= min_dt:
            return False
        return self._fire(
            "step-size", time=t, magnitude=float(dt),
            threshold=float(min_dt), error_cls=StepSizeError,
            message=(f"{label}: step {dt:.3e} shrank below the minimum "
                     f"{min_dt:.3e} at t={t:.6g}"))

    # ------------------------------------------------------------------
    # discrete-event invariants (queueing/)

    def check_queue_value(self, name: str, value: float, t: float,
                          repair: Optional[Callable[[], None]] = None) -> bool:
        """Queue non-negativity for a live state or a recorded sample."""
        if value >= 0.0:
            return False
        return self._fire(
            "queue", time=t, magnitude=float(-value), threshold=0.0,
            error_cls=QueueInvariantError, repair=repair,
            message=(f"queue '{name}' went negative ({value:.6g}) "
                     f"at t={t:.6g}"))

    def check_event_budget(self, executed: int, max_events: Optional[int],
                           t: float) -> bool:
        """Total-event budget watchdog (fires at most once per run)."""
        if max_events is None or executed <= max_events or self._budget_fired:
            return False
        self._budget_fired = True
        return self._fire(
            "event-budget", time=t, magnitude=float(executed),
            threshold=float(max_events), error_cls=EventBudgetError,
            message=(f"executed {executed} events, exceeding the budget of "
                     f"{max_events} at t={t:.6g}"))

    def check_sim_time(self, current_time: float, expected: float) -> bool:
        """Sim-time watchdog: the engine must reach each segment end."""
        if current_time >= expected - 1e-9:
            return False
        return self._fire(
            "sim-time", time=current_time,
            magnitude=float(expected - current_time), threshold=0.0,
            error_cls=SimTimeError,
            message=(f"event engine stalled at t={current_time:.6g}, "
                     f"{expected - current_time:.6g} short of segment end "
                     f"{expected:.6g}"))

    # ------------------------------------------------------------------
    # convergence / residual health (design/)

    def check_residual(self, residual: float, tol: float, *, time: float = 0.0,
                       label: str = "stationary solve",
                       repair: Optional[Callable[[], None]] = None,
                       fatal: bool = False) -> bool:
        """Residual health of a converged (or failed) stationary solve."""
        if np.isfinite(residual) and residual <= tol:
            return False
        return self._fire(
            "residual", time=time, magnitude=float(residual),
            threshold=float(tol), error_cls=ResidualHealthError,
            repair=repair, fatal=fatal,
            message=(f"{label}: residual {residual:.3e} exceeds "
                     f"tolerance {tol:.3e}"))

    # re-exported for callers that need the typed aborts directly
    error_types = {
        "finiteness": NonFiniteStateError,
        "mass": MassConservationError,
        "positivity": NegativeDensityError,
        "queue": QueueInvariantError,
        "event-budget": EventBudgetError,
        "sim-time": SimTimeError,
        "step-size": StepSizeError,
        "residual": ResidualHealthError,
    }
