"""Health-mode resolution: ``strict`` / ``repair`` / ``observe`` / ``off``.

Mirrors the backend registry's resolution order (PR 2): an explicit mode
wins, then the ``REPRO_HEALTH`` environment variable, then the default
(``observe``).  The empty string means "defer to the environment", which
keeps :class:`~repro.config.SystemParameters` serialisation stable across
machines with different environment defaults.
"""

from __future__ import annotations

import os
from typing import Optional

from ..exceptions import ConfigurationError

__all__ = [
    "DEFAULT_HEALTH",
    "HEALTH_ENV_VAR",
    "HEALTH_MODES",
    "is_known_health",
    "resolve_health",
    "validate_health",
]

HEALTH_MODES = ("strict", "repair", "observe", "off")

DEFAULT_HEALTH = "observe"

HEALTH_ENV_VAR = "REPRO_HEALTH"


def is_known_health(name: str) -> bool:
    """True for a valid mode name, including the deferring empty string."""
    return name == "" or name in HEALTH_MODES


def validate_health(name: str) -> str:
    """Return *name* if it is a valid mode, else raise ConfigurationError."""
    if name not in HEALTH_MODES:
        raise ConfigurationError(
            f"unknown health mode {name!r}; expected one of {HEALTH_MODES}")
    return name


def resolve_health(name: Optional[str] = None) -> str:
    """Resolve a possibly-empty mode request to a concrete mode.

    Resolution order: explicit *name* > ``REPRO_HEALTH`` env var > the
    ``observe`` default.  Raises ConfigurationError on unknown names from
    either source.
    """
    if name:
        return validate_health(name)
    env = os.environ.get(HEALTH_ENV_VAR, "")
    if env:
        return validate_health(env)
    return DEFAULT_HEALTH
