"""Run-time numerical health monitoring (invariant monitors + policies).

The package watches the invariants each engine is supposed to preserve —
mass conservation and positivity of Fokker-Planck densities, finiteness of
ODE/SDE state blocks, queue non-negativity and event budgets in the
discrete-event simulator, convergence residuals in the stationary solver —
and reacts according to a configurable degradation policy:

``strict``
    abort with a typed :class:`~repro.exceptions.NumericalHealthError`
    subclass (deterministic under the runner's retry taxonomy);
``repair``
    apply a conservative, logged repair (renormalize mass, clamp negative
    cells, halve dt and substep) and continue;
``observe``
    record a :class:`HealthReport` and continue unchanged (the default);
``off``
    skip monitoring entirely — bit-identical to the pre-health code paths.

Monitors are created with :meth:`HealthMonitor.create`, which returns
``None`` for ``off`` so hot paths keep their original unguarded code.
"""

from .faults import (
    KNOWN_NUMERICAL_FAULTS,
    arm_numerical_fault,
    armed_numerical_faults,
    consume_numerical_fault,
    reset_numerical_faults,
)
from .monitors import HealthMonitor
from .policy import (
    DEFAULT_HEALTH,
    HEALTH_ENV_VAR,
    HEALTH_MODES,
    is_known_health,
    resolve_health,
    validate_health,
)
from .report import HealthLog, HealthReport

__all__ = [
    "DEFAULT_HEALTH",
    "HEALTH_ENV_VAR",
    "HEALTH_MODES",
    "HealthLog",
    "HealthMonitor",
    "HealthReport",
    "KNOWN_NUMERICAL_FAULTS",
    "arm_numerical_fault",
    "armed_numerical_faults",
    "consume_numerical_fault",
    "is_known_health",
    "reset_numerical_faults",
    "resolve_health",
    "validate_health",
]
