"""Armed numerical faults: deterministic in-process poisoning hooks.

The chaos suite (``runner/faults.py``) needs to corrupt *numerical state*
inside a running solver — poison one Fokker-Planck cell with NaN, record a
negative queue-length sample — so the health monitors can be exercised end
to end.  ``FaultPlan.apply`` arms a fault here (worker-side, before the job
function runs); the instrumented engine consumes it at a fixed,
deterministic point in its execution.  Each armed fault fires exactly
``count`` times and arming is cleared at the start of every job, so faults
never leak across jobs that share a worker process.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "KNOWN_NUMERICAL_FAULTS",
    "arm_numerical_fault",
    "armed_numerical_faults",
    "consume_numerical_fault",
    "reset_numerical_faults",
]

#: ``nan-density`` poisons one FP cell with NaN right after the initial
#: density is normalised; ``negative-queue`` records a ``-1`` queue-length
#: sample halfway through a DES run.
KNOWN_NUMERICAL_FAULTS = ("nan-density", "negative-queue")

_armed: Dict[str, int] = {}


def arm_numerical_fault(kind: str, count: int = 1) -> None:
    """Arm *kind* to fire on its next *count* consumption points."""
    if kind not in KNOWN_NUMERICAL_FAULTS:
        raise ValueError(f"unknown numerical fault kind {kind!r}; "
                         f"expected one of {KNOWN_NUMERICAL_FAULTS}")
    _armed[kind] = _armed.get(kind, 0) + int(count)


def consume_numerical_fault(kind: str) -> bool:
    """True (and decrement) when *kind* is armed; False otherwise."""
    remaining = _armed.get(kind, 0)
    if remaining <= 0:
        return False
    if remaining == 1:
        del _armed[kind]
    else:
        _armed[kind] = remaining - 1
    return True


def armed_numerical_faults() -> Tuple[str, ...]:
    """Currently armed fault kinds (for tests and diagnostics)."""
    return tuple(sorted(kind for kind, n in _armed.items() if n > 0))


def reset_numerical_faults() -> None:
    """Disarm everything (called at the start of every runner job)."""
    _armed.clear()
