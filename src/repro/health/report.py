"""Structured health reports and the per-run log that accumulates them.

A :class:`HealthReport` is one invariant violation: where it fired, at what
simulation time, which invariant, how large the violation was against its
threshold, what the policy did about it, and a short trend window of the
most recent magnitudes for the same invariant (so a reader can tell a
one-off glitch from a divergence ramp).  A :class:`HealthLog` collects the
reports of one run together with repair counters, and serialises to a
JSON-friendly summary that rides inside runner job values and journals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["HealthLog", "HealthReport", "TREND_WINDOW"]

#: Number of recent magnitudes kept per invariant for the trend field.
TREND_WINDOW = 5

#: Hard cap on stored reports per log; a diverging run can fire one report
#: per output interval, and the log must stay O(1) regardless.
MAX_STORED_REPORTS = 256


@dataclass(frozen=True)
class HealthReport:
    """One invariant violation observed by a monitor.

    Attributes
    ----------
    where:
        Dotted location of the monitor, e.g. ``"core.solver"``.
    invariant:
        Which invariant fired: ``"finiteness"``, ``"mass"``,
        ``"positivity"``, ``"queue"``, ``"event-budget"``, ``"sim-time"``,
        ``"step-size"`` or ``"residual"``.
    time:
        Simulation time (or iteration count) at which the check ran.
    magnitude:
        Size of the violation (units depend on the invariant).
    threshold:
        The limit the magnitude crossed.
    action:
        What the policy did: ``"abort"``, ``"repair"`` or ``"observe"``.
    cell:
        For grid/array invariants, the index of the first offending entry
        (e.g. the first non-finite Fokker-Planck cell), else ``None``.
    trend:
        The most recent magnitudes recorded for this invariant (oldest
        first, including this one), capped at :data:`TREND_WINDOW`.
    message:
        Human-readable one-liner.
    """

    where: str
    invariant: str
    time: float
    magnitude: float
    threshold: float
    action: str
    cell: Optional[Tuple[int, ...]] = None
    trend: Tuple[float, ...] = ()
    message: str = ""

    def to_dict(self) -> dict:
        """JSON-friendly payload (tuples become lists)."""
        return {
            "where": self.where,
            "invariant": self.invariant,
            "time": self.time,
            "magnitude": self.magnitude,
            "threshold": self.threshold,
            "action": self.action,
            "cell": list(self.cell) if self.cell is not None else None,
            "trend": list(self.trend),
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthReport":
        cell = data.get("cell")
        return cls(
            where=data["where"],
            invariant=data["invariant"],
            time=float(data["time"]),
            magnitude=float(data["magnitude"]),
            threshold=float(data["threshold"]),
            action=data["action"],
            cell=tuple(int(i) for i in cell) if cell is not None else None,
            trend=tuple(float(v) for v in data.get("trend", ())),
            message=data.get("message", ""),
        )


@dataclass
class HealthLog:
    """All health activity of one run: reports, repair counts, trends."""

    mode: str
    where: str = ""
    reports: List[HealthReport] = field(default_factory=list)
    repairs: Dict[str, int] = field(default_factory=dict)
    n_reports: int = 0
    _trends: Dict[str, Deque[float]] = field(default_factory=dict, repr=False)

    def trend(self, invariant: str, magnitude: float) -> Tuple[float, ...]:
        """Push *magnitude* into the invariant's trend window, return it."""
        window = self._trends.get(invariant)
        if window is None:
            window = self._trends[invariant] = deque(maxlen=TREND_WINDOW)
        window.append(float(magnitude))
        return tuple(window)

    def record(self, report: HealthReport) -> None:
        """Count a report (stored verbatim up to a fixed cap)."""
        self.n_reports += 1
        if len(self.reports) < MAX_STORED_REPORTS:
            self.reports.append(report)
        if report.action == "repair":
            self.repairs[report.invariant] = (
                self.repairs.get(report.invariant, 0) + 1)

    @property
    def n_repairs(self) -> int:
        """Total number of repairs applied across all invariants."""
        return sum(self.repairs.values())

    def merge(self, other: "HealthLog") -> None:
        """Fold another log (e.g. from an ensemble shard) into this one."""
        for report in other.reports:
            if len(self.reports) < MAX_STORED_REPORTS:
                self.reports.append(report)
        self.n_reports += other.n_reports
        for invariant, count in other.repairs.items():
            self.repairs[invariant] = self.repairs.get(invariant, 0) + count

    def summary(self) -> dict:
        """JSON-friendly digest for job values / journals / CLI display."""
        return {
            "mode": self.mode,
            "where": self.where,
            "n_reports": self.n_reports,
            "n_repairs": self.n_repairs,
            "repairs": dict(self.repairs),
            "reports": [report.to_dict() for report in self.reports],
        }

    @classmethod
    def from_summary(cls, data: dict) -> "HealthLog":
        """Rebuild a log from :meth:`summary` output (trend state is not
        restored; only the recorded reports and counters are)."""
        log = cls(mode=data.get("mode", "observe"),
                  where=data.get("where", ""))
        log.reports = [HealthReport.from_dict(r)
                       for r in data.get("reports", ())]
        log.repairs = {str(k): int(v)
                       for k, v in data.get("repairs", {}).items()}
        log.n_reports = int(data.get("n_reports", len(log.reports)))
        return log
