"""Equilibrium location and local stability classification.

The limit point identified by Theorem 1 is the state where both drifts
vanish: ``dq/dt = λ − μ = 0`` (so ``λ = μ``) and ``dλ/dt = g(q, λ) = 0``.
For the JRJ law ``g`` never vanishes pointwise (it is ``+C0`` on one side of
the switching line and ``−C1 λ`` on the other); the equilibrium is instead
the sliding point on the switching line ``q = q̂`` that the spiral contracts
towards.  :func:`find_equilibrium` handles both situations -- a genuine zero
of the vector field when one exists, and the switching-line limit point
otherwise -- and :func:`classify_equilibrium` reports the local character
from a (numerical) Jacobian, smoothing the switching discontinuity over a
small window so the linearisation is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl

__all__ = ["Equilibrium", "find_equilibrium", "classify_equilibrium"]


@dataclass(frozen=True)
class Equilibrium:
    """An equilibrium (or switching-line limit point) of the reduced system.

    Attributes
    ----------
    queue:
        Queue length at the equilibrium.
    rate:
        Arrival rate at the equilibrium.
    is_sliding:
        ``True`` when the point is a limit point on the control law's
        switching line (the generic situation for the JRJ law) rather than a
        pointwise zero of the vector field.
    """

    queue: float
    rate: float
    is_sliding: bool

    @property
    def growth_rate(self) -> float:
        """Growth rate ``ν`` at the equilibrium (zero by construction)."""
        return 0.0


@dataclass(frozen=True)
class EquilibriumClassification:
    """Eigenvalue-based classification of the local dynamics."""

    eigenvalues: tuple
    classification: str
    spectral_abscissa: float

    @property
    def is_stable(self) -> bool:
        """True when every eigenvalue has a non-positive real part."""
        return self.spectral_abscissa <= 1e-9


def find_equilibrium(control: RateControl, params: SystemParameters
                     ) -> Equilibrium:
    """Locate the operating point the reduced system converges to.

    The arrival-rate coordinate is always ``μ`` (the queue neither grows nor
    drains there).  The queue coordinate is the control law's target queue
    ``q̂`` when the law has one (the JRJ and linear laws expose
    ``q_target``); otherwise a bisection over ``q`` looks for a zero of
    ``g(q, μ)``.
    """
    q_target = getattr(control, "q_target", None)
    if q_target is not None:
        drift_below = float(np.asarray(control.drift(max(q_target - 1e-6, 0.0),
                                                     params.mu)))
        drift_above = float(np.asarray(control.drift(q_target + 1e-6, params.mu)))
        sliding = drift_below > 0.0 > drift_above
        return Equilibrium(queue=float(q_target), rate=params.mu,
                           is_sliding=sliding)

    # Generic law: search for a genuine zero of g(q, mu) on a wide interval.
    q_low, q_high = 0.0, max(10.0 * params.q_target, 100.0)
    samples = np.linspace(q_low, q_high, 2001)
    drifts = np.asarray(control.drift(samples, np.full_like(samples, params.mu)))
    sign_changes = np.where(np.sign(drifts[:-1]) * np.sign(drifts[1:]) < 0)[0]
    if sign_changes.size == 0:
        raise ValueError("control law has no equilibrium queue in the search range")
    index = int(sign_changes[0])
    # Linear interpolation of the crossing.
    q0, q1 = samples[index], samples[index + 1]
    d0, d1 = drifts[index], drifts[index + 1]
    q_star = q0 if d1 == d0 else q0 - d0 * (q1 - q0) / (d1 - d0)
    return Equilibrium(queue=float(q_star), rate=params.mu, is_sliding=False)


def classify_equilibrium(control: RateControl, params: SystemParameters,
                         equilibrium: Optional[Equilibrium] = None,
                         smoothing: float = 0.5) -> EquilibriumClassification:
    """Classify the local dynamics around the equilibrium.

    The vector field is ``F(q, λ) = (λ − μ, g(q, λ))``.  A centred finite
    difference with half-width *smoothing* (in queue units, and the
    proportional amount in rate units) yields an averaged Jacobian that is
    well defined even across the JRJ switching line; its eigenvalues give
    the familiar node / focus / centre / saddle classification.
    """
    eq = equilibrium if equilibrium is not None else find_equilibrium(control, params)
    dq = max(smoothing, 1e-6)
    dlam = max(smoothing * params.mu / max(params.q_target, 1.0), 1e-6)

    def smoothed_drift(q: float, lam: float) -> float:
        # Average the drift over a window straddling the switching line so
        # the linearisation sees the Filippov (sliding) average rather than
        # a single branch; away from the line this reduces to the plain
        # drift up to O(dq) smoothing.
        above = float(np.asarray(control.drift(q + dq, lam)))
        below = float(np.asarray(control.drift(max(q - dq, 0.0), lam)))
        return 0.5 * (above + below)

    def field(q: float, lam: float) -> np.ndarray:
        return np.array([lam - params.mu, smoothed_drift(q, lam)])

    f_q_plus = field(eq.queue + dq, eq.rate)
    f_q_minus = field(max(eq.queue - dq, 0.0), eq.rate)
    f_l_plus = field(eq.queue, eq.rate + dlam)
    f_l_minus = field(eq.queue, max(eq.rate - dlam, 0.0))

    jacobian = np.column_stack([
        (f_q_plus - f_q_minus) / (2.0 * dq),
        (f_l_plus - f_l_minus) / (2.0 * dlam),
    ])
    eigenvalues = np.linalg.eigvals(jacobian)
    real_parts = np.real(eigenvalues)
    imag_parts = np.imag(eigenvalues)
    spectral_abscissa = float(np.max(real_parts))

    if np.all(np.abs(imag_parts) > 1e-12):
        if spectral_abscissa < -1e-9:
            kind = "stable focus (convergent spiral)"
        elif spectral_abscissa > 1e-9:
            kind = "unstable focus (divergent spiral)"
        else:
            kind = "centre (neutral cycles)"
    else:
        if np.all(real_parts < -1e-9):
            kind = "stable node"
        elif np.all(real_parts > 1e-9):
            kind = "unstable node"
        elif np.any(real_parts > 1e-9) and np.any(real_parts < -1e-9):
            kind = "saddle"
        else:
            kind = "degenerate"

    return EquilibriumClassification(
        eigenvalues=tuple(complex(ev) for ev in eigenvalues),
        classification=kind,
        spectral_abscissa=spectral_abscissa)
