"""Spiral-versus-limit-cycle diagnosis of characteristic trajectories.

The paper's central qualitative results are phrased in exactly these terms:

* without feedback delay, the JRJ characteristic is a **convergent spiral**
  homing in on the limit point ``(q̂, μ)`` (Theorem 1, Figure 3);
* with feedback delay (Section 7), or for the linear-decrease algorithm,
  the trajectory settles onto a **limit cycle** -- sustained oscillations.

The discriminator used here is the sequence of successive excursions of the
queue above the target: for a convergent spiral the peak heights contract
(ratio < 1 and the amplitude goes to zero), for a limit cycle they approach
a positive constant (ratio → 1 with non-vanishing amplitude).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import AnalysisError
from ..numerics.spectral import detect_peaks
from .trajectory import CharacteristicBatch, CharacteristicTrajectory

__all__ = [
    "SpiralAnalysis",
    "analyze_spiral",
    "analyze_spiral_batch",
    "peak_contraction_ratios",
    "is_convergent_spiral",
]


@dataclass(frozen=True)
class SpiralAnalysis:
    """Summary of the convergence behaviour of one trajectory.

    Attributes
    ----------
    peak_times:
        Times of successive queue-length peaks.
    peak_amplitudes:
        Peak queue excursions above the target ``q̂`` (non-negative).
    contraction_ratios:
        Ratios of successive peak amplitudes.
    converges:
        ``True`` when the amplitudes contract towards zero.
    limit_cycle_amplitude:
        Mean amplitude of the last few peaks -- effectively zero for a
        convergent spiral and positive for a limit cycle.
    """

    peak_times: np.ndarray
    peak_amplitudes: np.ndarray
    contraction_ratios: np.ndarray
    converges: bool
    limit_cycle_amplitude: float

    @property
    def n_oscillations(self) -> int:
        """Number of queue-length peaks observed."""
        return int(self.peak_amplitudes.size)

    @property
    def mean_contraction(self) -> float:
        """Mean of the successive-peak ratios (NaN when fewer than two peaks)."""
        if self.contraction_ratios.size == 0:
            return float("nan")
        return float(np.mean(self.contraction_ratios))


def peak_contraction_ratios(amplitudes: Sequence[float]) -> np.ndarray:
    """Ratios ``a_{k+1} / a_k`` of successive positive amplitudes."""
    amplitudes = np.asarray([a for a in amplitudes if a > 0.0], dtype=float)
    if amplitudes.size < 2:
        return np.zeros(0)
    return amplitudes[1:] / amplitudes[:-1]


def analyze_spiral(trajectory: CharacteristicTrajectory,
                   settle_fraction: float = 0.3,
                   amplitude_floor: float = 1e-3) -> SpiralAnalysis:
    """Analyse the queue-peak sequence of *trajectory*.

    Parameters
    ----------
    trajectory:
        A characteristic (or delayed-characteristic) trajectory.
    settle_fraction:
        Fraction of the final peaks used to estimate the limit-cycle
        amplitude (at least one peak).
    amplitude_floor:
        Amplitudes below this value (in packets) are treated as zero when
        deciding convergence.

    Raises
    ------
    AnalysisError
        If the trajectory contains no queue-length peaks at all (e.g. a
        monotone approach) -- callers treat that case as trivially
        convergent and should catch the exception where appropriate.
    """
    excursion = trajectory.queue - trajectory.q_target
    peak_indices = detect_peaks(trajectory.queue)
    if not peak_indices:
        raise AnalysisError("trajectory has no queue-length peaks to analyse")

    peak_indices = np.asarray(peak_indices, dtype=int)
    peak_times = trajectory.times[peak_indices]
    peak_amplitudes = np.maximum(excursion[peak_indices], 0.0)

    positive = peak_amplitudes > amplitude_floor
    ratios = peak_contraction_ratios(peak_amplitudes[positive])

    n_tail = max(1, int(round(settle_fraction * peak_amplitudes.size)))
    tail_amplitude = float(np.mean(peak_amplitudes[-n_tail:]))

    if peak_amplitudes.size == 1:
        converges = tail_amplitude <= amplitude_floor or True
        # A single overshoot followed by settling is the convergent case.
        converges = True
    elif ratios.size == 0:
        converges = True
    else:
        final_ratio = float(ratios[-1])
        shrinking = final_ratio < 0.98
        vanished = tail_amplitude <= max(amplitude_floor,
                                         0.05 * float(np.max(peak_amplitudes)))
        converges = shrinking or vanished

    return SpiralAnalysis(peak_times=peak_times,
                          peak_amplitudes=peak_amplitudes,
                          contraction_ratios=ratios,
                          converges=converges,
                          limit_cycle_amplitude=tail_amplitude)


def analyze_spiral_batch(batch: CharacteristicBatch,
                         settle_fraction: float = 0.3,
                         amplitude_floor: float = 1e-3
                         ) -> List[Optional[SpiralAnalysis]]:
    """Peak/contraction extraction for every member of a characteristic batch.

    Each member goes through exactly :func:`analyze_spiral` (the extraction
    is shared, so batched sweeps report the same peaks, contraction ratios
    and verdicts as their scalar counterparts).  Members without any queue
    peak -- the monotone-settling case that makes the scalar function raise
    -- are reported as ``None`` so one featureless trajectory cannot abort
    a whole sweep.
    """
    analyses: List[Optional[SpiralAnalysis]] = []
    for index in range(batch.batch_size):
        try:
            analyses.append(analyze_spiral(batch.trajectory(index),
                                           settle_fraction=settle_fraction,
                                           amplitude_floor=amplitude_floor))
        except AnalysisError:
            analyses.append(None)
    return analyses


def is_convergent_spiral(trajectory: CharacteristicTrajectory,
                         amplitude_floor: float = 1e-3) -> bool:
    """Convenience predicate: does the trajectory converge to the limit point?

    Trajectories with no peaks at all (monotone settling) count as
    convergent.
    """
    try:
        analysis = analyze_spiral(trajectory, amplitude_floor=amplitude_floor)
    except AnalysisError:
        return True
    return analysis.converges


def oscillation_period_from_peaks(analysis: SpiralAnalysis) -> float:
    """Mean time between successive peaks (NaN with fewer than two peaks)."""
    if analysis.peak_times.size < 2:
        return float("nan")
    return float(np.mean(np.diff(analysis.peak_times)))
