"""Characteristic trajectories of the reduced system.

A characteristic is the path a 'particle' obeying both the control law and
the queue dynamics traces in the ``(q, ν)`` phase plane:

    dq/dt = λ − μ  (= ν),      dλ/dt = g(q, λ).

The paper's stability and fairness arguments all follow the geometry of
these curves; :func:`integrate_characteristic` produces them and
:class:`CharacteristicTrajectory` provides the derived series (growth rate,
distance to the limit point, crossings of the target line) that the later
analyses consume.

:func:`integrate_characteristic_batch` is the vectorized form: it runs a
whole family of characteristics -- a grid of initial conditions and/or
per-trajectory parameter columns (``c0``/``c1``/``q_target``/``mu``) -- as a
single batched RK4 integration, and :class:`CharacteristicBatch` exposes the
family with vectorized derived series.  Every member of the batch is bit-
identical to the scalar :func:`integrate_characteristic` run with the same
point parameters, so the sweeps built on top (Theorem 1 grids, Poincaré
sections, phase portraits) keep their scalar-era results exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..exceptions import ConfigurationError
from ..numerics.ode import BatchODEResult, integrate_fixed, integrate_fixed_batch

__all__ = [
    "CharacteristicTrajectory",
    "CharacteristicBatch",
    "integrate_characteristic",
    "integrate_characteristic_batch",
]

#: Parameter columns understood by :func:`integrate_characteristic_batch`
#: that are consumed by the queue dynamics rather than the control law.
_DYNAMICS_COLUMNS = ("mu",)


@dataclass
class CharacteristicTrajectory:
    """A single characteristic path in the ``(q, λ)`` plane.

    Attributes
    ----------
    times:
        Sample times.
    queue:
        Queue length ``q(t)`` along the path.
    rate:
        Arrival rate ``λ(t)`` along the path.
    mu:
        Service rate, kept so growth-rate and distance computations need no
        extra argument.
    q_target:
        Target queue length ``q̂`` of the control law.
    """

    times: np.ndarray
    queue: np.ndarray
    rate: np.ndarray
    mu: float
    q_target: float

    @property
    def growth_rate(self) -> np.ndarray:
        """Queue growth rate ``ν(t) = λ(t) − μ``."""
        return self.rate - self.mu

    @property
    def final_queue(self) -> float:
        """Queue length at the end of the run."""
        return float(self.queue[-1])

    @property
    def final_rate(self) -> float:
        """Arrival rate at the end of the run."""
        return float(self.rate[-1])

    def distance_to_limit_point(self) -> np.ndarray:
        """Euclidean distance to the Theorem 1 limit point ``(q̂, μ)``.

        Queue and rate are normalised by the target queue and the service
        rate respectively so the two coordinates are comparable.
        """
        q_scale = max(self.q_target, 1.0)
        r_scale = max(self.mu, 1e-12)
        return np.sqrt(((self.queue - self.q_target) / q_scale) ** 2
                       + ((self.rate - self.mu) / r_scale) ** 2)

    def target_crossings(self) -> List[int]:
        """Indices where the path crosses the ``q = q̂`` switching line."""
        offset = self.queue - self.q_target
        if offset.size < 2:
            return []
        previous = offset[:-1]
        current = offset[1:]
        mask = (previous != 0.0) & (previous * current < 0.0)
        return (np.nonzero(mask)[0] + 1).tolist()

    def settling_time(self, tolerance: float = 0.1) -> float:
        """Earliest time after which the queue stays near its final value.

        The band is relative to the final queue with an absolute floor of
        *tolerance* (same convention as
        :func:`repro.core.steady_state.relaxation_time`, but non-raising:
        the final sample is always inside its own band, so a
        still-oscillating path simply reports a time near the horizon --
        the behaviour gain-design scoring needs).
        """
        final = float(self.queue[-1])
        band = max(tolerance * abs(final), tolerance)
        inside = np.abs(self.queue - final) <= band
        settled = np.logical_and.accumulate(inside[::-1])[::-1]
        return float(self.times[int(np.argmax(settled))])

    def time_average_rate(self, skip_fraction: float = 0.2) -> float:
        """Time-average arrival rate over the trajectory tail.

        The first *skip_fraction* of the run is discarded as transient; the
        remainder is averaged with trapezoidal weights, giving the long-run
        throughput the source obtains -- the quantity used in the fairness
        analyses.
        """
        start = int(skip_fraction * self.times.size)
        start = min(max(start, 0), self.times.size - 2)
        times = self.times[start:]
        rates = self.rate[start:]
        duration = times[-1] - times[0]
        if duration <= 0.0:
            return float(rates[-1])
        return float(np.trapezoid(rates, times) / duration)


def integrate_characteristic(control: RateControl, params: SystemParameters,
                             q0: float, rate0: float, t_end: float,
                             dt: float = 0.02) -> CharacteristicTrajectory:
    """Integrate one characteristic of the reduced system.

    The physical constraints ``q ≥ 0`` and ``λ ≥ 0`` are enforced by
    projection after every step, and the queue drift is pinned to zero when
    the queue is empty and the arrival rate is below the service rate
    (the paper's convention for ν at the boundary).
    """

    def rhs(_t: float, state: np.ndarray) -> np.ndarray:
        q, lam = state
        dq = lam - params.mu
        if q <= 0.0 and dq < 0.0:
            dq = 0.0
        dlam = control.drift(q, lam)
        return np.array([dq, dlam])

    def project(state: np.ndarray) -> np.ndarray:
        return np.array([max(state[0], 0.0), max(state[1], 0.0)])

    result = integrate_fixed(rhs, [q0, rate0], t_end=t_end, dt=dt,
                             projection=project)
    q_target = getattr(control, "q_target", params.q_target)
    return CharacteristicTrajectory(times=result.times,
                                    queue=result.states[:, 0],
                                    rate=result.states[:, 1],
                                    mu=params.mu, q_target=q_target)


@dataclass
class CharacteristicBatch:
    """A family of characteristics integrated as one state block.

    Attributes
    ----------
    times:
        Shared sample times, shape ``(n,)``.
    queue, rate:
        Queue lengths and arrival rates along every path, shape
        ``(n, batch)``.  Rows past a trajectory's ``n_samples`` (possible
        only under event termination) are frozen copies of its last state.
    mu, q_target:
        Per-trajectory service rate and control target, shape ``(batch,)``.
    n_samples:
        Valid samples per trajectory.
    event_times:
        Terminal-event times (``NaN`` where no event fired).
    """

    times: np.ndarray
    queue: np.ndarray
    rate: np.ndarray
    mu: np.ndarray
    q_target: np.ndarray
    n_samples: np.ndarray
    event_times: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of characteristics in the family."""
        return self.queue.shape[1]

    @property
    def growth_rate(self) -> np.ndarray:
        """Queue growth rates ``ν(t) = λ(t) − μ``, shape ``(n, batch)``."""
        return self.rate - self.mu[None, :]

    @property
    def final_queues(self) -> np.ndarray:
        """Queue length of every path at its last valid sample."""
        return self.queue[self.n_samples - 1, np.arange(self.batch_size)]

    @property
    def final_rates(self) -> np.ndarray:
        """Arrival rate of every path at its last valid sample."""
        return self.rate[self.n_samples - 1, np.arange(self.batch_size)]

    def distance_to_limit_point(self) -> np.ndarray:
        """Normalised distances to each path's limit point, shape ``(n, batch)``.

        Element-wise identical to
        :meth:`CharacteristicTrajectory.distance_to_limit_point` evaluated on
        each extracted trajectory.
        """
        q_scale = np.maximum(self.q_target, 1.0)[None, :]
        r_scale = np.maximum(self.mu, 1e-12)[None, :]
        return np.sqrt(((self.queue - self.q_target[None, :]) / q_scale) ** 2
                       + ((self.rate - self.mu[None, :]) / r_scale) ** 2)

    def target_crossing_counts(self) -> np.ndarray:
        """Number of ``q = q̂`` crossings per trajectory, shape ``(batch,)``.

        Vectorized across the family; agrees with
        ``len(trajectory.target_crossings())`` for every member (frozen
        tails repeat the last sample and can contribute no sign change).
        """
        offsets = self.queue - self.q_target[None, :]
        previous = offsets[:-1]
        current = offsets[1:]
        mask = (previous != 0.0) & (previous * current < 0.0)
        return mask.sum(axis=0)

    def settling_times(self, tolerance: float = 0.1) -> np.ndarray:
        """Per-trajectory settling times, shape ``(batch,)``.

        Vectorized over the family; agrees with
        :meth:`CharacteristicTrajectory.settling_time` for every member
        (frozen tail rows repeat the final state, so they are always inside
        the band and cannot shift the earliest settled index).
        """
        final = self.final_queues
        band = np.maximum(tolerance * np.abs(final), tolerance)
        inside = np.abs(self.queue - final[None, :]) <= band[None, :]
        settled = np.logical_and.accumulate(inside[::-1], axis=0)[::-1]
        return self.times[np.argmax(settled, axis=0)]

    def time_average_rates(self, skip_fraction: float = 0.2) -> np.ndarray:
        """Per-trajectory tail-averaged throughput, shape ``(batch,)``."""
        return np.array([self.trajectory(i).time_average_rate(skip_fraction)
                         for i in range(self.batch_size)])

    def event_time(self, index: int) -> Optional[float]:
        """Terminal-event time of one trajectory, or ``None``."""
        value = float(self.event_times[index])
        return None if np.isnan(value) else value

    def trajectory(self, index: int) -> CharacteristicTrajectory:
        """Extract one member as a scalar :class:`CharacteristicTrajectory`.

        Bit-identical to :func:`integrate_characteristic` run with the
        member's initial conditions and parameter column values.
        """
        n = int(self.n_samples[index])
        return CharacteristicTrajectory(times=self.times[:n],
                                        queue=self.queue[:n, index],
                                        rate=self.rate[:n, index],
                                        mu=float(self.mu[index]),
                                        q_target=float(self.q_target[index]))

    def trajectories(self) -> List[CharacteristicTrajectory]:
        """All members as scalar trajectories."""
        return [self.trajectory(i) for i in range(self.batch_size)]


def _broadcast_columns(arrays: Mapping[str, np.ndarray]) -> Mapping[str, np.ndarray]:
    """Broadcast 1-D per-trajectory columns to their common batch length."""
    shapes = [value.shape for value in arrays.values()]
    try:
        (batch,) = np.broadcast_shapes(*shapes)
    except ValueError as error:
        raise ConfigurationError(
            f"per-trajectory columns do not broadcast: {error}") from None
    return {name: np.ascontiguousarray(np.broadcast_to(value, (batch,)))
            for name, value in arrays.items()}


def integrate_characteristic_batch(
        control: RateControl, params: SystemParameters,
        q0, rate0, t_end: float, dt: float = 0.02,
        columns: Optional[Mapping[str, object]] = None,
        event: Optional[Callable[[float, np.ndarray, np.ndarray], np.ndarray]] = None,
        ) -> CharacteristicBatch:
    """Integrate a family of characteristics as one batched RK4 run.

    Parameters
    ----------
    control, params:
        Control law and base system parameters shared by the family.
    q0, rate0:
        Initial queue lengths and arrival rates; scalars or 1-D arrays that
        broadcast against each other (and the columns) to the batch size.
    t_end, dt:
        Shared integration horizon and step size.
    columns:
        Optional per-trajectory parameter columns.  ``"mu"`` overrides the
        service rate of the queue dynamics; every other name is forwarded to
        ``control.drift_batch`` as a per-trajectory gain column (for
        :class:`~repro.control.jrj.JRJControl`: ``c0``, ``c1``,
        ``q_target``).  Scalars and length-``batch`` arrays both work.
    event:
        Optional batched terminal event ``event(t, states, indices)`` (see
        :data:`repro.numerics.ode.BatchRHS`); trajectories stop individually
        at their first sign change.

    Every member of the returned family is bit-identical to
    :func:`integrate_characteristic` run scalar with the same point values.
    """
    q0 = np.atleast_1d(np.asarray(q0, dtype=float))
    rate0 = np.atleast_1d(np.asarray(rate0, dtype=float))
    raw_columns = {name: np.atleast_1d(np.asarray(value, dtype=float))
                   for name, value in dict(columns or {}).items()}
    reserved = sorted(set(raw_columns) & {"q0", "rate0"})
    if reserved:
        raise ConfigurationError(
            f"initial conditions are arguments, not columns: pass "
            f"{', '.join(reserved)} directly to "
            f"integrate_characteristic_batch")
    broadcast = _broadcast_columns({"q0": q0, "rate0": rate0, **raw_columns})
    q0 = broadcast.pop("q0")
    rate0 = broadcast.pop("rate0")
    mu_column = broadcast.pop("mu", None)
    gain_columns = dict(broadcast)

    batch = q0.shape[0]
    mu = (mu_column if mu_column is not None
          else np.full(batch, float(params.mu)))
    heterogeneous_mu = mu_column is not None
    mu_scalar = float(params.mu)

    # Fail fast on unsupported gain columns (rather than on step one).
    if gain_columns:
        probe = {name: value[:1] for name, value in gain_columns.items()}
        try:
            control.drift_batch(q0[:1], rate0[:1], **probe)
        except TypeError:
            names = ", ".join(sorted(gain_columns))
            raise ConfigurationError(
                f"{control.name} does not accept per-trajectory columns "
                f"{names}") from None

    def rhs(_t: float, states: np.ndarray, indices: np.ndarray) -> np.ndarray:
        q = states[:, 0]
        lam = states[:, 1]
        dq = lam - (mu[indices] if heterogeneous_mu else mu_scalar)
        dq = np.where((q <= 0.0) & (dq < 0.0), 0.0, dq)
        if gain_columns:
            dlam = control.drift_batch(
                q, lam, **{name: value[indices]
                           for name, value in gain_columns.items()})
        else:
            dlam = np.asarray(control.drift(q, lam), dtype=float)
        derivative = np.empty_like(states)
        derivative[:, 0] = dq
        derivative[:, 1] = dlam
        return derivative

    def project(states: np.ndarray) -> np.ndarray:
        return np.maximum(states, 0.0)

    result: BatchODEResult = integrate_fixed_batch(
        rhs, np.column_stack([q0, rate0]), t_end=t_end, dt=dt,
        projection=project, event=event)

    if "q_target" in gain_columns:
        q_target = gain_columns["q_target"]
    else:
        q_target = np.full(batch, float(getattr(control, "q_target",
                                                params.q_target)))
    return CharacteristicBatch(times=result.times,
                               queue=result.states[:, :, 0],
                               rate=result.states[:, :, 1],
                               mu=mu, q_target=q_target,
                               n_samples=result.n_samples,
                               event_times=result.event_times)
