"""Characteristic trajectories of the reduced system.

A characteristic is the path a 'particle' obeying both the control law and
the queue dynamics traces in the ``(q, ν)`` phase plane:

    dq/dt = λ − μ  (= ν),      dλ/dt = g(q, λ).

The paper's stability and fairness arguments all follow the geometry of
these curves; :func:`integrate_characteristic` produces them and
:class:`CharacteristicTrajectory` provides the derived series (growth rate,
distance to the limit point, crossings of the target line) that the later
analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..numerics.ode import integrate_fixed

__all__ = ["CharacteristicTrajectory", "integrate_characteristic"]


@dataclass
class CharacteristicTrajectory:
    """A single characteristic path in the ``(q, λ)`` plane.

    Attributes
    ----------
    times:
        Sample times.
    queue:
        Queue length ``q(t)`` along the path.
    rate:
        Arrival rate ``λ(t)`` along the path.
    mu:
        Service rate, kept so growth-rate and distance computations need no
        extra argument.
    q_target:
        Target queue length ``q̂`` of the control law.
    """

    times: np.ndarray
    queue: np.ndarray
    rate: np.ndarray
    mu: float
    q_target: float

    @property
    def growth_rate(self) -> np.ndarray:
        """Queue growth rate ``ν(t) = λ(t) − μ``."""
        return self.rate - self.mu

    @property
    def final_queue(self) -> float:
        """Queue length at the end of the run."""
        return float(self.queue[-1])

    @property
    def final_rate(self) -> float:
        """Arrival rate at the end of the run."""
        return float(self.rate[-1])

    def distance_to_limit_point(self) -> np.ndarray:
        """Euclidean distance to the Theorem 1 limit point ``(q̂, μ)``.

        Queue and rate are normalised by the target queue and the service
        rate respectively so the two coordinates are comparable.
        """
        q_scale = max(self.q_target, 1.0)
        r_scale = max(self.mu, 1e-12)
        return np.sqrt(((self.queue - self.q_target) / q_scale) ** 2
                       + ((self.rate - self.mu) / r_scale) ** 2)

    def target_crossings(self) -> List[int]:
        """Indices where the path crosses the ``q = q̂`` switching line."""
        offset = self.queue - self.q_target
        crossings: List[int] = []
        for i in range(1, offset.size):
            if offset[i - 1] == 0.0:
                continue
            if offset[i - 1] * offset[i] < 0.0:
                crossings.append(i)
        return crossings

    def time_average_rate(self, skip_fraction: float = 0.2) -> float:
        """Time-average arrival rate over the trajectory tail.

        The first *skip_fraction* of the run is discarded as transient; the
        remainder is averaged with trapezoidal weights, giving the long-run
        throughput the source obtains -- the quantity used in the fairness
        analyses.
        """
        start = int(skip_fraction * self.times.size)
        start = min(max(start, 0), self.times.size - 2)
        times = self.times[start:]
        rates = self.rate[start:]
        duration = times[-1] - times[0]
        if duration <= 0.0:
            return float(rates[-1])
        return float(np.trapezoid(rates, times) / duration)


def integrate_characteristic(control: RateControl, params: SystemParameters,
                             q0: float, rate0: float, t_end: float,
                             dt: float = 0.02) -> CharacteristicTrajectory:
    """Integrate one characteristic of the reduced system.

    The physical constraints ``q ≥ 0`` and ``λ ≥ 0`` are enforced by
    projection after every step, and the queue drift is pinned to zero when
    the queue is empty and the arrival rate is below the service rate
    (the paper's convention for ν at the boundary).
    """

    def rhs(_t: float, state: np.ndarray) -> np.ndarray:
        q, lam = state
        dq = lam - params.mu
        if q <= 0.0 and dq < 0.0:
            dq = 0.0
        dlam = control.drift(q, lam)
        return np.array([dq, dlam])

    def project(state: np.ndarray) -> np.ndarray:
        return np.array([max(state[0], 0.0), max(state[1], 0.0)])

    result = integrate_fixed(rhs, [q0, rate0], t_end=t_end, dt=dt,
                             projection=project)
    q_target = getattr(control, "q_target", params.q_target)
    return CharacteristicTrajectory(times=result.times,
                                    queue=result.states[:, 0],
                                    rate=result.states[:, 1],
                                    mu=params.mu, q_target=q_target)
