"""Poincaré return map of the characteristic system.

The proof of Theorem 1 follows the characteristic from one crossing of the
switching line ``q = q̂`` to the next and shows the excursion shrinks.  A
Poincaré section makes that argument computable for *any* control law and
*any* delay: record the state each time the trajectory crosses the section
(here: downward crossings of ``q = q̂``, i.e. entering the under-loaded half
plane), and study the induced one-dimensional return map on the crossing
amplitude.

* For a convergent spiral the return map's fixed point is the limit point
  and its slope (the contraction factor) is below one.
* For a limit cycle the crossing amplitudes approach a positive fixed point
  with |slope| reaching one from below (neutral), which is how the
  delay-induced cycles of Section 7 show up in this representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..exceptions import AnalysisError
from .trajectory import CharacteristicBatch, CharacteristicTrajectory

__all__ = ["PoincareSection", "compute_poincare_section",
           "compute_poincare_sections"]


@dataclass
class PoincareSection:
    """Successive crossings of the ``q = q̂`` section and the induced return map.

    Attributes
    ----------
    crossing_times:
        Times of the recorded crossings (one direction only).
    crossing_rates:
        Arrival rate ``λ`` at each crossing -- the section coordinate.
    mu:
        Service rate, for converting rates to excursions ``|λ − μ|``.
    """

    crossing_times: np.ndarray
    crossing_rates: np.ndarray
    mu: float

    @property
    def n_crossings(self) -> int:
        """Number of recorded crossings."""
        return int(self.crossing_rates.size)

    @property
    def excursions(self) -> np.ndarray:
        """Rate excursions ``|λ − μ|`` at the crossings."""
        return np.abs(self.crossing_rates - self.mu)

    def return_map(self) -> np.ndarray:
        """Pairs ``(x_k, x_{k+1})`` of successive excursions, shape ``(n-1, 2)``."""
        excursions = self.excursions
        if excursions.size < 2:
            return np.zeros((0, 2))
        return np.column_stack([excursions[:-1], excursions[1:]])

    def contraction_factor(self) -> float:
        """Least-squares slope of the return map through the origin.

        A value below one means successive excursions shrink (convergent
        spiral); a value of one means they are preserved (limit cycle).

        Raises
        ------
        AnalysisError
            With fewer than two crossings.
        """
        pairs = self.return_map()
        if pairs.shape[0] < 1:
            raise AnalysisError("need at least two crossings for a return map")
        x = pairs[:, 0]
        y = pairs[:, 1]
        denominator = float(np.dot(x, x))
        if denominator <= 0.0:
            return 0.0
        return float(np.dot(x, y) / denominator)

    def converges(self, tolerance: float = 0.02) -> bool:
        """True when the return map contracts (factor below ``1 − tolerance``)."""
        try:
            return self.contraction_factor() < 1.0 - tolerance
        except AnalysisError:
            return True

    def cycle_period_estimate(self) -> float:
        """Mean time between successive crossings (NaN with fewer than two)."""
        if self.crossing_times.size < 2:
            return float("nan")
        return float(np.mean(np.diff(self.crossing_times)))


def compute_poincare_section(trajectory: CharacteristicTrajectory,
                             direction: str = "down",
                             skip_fraction: float = 0.0) -> PoincareSection:
    """Record crossings of ``q = q̂`` along *trajectory*.

    Parameters
    ----------
    trajectory:
        The characteristic (or delayed) trajectory to section.
    direction:
        ``"down"`` records crossings where the queue falls through the
        target (entering the increase region), ``"up"`` the opposite,
        ``"both"`` records every crossing.
    skip_fraction:
        Fraction of the initial samples to ignore (drop the transient when
        studying the asymptotic map).

    Raises
    ------
    AnalysisError
        If no crossing is found or the direction keyword is invalid.
    """
    if direction not in ("down", "up", "both"):
        raise AnalysisError("direction must be 'down', 'up' or 'both'")

    start = int(skip_fraction * trajectory.times.size)
    times = trajectory.times[start:]
    queue = trajectory.queue[start:]
    rate = trajectory.rate[start:]
    offset = queue - trajectory.q_target

    # Vectorized crossing scan: the masks and the interpolation below apply
    # the per-sample loop's arithmetic element-wise, so the recorded
    # crossings are bit-identical to the scalar scan.
    previous = offset[:-1]
    current = offset[1:]
    changed = previous != current
    crossed_down = (previous > 0.0) & (current <= 0.0)
    crossed_up = (previous < 0.0) & (current >= 0.0)
    if direction == "down":
        wanted = crossed_down
    elif direction == "up":
        wanted = crossed_up
    else:
        wanted = crossed_down | crossed_up
    indices = np.nonzero(changed & wanted)[0] + 1

    if indices.size == 0:
        raise AnalysisError("trajectory never crosses the q = q_target section")

    previous = offset[indices - 1]
    fraction = previous / (previous - offset[indices])
    crossing_times = times[indices - 1] \
        + fraction * (times[indices] - times[indices - 1])
    crossing_rates = rate[indices - 1] \
        + fraction * (rate[indices] - rate[indices - 1])
    return PoincareSection(crossing_times=crossing_times,
                           crossing_rates=crossing_rates,
                           mu=trajectory.mu)


def compute_poincare_sections(batch: CharacteristicBatch,
                              direction: str = "down",
                              skip_fraction: float = 0.0,
                              missing: str = "raise"
                              ) -> List[Optional[PoincareSection]]:
    """Section every member of a batched characteristic family.

    Each member is sampled with :func:`compute_poincare_section`, so the
    recorded crossings match the scalar path exactly.  A family produced by
    one vectorized integration typically contains members that never reach
    the section (e.g. monotone settlers in a gain sweep); ``missing``
    decides whether those abort the sweep (``"raise"``, the scalar
    behaviour) or appear as ``None`` entries (``"none"``).
    """
    if missing not in ("raise", "none"):
        raise AnalysisError("missing must be 'raise' or 'none'")
    sections: List[Optional[PoincareSection]] = []
    for index in range(batch.batch_size):
        try:
            sections.append(compute_poincare_section(
                batch.trajectory(index), direction=direction,
                skip_fraction=skip_fraction))
        except AnalysisError:
            if missing == "raise":
                raise
            sections.append(None)
    return sections
