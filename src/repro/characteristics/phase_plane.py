"""Quadrant-by-quadrant drift analysis of the phase plane (Figure 2).

The lines ``q = q̂`` and ``ν = 0`` divide the ``(q, ν)`` plane into four
quadrants.  Section 5 of the paper reads the direction of the characteristic
in each quadrant off the signs of the two drifts:

* the Q-drift is ``ν`` (positive above the ``ν = 0`` line, negative below),
* the ν-drift is ``g(q, λ)`` (``+C0`` left of the ``q = q̂`` line, ``−C1 λ``
  right of it for the JRJ law).

Quadrant I (ν > 0, q < q̂): both drifts positive → up and to the right.
Quadrant II (ν > 0, q > q̂): Q-drift positive, ν-drift negative.
Quadrant III (ν < 0, q > q̂): both negative.
Quadrant IV (ν < 0, q < q̂): Q-drift negative, ν-drift positive.

The resulting rotation (I → II → III → IV → I) is what makes the trajectory
a cycle or spiral.  :func:`quadrant_drift_table` evaluates the actual signs
from the control law so the benchmark for Figure 2 reproduces the table, and
:func:`drift_field` samples the full vector field for phase-portrait output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl

__all__ = ["QuadrantDrift", "quadrant_drift_table", "drift_field"]

_QUADRANT_DEFINITIONS = [
    ("I", "q < q_target, v > 0"),
    ("II", "q > q_target, v > 0"),
    ("III", "q > q_target, v < 0"),
    ("IV", "q < q_target, v < 0"),
]


@dataclass(frozen=True)
class QuadrantDrift:
    """Signs of the Q- and ν-drift in one quadrant of the phase plane."""

    quadrant: str
    description: str
    q_drift_sign: int
    v_drift_sign: int
    sample_point: Tuple[float, float]

    @property
    def direction(self) -> str:
        """Compass-style description of the characteristic direction."""
        vertical = {1: "up", -1: "down", 0: "flat"}[self.v_drift_sign]
        horizontal = {1: "right", -1: "left", 0: "still"}[self.q_drift_sign]
        return f"{vertical}-{horizontal}"


def _sign(value: float, tolerance: float = 1e-12) -> int:
    if value > tolerance:
        return 1
    if value < -tolerance:
        return -1
    return 0


def quadrant_drift_table(control: RateControl, params: SystemParameters,
                         probe_offset_q: Optional[float] = None,
                         probe_offset_v: Optional[float] = None
                         ) -> List[QuadrantDrift]:
    """Evaluate the drift signs at a representative point of each quadrant.

    The probe points sit *probe_offset_q* away from the ``q = q̂`` line and
    *probe_offset_v* away from the ``ν = 0`` line (defaults: half the target
    queue and a quarter of the service rate).
    """
    q_target = getattr(control, "q_target", params.q_target)
    dq = probe_offset_q if probe_offset_q is not None else max(0.5 * q_target, 1.0)
    dv = probe_offset_v if probe_offset_v is not None else 0.25 * params.mu

    probes = {
        "I": (max(q_target - dq, 0.0), +dv),
        "II": (q_target + dq, +dv),
        "III": (q_target + dq, -dv),
        "IV": (max(q_target - dq, 0.0), -dv),
    }

    table: List[QuadrantDrift] = []
    for name, description in _QUADRANT_DEFINITIONS:
        q, v = probes[name]
        rate = v + params.mu
        q_drift = v
        v_drift = float(np.asarray(control.drift(q, rate)))
        table.append(QuadrantDrift(
            quadrant=name, description=description,
            q_drift_sign=_sign(q_drift), v_drift_sign=_sign(v_drift),
            sample_point=(q, v)))
    return table


def drift_field(control: RateControl, params: SystemParameters,
                q_values: np.ndarray, v_values: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the phase-plane vector field on a rectangular lattice.

    Returns ``(dq_dt, dv_dt)`` arrays of shape ``(len(q_values), len(v_values))``
    suitable for drawing the phase portrait of Figure 2.
    """
    q_values = np.asarray(q_values, dtype=float)
    v_values = np.asarray(v_values, dtype=float)
    q_mesh, v_mesh = np.meshgrid(q_values, v_values, indexing="ij")
    dq_dt = v_mesh.copy()
    # Queue pinned at zero cannot drain further.
    dq_dt[(q_mesh <= 0.0) & (v_mesh < 0.0)] = 0.0
    dv_dt = np.asarray(control.drift(q_mesh, v_mesh + params.mu), dtype=float)
    return dq_dt, dv_dt
