"""Phase-plane (characteristics) analysis of the reduced system (Section 5).

With the diffusion term suppressed, Equation 14 is a hyperbolic PDE whose
characteristics are the curves ``dq/dt = λ − μ``, ``dλ/dt = g(q, λ)``
(Equation 16).  The paper analyses the control algorithm by studying these
curves in the ``(q, ν)`` plane: the drift directions quadrant by quadrant
(Figure 2), the convergent spiral of the JRJ law (Figure 3, Theorem 1), and
the qualitative change -- limit cycles -- introduced by delayed feedback
(Section 7).  This subpackage reproduces each of those analyses.
"""

from .trajectory import (
    CharacteristicBatch,
    CharacteristicTrajectory,
    integrate_characteristic,
    integrate_characteristic_batch,
)
from .phase_plane import QuadrantDrift, quadrant_drift_table, drift_field
from .equilibrium import Equilibrium, find_equilibrium, classify_equilibrium
from .limit_cycle import (
    SpiralAnalysis,
    analyze_spiral,
    analyze_spiral_batch,
    peak_contraction_ratios,
    is_convergent_spiral,
)
from .theorem1 import (
    Theorem1Verification,
    verify_theorem1,
    verify_theorem1_batch,
)
from .poincare import (
    PoincareSection,
    compute_poincare_section,
    compute_poincare_sections,
)

__all__ = [
    "PoincareSection",
    "compute_poincare_section",
    "compute_poincare_sections",
    "CharacteristicBatch",
    "CharacteristicTrajectory",
    "integrate_characteristic",
    "integrate_characteristic_batch",
    "QuadrantDrift",
    "quadrant_drift_table",
    "drift_field",
    "Equilibrium",
    "find_equilibrium",
    "classify_equilibrium",
    "SpiralAnalysis",
    "analyze_spiral",
    "analyze_spiral_batch",
    "peak_contraction_ratios",
    "is_convergent_spiral",
    "Theorem1Verification",
    "verify_theorem1",
    "verify_theorem1_batch",
]
