"""Numerical verification of Theorem 1.

Theorem 1 of the paper states: *if σ² = 0, the JRJ algorithm converges in the
limit; the limit point is ``Q = q̂``, ``λ = μ``.*  The proof follows the
characteristic piecewise through the four quadrants (parabolic arcs below
the target, exponential-decay arcs above it) and shows each successive
excursion is strictly smaller than the previous one.

:func:`verify_theorem1` reproduces the statement numerically for arbitrary
parameters and initial conditions: it integrates the characteristic, checks
that successive queue peaks contract, and reports the distance of the final
state from the predicted limit point.  The analytical building block of the
proof -- the first parabolic arc below the target, ``d²q/dt² = C0`` -- is
also exposed so tests can compare the integrator against the closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemParameters
from ..control.jrj import JRJControl
from ..exceptions import AnalysisError
from .limit_cycle import analyze_spiral
from .trajectory import CharacteristicTrajectory, integrate_characteristic

__all__ = ["Theorem1Verification", "verify_theorem1", "parabolic_arc_queue"]


@dataclass(frozen=True)
class Theorem1Verification:
    """Outcome of a numerical check of Theorem 1 for one parameter set.

    Attributes
    ----------
    converges:
        Whether the trajectory's queue peaks contract (the theorem's claim).
    final_queue_error:
        ``|q(T) − q̂|`` at the end of the run.
    final_rate_error:
        ``|λ(T) − μ|`` at the end of the run.
    mean_contraction_ratio:
        Mean ratio of successive peak amplitudes (< 1 for convergence).
    n_oscillations:
        Number of overshoot peaks observed before settling.
    trajectory:
        The underlying characteristic trajectory, kept for plotting/benches.
    """

    converges: bool
    final_queue_error: float
    final_rate_error: float
    mean_contraction_ratio: float
    n_oscillations: int
    trajectory: CharacteristicTrajectory

    @property
    def limit_point_reached(self) -> bool:
        """True when the final state is close to ``(q̂, μ)`` in relative terms."""
        q_scale = max(self.trajectory.q_target, 1.0)
        return (self.final_queue_error <= 0.15 * q_scale
                and self.final_rate_error <= 0.15 * self.trajectory.mu)


def parabolic_arc_queue(times: np.ndarray, q_start: float, rate_start: float,
                        params: SystemParameters) -> np.ndarray:
    """Closed-form queue evolution on the increase side (``q ≤ q̂``).

    While the queue stays below the target the JRJ law gives
    ``d²q/dt² = dλ/dt = C0`` so, starting from ``(q_start, λ_start)``,

        q(t) = q_start + (λ_start − μ) t + C0 t² / 2,

    the parabolic arc used in the paper's proof of Theorem 1 (its
    Equation 18).  Valid until the arc reaches ``q = q̂`` or ``q = 0``.
    """
    times = np.asarray(times, dtype=float)
    return q_start + (rate_start - params.mu) * times + 0.5 * params.c0 * times ** 2


def verify_theorem1(params: SystemParameters, q0: float = 0.0,
                    rate0: float = None, t_end: float = None,
                    dt: float = 0.02) -> Theorem1Verification:
    """Numerically verify Theorem 1 for the given parameters.

    Parameters
    ----------
    params:
        System parameters; ``sigma`` is ignored (the theorem is about the
        reduced system).
    q0, rate0:
        Initial queue and rate.  The default starting rate is half the
        service rate, matching the "λ0 less than μ" setting used in the
        paper's proof sketch.
    t_end:
        Integration horizon; the default scales with the natural time the
        spiral needs (several increase/decrease cycles).
    """
    if rate0 is None:
        rate0 = 0.5 * params.mu
    if t_end is None:
        # One increase sweep takes about sqrt(2 q_target / C0); allow many.
        sweep = np.sqrt(max(2.0 * params.q_target / params.c0, 1.0))
        t_end = 60.0 * sweep

    control = JRJControl(c0=params.c0, c1=params.c1, q_target=params.q_target)
    trajectory = integrate_characteristic(control, params, q0=q0, rate0=rate0,
                                          t_end=t_end, dt=dt)

    try:
        analysis = analyze_spiral(trajectory)
        converges = analysis.converges
        mean_ratio = analysis.mean_contraction
        n_oscillations = analysis.n_oscillations
    except AnalysisError:
        # No peaks at all: monotone settling, which satisfies the theorem.
        converges = True
        mean_ratio = 0.0
        n_oscillations = 0

    return Theorem1Verification(
        converges=converges,
        final_queue_error=abs(trajectory.final_queue - params.q_target),
        final_rate_error=abs(trajectory.final_rate - params.mu),
        mean_contraction_ratio=float(mean_ratio) if np.isfinite(mean_ratio) else 0.0,
        n_oscillations=n_oscillations,
        trajectory=trajectory)
