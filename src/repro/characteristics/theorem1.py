"""Numerical verification of Theorem 1.

Theorem 1 of the paper states: *if σ² = 0, the JRJ algorithm converges in the
limit; the limit point is ``Q = q̂``, ``λ = μ``.*  The proof follows the
characteristic piecewise through the four quadrants (parabolic arcs below
the target, exponential-decay arcs above it) and shows each successive
excursion is strictly smaller than the previous one.

:func:`verify_theorem1` reproduces the statement numerically for arbitrary
parameters and initial conditions: it integrates the characteristic, checks
that successive queue peaks contract, and reports the distance of the final
state from the predicted limit point.  The analytical building block of the
proof -- the first parabolic arc below the target, ``d²q/dt² = C0`` -- is
also exposed so tests can compare the integrator against the closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

import numpy as np

from ..config import SystemParameters
from ..control.jrj import JRJControl
from ..exceptions import AnalysisError
from .limit_cycle import analyze_spiral
from .trajectory import (
    CharacteristicTrajectory,
    integrate_characteristic,
    integrate_characteristic_batch,
)

__all__ = ["Theorem1Verification", "verify_theorem1", "verify_theorem1_batch",
           "parabolic_arc_queue"]


@dataclass(frozen=True)
class Theorem1Verification:
    """Outcome of a numerical check of Theorem 1 for one parameter set.

    Attributes
    ----------
    converges:
        Whether the trajectory's queue peaks contract (the theorem's claim).
    final_queue_error:
        ``|q(T) − q̂|`` at the end of the run.
    final_rate_error:
        ``|λ(T) − μ|`` at the end of the run.
    mean_contraction_ratio:
        Mean ratio of successive peak amplitudes (< 1 for convergence).
    n_oscillations:
        Number of overshoot peaks observed before settling.
    trajectory:
        The underlying characteristic trajectory, kept for plotting/benches.
    """

    converges: bool
    final_queue_error: float
    final_rate_error: float
    mean_contraction_ratio: float
    n_oscillations: int
    trajectory: CharacteristicTrajectory

    @property
    def limit_point_reached(self) -> bool:
        """True when the final state is close to ``(q̂, μ)`` in relative terms."""
        q_scale = max(self.trajectory.q_target, 1.0)
        return (self.final_queue_error <= 0.15 * q_scale
                and self.final_rate_error <= 0.15 * self.trajectory.mu)


def parabolic_arc_queue(times: np.ndarray, q_start: float, rate_start: float,
                        params: SystemParameters) -> np.ndarray:
    """Closed-form queue evolution on the increase side (``q ≤ q̂``).

    While the queue stays below the target the JRJ law gives
    ``d²q/dt² = dλ/dt = C0`` so, starting from ``(q_start, λ_start)``,

        q(t) = q_start + (λ_start − μ) t + C0 t² / 2,

    the parabolic arc used in the paper's proof of Theorem 1 (its
    Equation 18).  Valid until the arc reaches ``q = q̂`` or ``q = 0``.
    """
    times = np.asarray(times, dtype=float)
    return q_start + (rate_start - params.mu) * times + 0.5 * params.c0 * times ** 2


def _default_horizon(q_target: float, c0: float) -> float:
    """Parameter-scaled default horizon: many increase/decrease sweeps."""
    # One increase sweep takes about sqrt(2 q_target / C0); allow many.
    return 60.0 * float(np.sqrt(max(2.0 * q_target / c0, 1.0)))


def _verification_from_trajectory(trajectory: CharacteristicTrajectory
                                  ) -> Theorem1Verification:
    """Analyse one characteristic and package the Theorem 1 verdict.

    Shared by the scalar and batched verifiers so both produce literally the
    same analysis for the same trajectory.
    """
    try:
        analysis = analyze_spiral(trajectory)
        converges = analysis.converges
        mean_ratio = analysis.mean_contraction
        n_oscillations = analysis.n_oscillations
    except AnalysisError:
        # No peaks at all: monotone settling, which satisfies the theorem.
        converges = True
        mean_ratio = 0.0
        n_oscillations = 0

    return Theorem1Verification(
        converges=converges,
        final_queue_error=abs(trajectory.final_queue - trajectory.q_target),
        final_rate_error=abs(trajectory.final_rate - trajectory.mu),
        mean_contraction_ratio=float(mean_ratio) if np.isfinite(mean_ratio)
        else 0.0,
        n_oscillations=n_oscillations,
        trajectory=trajectory)


def verify_theorem1(params: SystemParameters, q0: float = 0.0,
                    rate0: Optional[float] = None,
                    t_end: Optional[float] = None,
                    dt: float = 0.02) -> Theorem1Verification:
    """Numerically verify Theorem 1 for the given parameters.

    Parameters
    ----------
    params:
        System parameters; ``sigma`` is ignored (the theorem is about the
        reduced system).
    q0, rate0:
        Initial queue and rate.  The default starting rate is half the
        service rate, matching the "λ0 less than μ" setting used in the
        paper's proof sketch.
    t_end:
        Integration horizon; the default scales with the natural time the
        spiral needs (several increase/decrease cycles).
    """
    if rate0 is None:
        rate0 = 0.5 * params.mu
    if t_end is None:
        t_end = _default_horizon(params.q_target, params.c0)

    control = JRJControl(c0=params.c0, c1=params.c1, q_target=params.q_target)
    trajectory = integrate_characteristic(control, params, q0=q0, rate0=rate0,
                                          t_end=t_end, dt=dt)
    return _verification_from_trajectory(trajectory)


def verify_theorem1_batch(params: SystemParameters, q0=0.0, rate0=None,
                          t_end: Optional[float] = None, dt: float = 0.02,
                          columns: Optional[Mapping[str, object]] = None
                          ) -> List[Theorem1Verification]:
    """Verify Theorem 1 for a whole parameter/initial-condition family at once.

    The family is integrated as **one** batched characteristic run (see
    :func:`~repro.characteristics.trajectory.integrate_characteristic_batch`)
    and each member is then analysed with exactly the scalar verifier's
    logic, so for any member the returned verification carries the same
    verdict -- and a bit-identical trajectory -- as
    :func:`verify_theorem1` called with that member's point parameters.

    Parameters
    ----------
    params:
        Base system parameters; ``sigma`` is ignored as in the scalar form.
    q0, rate0:
        Initial queue lengths / rates, scalars or per-trajectory arrays.
        ``rate0=None`` defaults to half the (per-trajectory) service rate.
    t_end:
        Shared horizon.  ``None`` picks the *largest* of the members'
        parameter-scaled default horizons -- every member integrates at
        least as long as its scalar default, but members with smaller
        defaults see a longer run than scalar ``verify_theorem1`` would
        give them; pass an explicit ``t_end`` for strict scalar parity.
    dt:
        Shared step size.
    columns:
        Per-trajectory :class:`~repro.config.SystemParameters` columns:
        any of ``"c0"``, ``"c1"``, ``"q_target"``, ``"mu"``.
    """
    columns = {name: np.atleast_1d(np.asarray(value, dtype=float))
               for name, value in dict(columns or {}).items()}
    unknown = sorted(set(columns) - {"c0", "c1", "q_target", "mu"})
    if unknown:
        raise AnalysisError(
            f"verify_theorem1_batch accepts columns c0/c1/q_target/mu, "
            f"got {unknown}")

    mu_values = columns.get("mu", np.asarray([params.mu]))
    if rate0 is None:
        rate0 = 0.5 * mu_values
    if t_end is None:
        q_target_values = columns.get("q_target",
                                      np.asarray([params.q_target]))
        c0_values = columns.get("c0", np.asarray([params.c0]))
        pairs = np.broadcast_arrays(q_target_values, c0_values)
        t_end = max(_default_horizon(float(q_target), float(c0))
                    for q_target, c0 in zip(*pairs, strict=True))

    control = JRJControl(c0=params.c0, c1=params.c1, q_target=params.q_target)
    batch = integrate_characteristic_batch(control, params, q0=q0,
                                           rate0=rate0, t_end=t_end, dt=dt,
                                           columns=columns)
    return [_verification_from_trajectory(batch.trajectory(index))
            for index in range(batch.batch_size)]
