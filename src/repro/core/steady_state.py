"""Steady-state extraction and relaxation-time estimation.

Theorem 1 of the paper states that without feedback delay the reduced system
converges to the limit point ``(q̂, μ)``; with σ > 0 the full Fokker-Planck
density relaxes towards a stationary density concentrated around that point.
These helpers quantify both statements from a solver result: the long-run
moments (averaged over the tail of the run) and the time needed for the
mean queue to settle within a tolerance band of its final value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ParameterDictMixin
from ..exceptions import AnalysisError
from .moments import DensityMoments
from .solver import FokkerPlanckResult

__all__ = ["SteadyStateEstimate", "estimate_steady_state", "relaxation_time"]


@dataclass(frozen=True)
class SteadyStateEstimate(ParameterDictMixin):
    """Long-run operating point extracted from the tail of a FP run.

    Mixes in :class:`repro.config.ParameterDictMixin` so estimates round-trip
    through plain dictionaries and cache cleanly through the runner.
    """

    mean_queue: float
    std_queue: float
    mean_growth_rate: float
    tail_fraction: float
    n_snapshots_used: int


def estimate_steady_state(result: FokkerPlanckResult,
                          tail_fraction: float = 0.25) -> SteadyStateEstimate:
    """Average the moments over the final *tail_fraction* of the snapshots.

    Raises
    ------
    AnalysisError
        If the run has fewer than four snapshots or the tail fraction is not
        in ``(0, 1]``.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise AnalysisError("tail_fraction must lie in (0, 1]")
    snapshots = result.snapshots
    if len(snapshots) < 4:
        raise AnalysisError("need at least four snapshots for a steady-state estimate")
    n_tail = max(1, int(round(tail_fraction * len(snapshots))))
    tail = snapshots[-n_tail:]
    mean_queue = float(np.mean([snap.moments.mean_q for snap in tail]))
    std_queue = float(np.mean([snap.moments.std_q for snap in tail]))
    mean_growth = float(np.mean([snap.moments.mean_v for snap in tail]))
    return SteadyStateEstimate(mean_queue=mean_queue, std_queue=std_queue,
                               mean_growth_rate=mean_growth,
                               tail_fraction=tail_fraction,
                               n_snapshots_used=n_tail)


def relaxation_time(result: FokkerPlanckResult, tolerance: float = 0.1
                    ) -> float:
    """Time after which the mean queue stays within *tolerance* of its final value.

    The tolerance is relative to the final mean queue (with an absolute
    floor of one packet so an empty-queue equilibrium does not make the
    criterion impossible to satisfy).

    Raises
    ------
    AnalysisError
        If the trajectory never settles inside the band.
    """
    times = result.times
    means = result.mean_queue
    final = float(means[-1])
    band = max(tolerance * abs(final), 1.0 * tolerance)
    inside = np.abs(means - final) <= band
    # Find the earliest index after which every snapshot is inside the band.
    for index in range(len(means)):
        if np.all(inside[index:]):
            return float(times[index])
    raise AnalysisError("mean queue never settled within the tolerance band")


def moments_close_to(moments: DensityMoments, mean_q: float, mean_v: float,
                     q_tolerance: float, v_tolerance: float) -> bool:
    """Convenience predicate used by tests: are the means near a target point?"""
    return (abs(moments.mean_q - mean_q) <= q_tolerance
            and abs(moments.mean_v - mean_v) <= v_tolerance)
