"""Sparse assembly of the discrete Fokker-Planck generator.

The time-marching solver advances the density with the operator split

    f^{n+1} = CN(dt) · A_ν(dt) · A_q(dt) · f^n

where ``A_q`` / ``A_ν`` are the explicit upwind advection steps of
:mod:`repro.core.advection` and ``CN`` is the Crank-Nicolson diffusion step
of :mod:`repro.core.diffusion`.  Each factor is *linear* in the density, so
the whole substep is one sparse matrix -- and the stationary density the
marching converges to is exactly the null vector of

    S(dt) = (I + r L̃) (I + dt G_ν) (I + dt G_q) − (I − r L̃),

with ``G_q`` / ``G_ν`` the advection generators (``A = I + dt G`` holds
exactly because one forward-Euler step is affine in ``dt``), ``L̃`` the
Neumann second difference along ``q`` and ``r = (σ²/2) dt / (2 dq²)`` the
Crank-Nicolson diffusion number.  Solving ``S(dt) p = 0`` therefore
reproduces the time-marched tail to solver tolerance instead of to the
``O(dt)`` splitting error a naive continuous-generator solve would carry.

:func:`assemble_generator` builds the pieces with the *same* coefficient
conventions as the kernels (sign-split full-width velocity rows, neighbour-
averaged and direction-split interface drift, Neumann boundary rows), so the
assembled matrices agree with the kernel applications to rounding error; the
parity is pinned by the unit tests.  The continuous-time generator

    L = G_q + G_ν + (σ²/2) / dq² · L̃

(the ``dt → 0`` limit of ``S(dt)/dt``) is also exposed for analyses that
want the textbook operator.

Everything here is plain numpy: the matrices are assembled in a tiny
diagonal-storage format and exported as COO triplets, which the
:mod:`repro.numerics.backend` registry consumes (dense for the numpy
reference backend, ``scipy.sparse`` for the sparse one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import GridParameters, SystemParameters
from ..control.base import RateControl
from ..exceptions import ConfigurationError
from ..numerics.grids import PhaseGrid2D
from .boundary import BoundaryConditions

__all__ = ["SparseOperator", "DiscreteGenerator", "assemble_generator"]


@dataclass(frozen=True)
class SparseOperator:
    """A square sparse matrix in COO triplet form.

    Attributes
    ----------
    rows, cols:
        Integer index arrays of the stored entries.
    values:
        Entry values (exact zeros are dropped at construction).
    n:
        Matrix dimension (the operator acts on length-``n`` vectors).
    """

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    n: int

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.values.size)

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """Return ``M @ vector`` (used for residual checks, backend-free)."""
        vector = np.asarray(vector, dtype=float).ravel()
        if vector.size != self.n:
            raise ConfigurationError(
                f"operator is {self.n}x{self.n} but vector has size "
                f"{vector.size}")
        return np.bincount(self.rows, weights=self.values * vector[self.cols],
                           minlength=self.n)

    def to_dense(self) -> np.ndarray:
        """Materialise the full dense matrix (small grids / reference solves)."""
        dense = np.zeros((self.n, self.n))
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense


class _DiaMatrix:
    """Square matrix stored as diagonals: ``data[offset][k] = M[k, k+offset]``.

    Every operator assembled here is banded with a handful of offsets, and
    products of banded matrices stay banded, so diagonal storage makes the
    sparse triple product of the splitting matrix a few dozen vector
    multiply-adds -- no scipy needed at assembly time.  Entries whose column
    index ``k + offset`` falls outside the matrix are kept as zeros.
    """

    def __init__(self, n: int, data: Optional[Dict[int, np.ndarray]] = None):
        self.n = n
        self.data: Dict[int, np.ndarray] = {}
        for offset, diag in (data or {}).items():
            self._set(offset, np.asarray(diag, dtype=float))

    def _set(self, offset: int, diag: np.ndarray) -> None:
        if diag.shape != (self.n,):
            raise ConfigurationError("diagonal length must equal the dimension")
        diag = diag.copy()
        # Zero the rows whose column index would fall outside the matrix.
        if offset > 0:
            diag[self.n - offset:] = 0.0
        elif offset < 0:
            diag[:-offset] = 0.0
        self.data[offset] = diag

    @classmethod
    def identity(cls, n: int) -> "_DiaMatrix":
        return cls(n, {0: np.ones(n)})

    def scaled(self, factor: float) -> "_DiaMatrix":
        return _DiaMatrix(self.n, {offset: diag * factor
                                   for offset, diag in self.data.items()})

    def plus(self, other: "_DiaMatrix") -> "_DiaMatrix":
        result = _DiaMatrix(self.n)
        for offset, diag in self.data.items():
            result._set(offset, diag)
        for offset, diag in other.data.items():
            if offset in result.data:
                result.data[offset] = result.data[offset] + diag
            else:
                result._set(offset, diag)
        return result

    def matmul(self, other: "_DiaMatrix") -> "_DiaMatrix":
        """Exact product of two diagonal-stored matrices.

        ``C[k, k+oa+ob] += A[k, k+oa] · B[k+oa, k+oa+ob]``: for each offset
        pair the contribution is an elementwise product of one diagonal with
        a shifted view of the other.
        """
        n = self.n
        result = _DiaMatrix(n)
        for oa, da in self.data.items():
            for ob, db in other.data.items():
                shifted = np.zeros(n)
                if oa >= 0:
                    shifted[:n - oa] = db[oa:]
                else:
                    shifted[-oa:] = db[:n + oa]
                contribution = da * shifted
                offset = oa + ob
                if offset in result.data:
                    result.data[offset] += contribution
                else:
                    result._set(offset, contribution)
        return result

    def to_operator(self) -> SparseOperator:
        """Export as COO triplets, dropping exact zeros."""
        rows_parts = []
        cols_parts = []
        values_parts = []
        indices = np.arange(self.n)
        for offset in sorted(self.data):
            diag = self.data[offset]
            if offset >= 0:
                rows = indices[:self.n - offset]
            else:
                rows = indices[-offset:]
            cols = rows + offset
            values = diag[rows]
            keep = values != 0.0
            rows_parts.append(rows[keep])
            cols_parts.append(cols[keep])
            values_parts.append(values[keep])
        return SparseOperator(rows=np.concatenate(rows_parts),
                              cols=np.concatenate(cols_parts),
                              values=np.concatenate(values_parts),
                              n=self.n)


def _q_advection_generator(grid: PhaseGrid2D) -> _DiaMatrix:
    """``G_q`` with the kernel's sign-split upwind coefficients.

    Row-major flattening ``k = i·nv + j``: the q-neighbour couplings sit on
    the ``±nv`` diagonals.  The ``q = 0`` boundary reflects (zero boundary
    flux, so the first q-row keeps its ``ν < 0`` mass); the ``q = q_max``
    boundary is outflow for ``ν > 0`` columns, exactly as ``advect_q``.
    """
    nq, nv = grid.shape
    v = grid.v_centers
    dq = grid.dq
    v_pos = np.where(v > 0.0, v, 0.0)
    v_neg = np.where(v < 0.0, v, 0.0)
    diag = np.tile(-(v_pos - v_neg) / dq, nq)
    diag[:nv] = -v_pos / dq  # reflecting: no flux out through q = 0
    upper = np.tile(-v_neg / dq, nq)   # coupling to (i+1, j)
    lower = np.tile(v_pos / dq, nq)    # coupling to (i-1, j)
    n = nq * nv
    return _DiaMatrix(n, {0: diag, nv: upper, -nv: lower})


def _v_advection_generator(grid: PhaseGrid2D, drift: np.ndarray) -> _DiaMatrix:
    """``G_ν`` from the neighbour-averaged, direction-split interface drift.

    Both ν-walls are no-flux, matching ``advect_v``; the ``±1`` diagonals
    are zeroed at the column edges so no coupling crosses a q-row boundary
    in the flattened index.
    """
    nq, nv = grid.shape
    dv = grid.dv
    interface = 0.5 * (drift[:, :-1] + drift[:, 1:])
    from_left = np.where(interface > 0.0, interface, 0.0)
    from_right = interface - from_left
    diag = np.zeros((nq, nv))
    diag[:, :-1] -= from_left
    diag[:, 1:] += from_right
    upper = np.zeros((nq, nv))
    upper[:, :-1] = -from_right
    lower = np.zeros((nq, nv))
    lower[:, 1:] = from_left
    n = nq * nv
    return _DiaMatrix(n, {0: diag.ravel() / dv, 1: upper.ravel() / dv,
                          -1: lower.ravel() / dv})


def _neumann_laplacian(grid: PhaseGrid2D) -> _DiaMatrix:
    """Unscaled Neumann second difference along ``q`` (per ν-column)."""
    nq, nv = grid.shape
    n = nq * nv
    diag = np.full(n, -2.0)
    diag[:nv] = -1.0
    diag[(nq - 1) * nv:] = -1.0
    ones = np.ones(n)
    return _DiaMatrix(n, {0: diag, nv: ones, -nv: ones})


class DiscreteGenerator:
    """The assembled discrete Fokker-Planck operator pieces on one grid.

    Built by :func:`assemble_generator`; holds the advection generators, the
    diffusion Laplacian and the grid, and combines them into either the
    continuous-time generator ``L`` or the one-step splitting fixed-point
    matrix ``S(dt)`` (see the module docstring).
    """

    def __init__(self, grid: PhaseGrid2D, sigma: float, drift: np.ndarray):
        self.grid = grid
        self.sigma = float(sigma)
        self.drift = np.asarray(drift, dtype=float)
        if self.drift.shape != grid.shape:
            raise ConfigurationError(
                f"drift shape {self.drift.shape} does not match grid "
                f"{grid.shape}")
        self.n = grid.shape[0] * grid.shape[1]
        self._diffusivity = 0.5 * self.sigma * self.sigma
        self._g_q = _q_advection_generator(grid)
        self._g_v = _v_advection_generator(grid, self.drift)
        self._laplacian = _neumann_laplacian(grid)

    @property
    def mass_weights(self) -> np.ndarray:
        """Cell quadrature weights: ``w · p`` is the total probability mass."""
        return np.full(self.n, self.grid.cell_area)

    def advection_q(self) -> SparseOperator:
        """The q-advection generator ``G_q`` (``A_q(dt) = I + dt G_q``)."""
        return self._g_q.to_operator()

    def advection_v(self) -> SparseOperator:
        """The ν-advection generator ``G_ν`` (``A_ν(dt) = I + dt G_ν``)."""
        return self._g_v.to_operator()

    def diffusion(self) -> SparseOperator:
        """The diffusion generator ``(σ²/2)/dq² · L̃`` (zero when σ = 0)."""
        return self._laplacian.scaled(
            self._diffusivity / (self.grid.dq * self.grid.dq)).to_operator()

    def generator(self) -> SparseOperator:
        """The continuous-time generator ``L = G_q + G_ν + diffusion``."""
        combined = self._g_q.plus(self._g_v)
        if self._diffusivity > 0.0:
            combined = combined.plus(self._laplacian.scaled(
                self._diffusivity / (self.grid.dq * self.grid.dq)))
        return combined.to_operator()

    def q_direction_bands(self):
        """Bands of ``A₁ = G_q + diffusion`` in ν-major ordering.

        Returns ``(lower, diag, upper)`` length-``n`` arrays of the
        q-direction transport operator under the *transposed* flattening
        ``k' = j·nq + i``.  In that ordering the ``±nv`` couplings of the
        row-major matrix become ``±1`` couplings that vanish at every
        ``nq``-block boundary — one independent tridiagonal system per
        ν-column, the implicit half of the Peaceman-Rachford step.
        """
        combined = self._g_q
        if self._diffusivity > 0.0:
            combined = combined.plus(self._laplacian.scaled(
                self._diffusivity / (self.grid.dq * self.grid.dq)))
        nq, nv = self.grid.shape
        zeros = np.zeros(self.n)

        def permute(diag: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(diag.reshape(nq, nv).T).ravel()

        return (permute(combined.data.get(-nv, zeros)),
                permute(combined.data.get(0, zeros)),
                permute(combined.data.get(nv, zeros)))

    def v_direction_bands(self, drift: Optional[np.ndarray] = None):
        """Bands of ``A₂ = G_ν`` in the native row-major ordering.

        Returns ``(lower, diag, upper)`` length-``n`` arrays; the ``±1``
        couplings already vanish at every ``nv``-block boundary (no-flux
        ν-walls), so the flat matrix is one independent tridiagonal system
        per q-row.  Passing *drift* rebuilds the bands for a new drift field
        on the same grid without touching the stored operator — the delayed-
        feedback solver updates the ν-transport every segment this way.
        """
        if drift is None:
            g_v = self._g_v
        else:
            drift = np.asarray(drift, dtype=float)
            if drift.shape != self.grid.shape:
                raise ConfigurationError(
                    f"drift shape {drift.shape} does not match grid "
                    f"{self.grid.shape}")
            g_v = _v_advection_generator(self.grid, drift)
        zeros = np.zeros(self.n)
        return (g_v.data.get(-1, zeros).copy(),
                g_v.data.get(0, zeros).copy(),
                g_v.data.get(1, zeros).copy())

    def diffusion_number(self, dt: float) -> float:
        """The Crank-Nicolson diffusion number ``r`` for step *dt*.

        Computed with the same operation order as
        :class:`repro.core.diffusion.CrankNicolsonDiffusion` so ``r`` (and
        hence the assembled Crank-Nicolson factors) rounds identically.
        """
        two_dq2 = 2.0 * self.grid.dq * self.grid.dq
        return self._diffusivity * dt / two_dq2

    def max_stable_dt(self, cfl: float = 0.8) -> float:
        """Largest ``dt`` for which the explicit advection factors are stable."""
        limits = []
        if self.grid.max_abs_v > 0.0:
            limits.append(cfl * self.grid.dq / self.grid.max_abs_v)
        max_drift = float(np.max(np.abs(self.drift))) if self.drift.size else 0.0
        if max_drift > 0.0:
            limits.append(cfl * self.grid.dv / max_drift)
        return min(limits) if limits else np.inf

    def splitting_matrix(self, dt: float) -> SparseOperator:
        """The fixed-point matrix ``S(dt)`` of one marching substep.

        ``S(dt) p = 0`` (with unit mass) characterises the stationary
        density of the split scheme run with uniform substeps ``dt``; the
        marching solver takes exactly those substeps whenever its output
        step ``TimeParameters.dt`` does not exceed the free-running CFL
        step.
        """
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        r = self.diffusion_number(dt)
        if r > 2.0:
            raise ConfigurationError(
                f"diffusion number r={r:.3g} exceeds 2: the marching solver "
                f"sub-cycles such steps, so S(dt) would not match it; reduce "
                f"dt")
        transport = _DiaMatrix.identity(self.n).plus(
            self._g_v.scaled(dt)).matmul(
            _DiaMatrix.identity(self.n).plus(self._g_q.scaled(dt)))
        if r == 0.0:
            return transport.plus(
                _DiaMatrix.identity(self.n).scaled(-1.0)).to_operator()
        explicit = _DiaMatrix.identity(self.n).plus(self._laplacian.scaled(r))
        implicit = _DiaMatrix.identity(self.n).plus(self._laplacian.scaled(-r))
        return explicit.matmul(transport).plus(
            implicit.scaled(-1.0)).to_operator()


def assemble_generator(params: SystemParameters,
                       control: Optional[RateControl] = None,
                       grid_params: Optional[GridParameters] = None,
                       drift: Optional[np.ndarray] = None,
                       boundary: Optional[BoundaryConditions] = None
                       ) -> DiscreteGenerator:
    """Assemble the discrete Fokker-Planck operator pieces for one config.

    Parameters
    ----------
    params:
        System parameters (``sigma`` selects the diffusion strength; ``mu``
        shifts the control law into growth-rate coordinates).
    control:
        Rate-control law supplying the ν-drift ``g``; defaults to the JRJ
        law built from *params*.
    grid_params:
        Phase-grid discretisation (defaults to :class:`GridParameters`).
    drift:
        Optional precomputed drift field overriding the control evaluation
        (used by the delayed-feedback stationary solve, whose drift is
        evaluated at a scalar self-consistent queue value).
    boundary:
        Boundary conditions.  Only the default all-reflecting policy has a
        normalisable stationary density; other policies are rejected.

    Returns
    -------
    DiscreteGenerator
        The assembled operator pieces, row-major flattened (``k = i·nv + j``
        matching ``density.ravel()``).
    """
    boundary = boundary if boundary is not None else BoundaryConditions()
    if not boundary.reflect_q_zero or boundary.absorb_q_max:
        raise ConfigurationError(
            "assemble_generator supports only the default all-reflecting "
            "boundary conditions (an absorbing boundary has no normalisable "
            "stationary density)")
    grid_params = grid_params if grid_params is not None else GridParameters()
    grid = PhaseGrid2D.from_bounds(q_max=grid_params.q_max, nq=grid_params.nq,
                                   v_min=grid_params.v_min,
                                   v_max=grid_params.v_max, nv=grid_params.nv)
    if drift is None:
        if control is None:
            from ..control.jrj import jrj_from_parameters
            control = jrj_from_parameters(params)
        q_mesh, v_mesh = grid.meshgrid()
        drift = np.asarray(control.drift_in_growth_coordinates(
            q_mesh, v_mesh, params.mu), dtype=float)
    return DiscreteGenerator(grid, params.sigma, drift)
