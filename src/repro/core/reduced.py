"""The reduced (σ = 0) hyperbolic system solved along its characteristics.

Section 5 of the paper suppresses the diffusion term of Equation 14 and
studies the resulting hyperbolic PDE through its characteristics, which are
the curves satisfying

    dq/dt = λ − μ,        dλ/dt = g(q, λ)                    (Equation 16)

A delta-function initial density stays a delta under the reduced equation
and simply rides along the characteristic through its starting point, so
solving the reduced PDE for such data is the same as integrating the
characteristic ODE -- exactly the argument the paper uses to analyse
stability.  :class:`ReducedSystemSolver` packages this, adding the physical
constraints ``q ≥ 0`` and ``λ ≥ 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemParameters
from ..control.base import RateControl
from ..numerics.ode import ODEResult, integrate_fixed

__all__ = ["ReducedSystemSolver", "ReducedTrajectory"]


@dataclass
class ReducedTrajectory:
    """Characteristic trajectory ``(q(t), λ(t))`` of the reduced system.

    Attributes
    ----------
    times:
        Sample times.
    queue:
        Queue length along the characteristic.
    rate:
        Arrival rate along the characteristic.
    """

    times: np.ndarray
    queue: np.ndarray
    rate: np.ndarray

    @property
    def growth_rate(self) -> np.ndarray:
        """Queue growth rate ``ν(t) = λ(t) − μ`` is not stored directly;
        use :meth:`growth_rate_for` with the service rate."""
        raise AttributeError(
            "growth_rate requires the service rate; call growth_rate_for(mu)")

    def growth_rate_for(self, mu: float) -> np.ndarray:
        """Return ``ν(t) = λ(t) − μ``."""
        return self.rate - mu

    @property
    def final_queue(self) -> float:
        """Queue length at the end of the trajectory."""
        return float(self.queue[-1])

    @property
    def final_rate(self) -> float:
        """Arrival rate at the end of the trajectory."""
        return float(self.rate[-1])

    @classmethod
    def from_ode_result(cls, result: ODEResult) -> "ReducedTrajectory":
        """Build a trajectory from an :class:`ODEResult` with state ``(q, λ)``."""
        return cls(times=result.times, queue=result.states[:, 0],
                   rate=result.states[:, 1])


class ReducedSystemSolver:
    """Integrates the characteristic system of the reduced (σ = 0) equation.

    Parameters
    ----------
    control:
        The rate-control law ``g(q, λ)``.
    params:
        System parameters (only ``mu`` is used here; the control law already
        carries its own constants).
    """

    def __init__(self, control: RateControl, params: SystemParameters):
        self.control = control
        self.params = params

    def _rhs(self, _t: float, state: np.ndarray) -> np.ndarray:
        q, lam = state
        # The queue cannot drain below zero: when empty and under-loaded the
        # growth rate is pinned at zero (the paper's convention for ν).
        dq = lam - self.params.mu
        if q <= 0.0 and dq < 0.0:
            dq = 0.0
        dlam = self.control.drift(q, lam)
        return np.array([dq, dlam])

    @staticmethod
    def _project(state: np.ndarray) -> np.ndarray:
        return np.array([max(state[0], 0.0), max(state[1], 0.0)])

    def solve(self, q0: float, rate0: float, t_end: float,
              dt: float = 0.05) -> ReducedTrajectory:
        """Integrate the characteristic from ``(q0, rate0)`` until ``t_end``."""
        result = integrate_fixed(self._rhs, [q0, rate0], t_end=t_end, dt=dt,
                                 projection=self._project)
        return ReducedTrajectory.from_ode_result(result)

    def solve_ensemble(self, initial_points: np.ndarray, t_end: float,
                       dt: float = 0.05) -> list[ReducedTrajectory]:
        """Integrate one characteristic per row of ``initial_points``.

        Each row is ``(q0, rate0)``.  Under the reduced equation an initial
        density supported on these points evolves by transporting each point
        along its own characteristic, so the ensemble of end points samples
        the evolved density.
        """
        initial_points = np.asarray(initial_points, dtype=float)
        return [self.solve(float(q0), float(r0), t_end=t_end, dt=dt)
                for q0, r0 in initial_points]
