"""Conservative upwind advection steps for the Fokker-Planck solver.

Equation 14 contains two advection terms:

* ``ν f_q`` -- transport of probability mass along the queue axis with
  velocity ``ν`` (each row of the ``(q, ν)`` grid moves with its own
  constant velocity, the cell's growth rate), and
* ``(g f)_ν`` -- transport along the growth-rate axis with the
  *conservative* velocity field ``g(q, λ)`` (the drift of the control law).

Both are discretised with a first-order finite-volume upwind scheme written
in flux form, which guarantees exact conservation of the total probability
mass up to what leaves through the outflow boundaries.  The queue-axis
boundary at ``q = 0`` is handled by the boundary-condition object (mass that
would be advected below zero is reflected back into the first cell,
implementing the paper's convention ``ν = 0`` when ``Q = 0`` and ``λ < μ``).

Performance.  The kernels are exposed in two forms:

* :class:`UpwindAdvection` binds the scheme to one grid and preallocates
  every scratch array (interface fluxes, flux differences, upwind products)
  plus the grid-dependent invariants (the contiguous ``ν < 0`` / ``ν > 0``
  column ranges, and -- via :meth:`UpwindAdvection.set_drift` -- the
  interface drift, its upwind mask and ``max |g|``).  Repeated steps
  therefore run allocation-free; this is what the Fokker-Planck solver's
  hot loop uses.
* :func:`upwind_advect_q` / :func:`upwind_advect_v` keep the original
  stateless signatures (returning a fresh array per call) on top of a small
  per-grid workspace cache.

The floating-point arithmetic is ordered exactly as in the original
per-call implementation, so the optimized kernels are bit-compatible with
it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from ..exceptions import StabilityError
from ..numerics.grids import PhaseGrid2D

#: Magnitudes below this are flushed to zero by ``advect_v(..., flush=True)``.
#: :mod:`repro.core.diffusion` imports this as its own flush threshold (see
#: there for why subnormal-range values are poison for the dense diffusion
#: matmul), so the advection-side and diffusion-side flushes always agree.
FLUSH_THRESHOLD = 1e-150

__all__ = ["UpwindAdvection", "upwind_advect_q", "upwind_advect_v",
           "cfl_time_step"]


def cfl_time_step(grid: PhaseGrid2D, v_drift: np.ndarray, cfl: float,
                  max_dt: float) -> float:
    """Return the largest stable time step for the explicit advection steps.

    The step must satisfy ``|ν| dt / dq ≤ cfl`` for the q-advection and
    ``|g| dt / dν ≤ cfl`` for the ν-advection.  *v_drift* is the drift array
    ``g`` evaluated on the grid (shape ``(nq, nv)``).
    """
    max_v_speed = float(np.max(np.abs(v_drift))) if v_drift.size else 0.0
    return cfl_time_step_from_speeds(grid, max_v_speed, cfl, max_dt)


def cfl_time_step_from_speeds(grid: PhaseGrid2D, max_v_speed: float,
                              cfl: float, max_dt: float) -> float:
    """CFL step from a precomputed ``max |g|`` (the grid caches ``max |ν|``).

    Hot-loop variant of :func:`cfl_time_step`: with a static drift field the
    maximum drift speed is constant over the whole integration, so the
    solver computes it once and skips the per-substep array reduction.
    """
    max_q_speed = grid.max_abs_v
    limits = [max_dt]
    if max_q_speed > 0.0:
        limits.append(cfl * grid.dq / max_q_speed)
    if max_v_speed > 0.0:
        limits.append(cfl * grid.dv / max_v_speed)
    dt = min(limits)
    if dt <= 0.0:
        raise StabilityError("computed CFL time step is non-positive")
    return dt


def shared_scratch_size(grid: PhaseGrid2D) -> int:
    """Float count of the scratch arena shared by the per-grid kernels.

    :class:`UpwindAdvection` and
    :class:`repro.core.diffusion.CrankNicolsonDiffusion` each need two
    grid-sized scratch blocks, but never at the same time within a substep,
    so the solver allocates one ``2·nq·nv`` arena and hands it to both.
    """
    nq, nv = grid.shape
    return 2 * nq * nv


class UpwindAdvection:
    """Allocation-free upwind advection kernels bound to one grid.

    Parameters
    ----------
    grid:
        The phase grid the kernels operate on.  All scratch arrays are
        preallocated for its shape; the ``ν``-column sign split is
        precomputed (cell centres are sorted, so the ``ν < 0`` and ``ν > 0``
        columns form contiguous ranges addressable by slices instead of
        boolean masks).
    """

    def __init__(self, grid: PhaseGrid2D,
                 scratch: Optional[np.ndarray] = None):
        self.grid = grid
        nq, nv = grid.shape
        v = grid.v_centers
        self._dq = grid.dq
        self._dv = grid.dv
        self._max_abs_v = grid.max_abs_v
        # Contiguous column ranges by sign of ν (centres are ascending).
        neg = slice(0, int(np.searchsorted(v, 0.0, side="left")))
        pos = slice(int(np.searchsorted(v, 0.0, side="right")), nv)
        self._neg = neg
        self._pos = pos
        self._v_neg = v[neg]
        # Full-width velocity rows split by sign: the interior flux is then
        # two contiguous multiplies and an add over all columns instead of
        # three strided writes into column sub-ranges.
        self._v_pos_full = np.where(v > 0.0, v, 0.0)
        self._v_neg_full = np.where(v < 0.0, v, 0.0)
        # All large scratch lives in a flat arena of 2·nq·nv floats that the
        # solver shares with the diffusion operator: the kernels of one
        # substep use their scratch at disjoint times, and overlaying them
        # keeps the per-substep working set inside L2 (see
        # :func:`shared_scratch_size`).
        if scratch is None:
            scratch = np.empty(shared_scratch_size(grid))
        region_a = scratch[:nq * nv]
        region_b = scratch[nq * nv:2 * nq * nv]
        self._diff = region_a.reshape(nq, nv)
        # Interface fluxes along q, split into the interior block (region B)
        # and two small owned boundary rows.  The q = 0 row is persistent:
        # cells never written while reflecting stay zero, exactly as the
        # per-call implementation re-zeroed them each step.
        self._flux_q_interior = region_b[:(nq - 1) * nv].reshape(nq - 1, nv)
        self._flux_q_top = np.empty(nv)
        self._flux_q_row0 = np.zeros(nv)
        self._flux_q0_dirty = False
        # Per-dt cache of (dt/dq)-prescaled velocity rows for the `scaled`
        # fast path (1-D arrays, so the cache is essentially free).
        self._scaled_v: OrderedDict = OrderedDict()
        # Inner ν-interface fluxes (interfaces 1..nv-1; the walls at 0 and
        # nv are identically zero and folded into the difference stencil).
        self._inner_v = region_b[:nq * (nv - 1)].reshape(nq, nv - 1)
        # The multiply scratch views alias the flux-difference buffer: both
        # are fully consumed before the difference is written.
        self._tmp_q = self._diff[:nq - 1, :]
        self._tmp = self._diff[:, :nv - 1]
        # Drift-dependent state (set_drift).
        self._drift: Optional[np.ndarray] = None
        self._drift_from_left = np.empty((nq, nv - 1))
        self._drift_from_right = np.empty((nq, nv - 1))
        self._max_abs_drift = 0.0
        self._flush_mask = np.empty((nq, nv), dtype=bool)
        # Per-dt cache of (dt/dv)-prescaled split drifts for the `scaled`
        # fast path.  Two entries cover the CFL schedule (the free-running
        # substep and the truncated interval-final substep) while keeping
        # the extra cache footprint bounded.
        self._scaled_drift: OrderedDict = OrderedDict()

    @property
    def max_abs_drift(self) -> float:
        """``max |g|`` of the drift installed by :meth:`set_drift`."""
        return self._max_abs_drift

    def set_drift(self, drift: np.ndarray) -> None:
        """Install the ν-drift field ``g`` and precompute its invariants.

        With a static drift this runs once per solve; with delayed feedback
        the solver calls it whenever the effective drift changes.  The
        interface drift between adjacent ν-columns, the upwind-direction
        mask and ``max |g|`` are all cached until the next call.
        """
        drift = np.asarray(drift, dtype=float)
        if drift.shape != self.grid.shape:
            raise StabilityError("drift array shape does not match density shape")
        self._drift = drift
        # Interface drift between column j-1 and j (mean of the neighbours),
        # split by upwind direction: the interface flux is then two dense
        # multiply-adds instead of a masked select per step.
        interface = 0.5 * (drift[:, :-1] + drift[:, 1:])
        upwind_from_left = interface > 0.0
        np.multiply(interface, upwind_from_left, out=self._drift_from_left)
        np.subtract(interface, self._drift_from_left,
                    out=self._drift_from_right)
        self._max_abs_drift = (float(np.max(np.abs(drift)))
                               if drift.size else 0.0)
        self._scaled_drift.clear()

    def advect_q(self, density: np.ndarray, dt: float,
                 reflect_at_zero: bool = True,
                 out: Optional[np.ndarray] = None,
                 scaled: bool = False,
                 clamp: bool = True) -> np.ndarray:
        """Advect along the queue axis with per-column velocity ``ν``.

        Writes into *out* when given (must not alias *density*); otherwise
        returns a new array.  See :func:`upwind_advect_q` for the scheme.

        With ``scaled=True`` the Courant factor ``dt/dq`` is folded into the
        (1-D, per-dt cached) velocity rows, which removes one full-array
        pass; the result agrees with the reference ordering to one ulp per
        step.  The default keeps the reference arithmetic bit-for-bit.

        ``clamp=False`` skips the final ``max(·, 0)``: CFL-respecting upwind
        transport is positivity-preserving in exact arithmetic, so the clamp
        only removes sub-ulp rounding negatives, and a caller that clamps
        the subsequent ν-advection output anyway (the σ > 0 solver path)
        can drop this intermediate pass.
        """
        max_courant = self._max_abs_v * dt / self._dq
        if max_courant > 1.0 + 1e-12:
            raise StabilityError(
                f"q-advection violates CFL: max Courant number {max_courant:.3f}")
        if out is None:
            out = np.empty_like(density)

        neg = self._neg
        if scaled:
            scaled_rows = self._scaled_v.get(dt)
            if scaled_rows is None:
                courant_factor = dt / self._dq
                scaled_rows = (self._v_pos_full * courant_factor,
                               self._v_neg_full * courant_factor,
                               self._v_neg * courant_factor)
                self._scaled_v[dt] = scaled_rows
                if len(self._scaled_v) > 8:
                    self._scaled_v.popitem(last=False)
            else:
                self._scaled_v.move_to_end(dt)
            v_pos_full, v_neg_full, v_neg = scaled_rows
        else:
            v_pos_full, v_neg_full, v_neg = (self._v_pos_full,
                                             self._v_neg_full, self._v_neg)

        # For v > 0 mass moves toward larger q: upwind value is the left
        # cell; for v < 0 it is the right cell.  The sign-split velocity
        # rows zero out the opposite-direction contribution, so both donor
        # choices combine into one dense expression; the last row is the
        # outflow through the top boundary (v > 0 columns only).
        interior = self._flux_q_interior
        np.multiply(v_pos_full, density[:-1, :], out=interior)
        np.multiply(v_neg_full, density[1:, :], out=self._tmp_q)
        np.add(interior, self._tmp_q, out=interior)
        np.multiply(v_pos_full, density[-1, :], out=self._flux_q_top)

        # Flux difference with the boundary rows folded in (the interior
        # block holds interfaces 1..nq-1; rows 0 and nq live in the small
        # owned boundary arrays).
        diff = self._diff
        if reflect_at_zero:
            # Mass trying to leave through q = 0 stays: zero boundary flux.
            if self._flux_q0_dirty:
                self._flux_q_row0[:] = 0.0
                self._flux_q0_dirty = False
            np.copyto(diff[0], interior[0])
        else:
            np.multiply(v_neg, density[0, neg], out=self._flux_q_row0[neg])
            self._flux_q0_dirty = True
            np.subtract(interior[0], self._flux_q_row0, out=diff[0])
        np.subtract(interior[1:], interior[:-1], out=diff[1:-1])
        np.subtract(self._flux_q_top, interior[-1], out=diff[-1])
        if not scaled:
            np.multiply(diff, dt / self._dq, out=diff)
        np.subtract(density, diff, out=out)
        if clamp:
            np.maximum(out, 0.0, out=out)
        return out

    def advect_v(self, density: np.ndarray, dt: float,
                 out: Optional[np.ndarray] = None,
                 flush: bool = False,
                 scaled: bool = False) -> np.ndarray:
        """Advect along the growth-rate axis with the installed drift.

        Requires a prior :meth:`set_drift`.  Writes into *out* when given
        (must not alias *density*); otherwise returns a new array.  See
        :func:`upwind_advect_v` for the scheme.

        With ``flush=True`` the final non-negativity clamp also zeroes
        values below :data:`FLUSH_THRESHOLD` (used by the solver when the
        result feeds the dense diffusion matmul); the default keeps the
        plain ``max(·, 0)`` of the reference scheme bit-for-bit.
        """
        if self._drift is None:
            raise StabilityError("advect_v called before set_drift")
        max_courant = self._max_abs_drift * dt / self._dv
        if max_courant > 1.0 + 1e-12:
            raise StabilityError(
                f"v-advection violates CFL: max Courant number {max_courant:.3f}")
        if out is None:
            out = np.empty_like(density)

        # Upwind interface flux: drift times the donor-cell value.  The
        # direction select is folded into the pre-split interface drifts, so
        # the step is two dense multiplies and an add.  With ``scaled=True``
        # (solver static-drift path) the Courant factor dt/dν is folded into
        # per-dt cached copies of the split drifts, saving the full-array
        # scaling pass; callers whose drift changes every step should leave
        # it off, since each set_drift invalidates the cache.
        if scaled:
            drift_pair = self._scaled_drift.get(dt)
            if drift_pair is None:
                factor = dt / self._dv
                drift_pair = (self._drift_from_left * factor,
                              self._drift_from_right * factor)
                self._scaled_drift[dt] = drift_pair
                if len(self._scaled_drift) > 2:
                    self._scaled_drift.popitem(last=False)
            else:
                self._scaled_drift.move_to_end(dt)
            drift_from_left, drift_from_right = drift_pair
        else:
            drift_from_left = self._drift_from_left
            drift_from_right = self._drift_from_right
        inner = self._inner_v
        np.multiply(drift_from_left, density[:, :-1], out=inner)
        np.multiply(drift_from_right, density[:, 1:], out=self._tmp)
        np.add(inner, self._tmp, out=inner)

        # Flux difference with the no-flux walls folded in: the wall fluxes
        # at interfaces 0 and nv are identically zero, so the first and last
        # columns reduce to ±the adjacent inner flux.
        diff = self._diff
        np.copyto(diff[:, 0], inner[:, 0])
        np.subtract(inner[:, 1:], inner[:, :-1], out=diff[:, 1:-1])
        np.subtract(0.0, inner[:, -1], out=diff[:, -1])
        if not scaled:
            np.multiply(diff, dt / self._dv, out=diff)
        np.subtract(density, diff, out=out)
        if flush:
            np.greater_equal(out, FLUSH_THRESHOLD, out=self._flush_mask)
            np.multiply(out, self._flush_mask, out=out)
        else:
            np.maximum(out, 0.0, out=out)
        return out


#: Per-grid workspace cache backing the stateless convenience functions.
_WORKSPACE_CACHE: OrderedDict = OrderedDict()
_WORKSPACE_CACHE_SIZE = 8


def _workspace(grid: PhaseGrid2D) -> UpwindAdvection:
    workspace = _WORKSPACE_CACHE.get(grid)
    if workspace is None:
        workspace = UpwindAdvection(grid)
        _WORKSPACE_CACHE[grid] = workspace
        if len(_WORKSPACE_CACHE) > _WORKSPACE_CACHE_SIZE:
            _WORKSPACE_CACHE.popitem(last=False)
    else:
        _WORKSPACE_CACHE.move_to_end(grid)
    return workspace


def upwind_advect_q(density: np.ndarray, grid: PhaseGrid2D, dt: float,
                    reflect_at_zero: bool = True) -> np.ndarray:
    """Advect the density along the queue axis with per-column velocity ``ν``.

    Parameters
    ----------
    density:
        Joint density on the grid, shape ``(nq, nv)``.
    grid:
        The phase grid.
    dt:
        Time step (must satisfy the CFL condition; checked).
    reflect_at_zero:
        When true (the default, matching the paper's model), mass that would
        flow out through ``q = 0`` is retained in the first cell instead of
        leaving the domain: a queue cannot become negative.

    Returns
    -------
    numpy.ndarray
        The advected density (new array).
    """
    return _workspace(grid).advect_q(density, dt,
                                     reflect_at_zero=reflect_at_zero)


def upwind_advect_v(density: np.ndarray, grid: PhaseGrid2D, drift: np.ndarray,
                    dt: float) -> np.ndarray:
    """Advect the density along the growth-rate axis with velocity ``g(q, λ)``.

    The term is conservative, ``(g f)_ν``, so the interface flux uses the
    upwind cell value multiplied by the interface drift (taken as the
    average of the two adjacent cell drifts).  Both ν-boundaries are treated
    as no-flux walls: the control law cannot push the rate outside the
    modelled range, so mass accumulates at the boundary cells rather than
    disappearing.  The grid should be chosen wide enough that this is a
    negligible effect (validated by the mass-conservation tests).

    Parameters
    ----------
    density:
        Joint density, shape ``(nq, nv)``.
    grid:
        The phase grid.
    drift:
        Drift ``g`` evaluated at the cell centres, shape ``(nq, nv)``.
    dt:
        Time step (CFL-checked).
    """
    workspace = _workspace(grid)
    workspace.set_drift(drift)
    return workspace.advect_v(density, dt)
