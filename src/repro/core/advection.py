"""Conservative upwind advection steps for the Fokker-Planck solver.

Equation 14 contains two advection terms:

* ``ν f_q`` -- transport of probability mass along the queue axis with
  velocity ``ν`` (each row of the ``(q, ν)`` grid moves with its own
  constant velocity, the cell's growth rate), and
* ``(g f)_ν`` -- transport along the growth-rate axis with the
  *conservative* velocity field ``g(q, λ)`` (the drift of the control law).

Both are discretised with a first-order finite-volume upwind scheme written
in flux form, which guarantees exact conservation of the total probability
mass up to what leaves through the outflow boundaries.  The queue-axis
boundary at ``q = 0`` is handled by the boundary-condition object (mass that
would be advected below zero is reflected back into the first cell,
implementing the paper's convention ``ν = 0`` when ``Q = 0`` and ``λ < μ``).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import StabilityError
from ..numerics.grids import PhaseGrid2D

__all__ = ["upwind_advect_q", "upwind_advect_v", "cfl_time_step"]


def cfl_time_step(grid: PhaseGrid2D, v_drift: np.ndarray, cfl: float,
                  max_dt: float) -> float:
    """Return the largest stable time step for the explicit advection steps.

    The step must satisfy ``|ν| dt / dq ≤ cfl`` for the q-advection and
    ``|g| dt / dν ≤ cfl`` for the ν-advection.  *v_drift* is the drift array
    ``g`` evaluated on the grid (shape ``(nq, nv)``).
    """
    max_q_speed = float(np.max(np.abs(grid.v_centers)))
    max_v_speed = float(np.max(np.abs(v_drift))) if v_drift.size else 0.0
    limits = [max_dt]
    if max_q_speed > 0.0:
        limits.append(cfl * grid.dq / max_q_speed)
    if max_v_speed > 0.0:
        limits.append(cfl * grid.dv / max_v_speed)
    dt = min(limits)
    if dt <= 0.0:
        raise StabilityError("computed CFL time step is non-positive")
    return dt


def upwind_advect_q(density: np.ndarray, grid: PhaseGrid2D, dt: float,
                    reflect_at_zero: bool = True) -> np.ndarray:
    """Advect the density along the queue axis with per-column velocity ``ν``.

    Parameters
    ----------
    density:
        Joint density on the grid, shape ``(nq, nv)``.
    grid:
        The phase grid.
    dt:
        Time step (must satisfy the CFL condition; checked).
    reflect_at_zero:
        When true (the default, matching the paper's model), mass that would
        flow out through ``q = 0`` is retained in the first cell instead of
        leaving the domain: a queue cannot become negative.

    Returns
    -------
    numpy.ndarray
        The advected density (new array).
    """
    v = grid.v_centers
    courant = np.abs(v) * dt / grid.dq
    if np.any(courant > 1.0 + 1e-12):
        raise StabilityError(
            f"q-advection violates CFL: max Courant number {courant.max():.3f}")

    # Interface fluxes along q for every v column: flux[i] is the flux through
    # the interface between cell i-1 and cell i (i = 0..nq).
    nq, nv = density.shape
    flux = np.zeros((nq + 1, nv))

    positive = v > 0.0
    negative = v < 0.0

    # For v > 0 mass moves toward larger q: upwind value is the left cell.
    flux[1:nq, positive] = v[positive] * density[:-1, positive]
    # Outflow through the top boundary (q = q_max) for v > 0.
    flux[nq, positive] = v[positive] * density[-1, positive]

    # For v < 0 mass moves toward smaller q: upwind value is the right cell.
    flux[1:nq, negative] = v[negative] * density[1:, negative]
    # Flux through the q = 0 boundary for v < 0 (mass trying to leave).
    if reflect_at_zero:
        flux[0, :] = 0.0
    else:
        flux[0, negative] = v[negative] * density[0, negative]

    updated = density - dt / grid.dq * (flux[1:] - flux[:-1])
    return np.maximum(updated, 0.0)


def upwind_advect_v(density: np.ndarray, grid: PhaseGrid2D, drift: np.ndarray,
                    dt: float) -> np.ndarray:
    """Advect the density along the growth-rate axis with velocity ``g(q, λ)``.

    The term is conservative, ``(g f)_ν``, so the interface flux uses the
    upwind cell value multiplied by the interface drift (taken as the
    average of the two adjacent cell drifts).  Both ν-boundaries are treated
    as no-flux walls: the control law cannot push the rate outside the
    modelled range, so mass accumulates at the boundary cells rather than
    disappearing.  The grid should be chosen wide enough that this is a
    negligible effect (validated by the mass-conservation tests).

    Parameters
    ----------
    density:
        Joint density, shape ``(nq, nv)``.
    grid:
        The phase grid.
    drift:
        Drift ``g`` evaluated at the cell centres, shape ``(nq, nv)``.
    dt:
        Time step (CFL-checked).
    """
    if drift.shape != density.shape:
        raise StabilityError("drift array shape does not match density shape")
    courant = np.abs(drift) * dt / grid.dv
    if np.any(courant > 1.0 + 1e-12):
        raise StabilityError(
            f"v-advection violates CFL: max Courant number {courant.max():.3f}")

    nq, nv = density.shape
    # Interface drift between column j-1 and j.
    interface_drift = 0.5 * (drift[:, :-1] + drift[:, 1:])

    flux = np.zeros((nq, nv + 1))
    upwind_from_left = interface_drift > 0.0
    upwind_from_right = ~upwind_from_left

    left_values = density[:, :-1]
    right_values = density[:, 1:]
    inner_flux = np.where(upwind_from_left,
                          interface_drift * left_values,
                          interface_drift * right_values)
    flux[:, 1:nv] = inner_flux
    # No-flux walls at both ν boundaries.
    flux[:, 0] = 0.0
    flux[:, nv] = 0.0

    updated = density - dt / grid.dv * (flux[:, 1:] - flux[:, :-1])
    return np.maximum(updated, 0.0)
