"""Boundary-condition policy for the Fokker-Planck phase grid.

The paper's model has one hard physical boundary -- the queue length cannot
be negative -- expressed through the convention ``ν(t) = 0`` whenever
``Q(t) = 0`` and ``λ(t) < μ``.  On the discretised phase plane this becomes a
reflecting boundary at ``q = 0``.  The remaining three edges of the grid are
artificial truncations of an unbounded domain; for them the solver can
either reflect (conserving mass exactly, the default) or absorb (useful when
one wants the mass leaving through ``q = q_max`` to be interpreted as a
buffer-overflow probability).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..numerics.grids import PhaseGrid2D

__all__ = ["BoundaryConditions"]


@dataclass(frozen=True)
class BoundaryConditions:
    """Selects how each edge of the phase grid treats outgoing mass.

    Attributes
    ----------
    reflect_q_zero:
        Reflect mass at ``q = 0`` (the physical boundary; should normally
        stay ``True``).
    absorb_q_max:
        When ``True``, mass advected past ``q = q_max`` is removed from the
        system and accumulated in :attr:`FokkerPlanckSolver.absorbed_mass`,
        modelling a finite buffer of that size.  When ``False`` the edge is
        reflecting.
    """

    reflect_q_zero: bool = True
    absorb_q_max: bool = False

    def apply_post_step(self, density: np.ndarray, grid: PhaseGrid2D,
                        inplace: bool = False) -> tuple[np.ndarray, float]:
        """Post-process *density* after a full time step.

        Returns the (possibly modified) density and the amount of
        probability mass absorbed during this step (zero unless
        ``absorb_q_max`` is set, in which case the mass sitting in the last
        queue cell with positive growth rate is removed, approximating
        packets lost to a full buffer).

        When *inplace* is true the absorption zeroes the caller's array
        directly instead of copying first -- the Fokker-Planck solver owns
        its density buffer and uses this to keep the hot loop allocation
        free.
        """
        absorbed = 0.0
        if self.absorb_q_max:
            positive_growth = grid.v_centers > 0.0
            cell_mass = density[-1, positive_growth] * grid.cell_area
            absorbed = float(np.sum(cell_mass))
            if not inplace:
                density = density.copy()
            density[-1, positive_growth] = 0.0
        return density, absorbed
