"""Pluggable time-marching steppers for the Fokker-Planck solver.

Historically the marching scheme lived inline in
:class:`repro.core.solver.FokkerPlanckSolver`: per-axis upwind advection
sweeps glued to a Crank-Nicolson diffusion step.  This module extracts that
substep into an :class:`FPStepper` seam with two implementations:

* :class:`AxisSplitStepper` (``"axis"``, the default) reproduces the
  historical per-axis splitting *bit for bit* — it owns the same
  :class:`~repro.core.advection.UpwindAdvection` /
  :class:`~repro.core.diffusion.CrankNicolsonDiffusion` kernels, shares the
  same scratch arena and issues the same kernel calls in the same order, so
  the golden pins of ``tests/unit/test_fp_golden.py`` hold unchanged.
* :class:`ADIStepper` (``"adi"``) is a Peaceman-Rachford 2-D operator-split
  scheme that treats q- and ν-direction transport implicitly in alternating
  half-steps:

      f*      = (I − h A₁)⁻¹ (I + h A₂) fⁿ        (h = dt/2)
      fⁿ⁺¹    = (I − h A₂)⁻¹ (I + h A₁) f*

  with ``A₁ = G_q + diffusion`` (all q-direction transport) and
  ``A₂ = G_ν`` (ν-direction transport), both taken from the term-by-term
  COO assembly of :mod:`repro.core.generator`.  In the direction-contiguous
  orderings each implicit factor is a flat tridiagonal matrix that decouples
  into independent per-line systems, so the solves run on the sparse-operator
  kernel family of :mod:`repro.numerics.backend`
  (:meth:`~repro.numerics.backend.NumericsBackend.factorize_sparse`):
  ``scipy.sparse`` SuperLU on the scipy backend, one vectorized batched
  Thomas sweep on the pure-numpy fallback.  Factorizations are cached per
  substep size exactly like the PR 2 Crank-Nicolson operator cache.

Two properties make ADI the large-grid scheme:

* **Stationary fidelity.**  At a fixed point ``f`` of the Peaceman-Rachford
  recurrence the two half-step equations force ``(A₁ + A₂) f = 0`` exactly —
  the marched tail is the null vector of the *continuous* discrete
  generator, with no splitting error, which is what the ≤1e-6 stationary
  agreement gate pins.
* **Step doubling.**  Diffusion is implicit in the q half (no ``r > 2``
  sub-cycling, ever) and each explicit half advances only ``h = dt/2``, so
  the stepper runs stably at twice the per-axis CFL step while each explicit
  half keeps the Courant number ≤ the configured CFL bound (which is what
  preserves positivity of the upwind halves; the implicit factors are
  M-matrices whose inverses are non-negative).

Health monitoring: the ADI intermediate ``f*`` is a genuine physical
density candidate, so when a :class:`~repro.health.HealthMonitor` is active
the stepper stashes it and :meth:`FPStepper.record_health` feeds it to
``monitor.check_fp_half_step`` at the solver's usual check cadence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple, Type

import numpy as np

from ..exceptions import ConfigurationError, StabilityError
from ..numerics.backend import NumericsBackend
from ..numerics.grids import PhaseGrid2D
from .advection import (UpwindAdvection, cfl_time_step_from_speeds,
                        shared_scratch_size)
from .boundary import BoundaryConditions
from .diffusion import CrankNicolsonDiffusion

__all__ = ["FPStepper", "AxisSplitStepper", "ADIStepper", "STEPPERS",
           "available_steppers", "is_known_stepper", "get_stepper"]

#: Retain at most this many per-``dt`` operator cache entries per direction.
#: The CFL schedule produces two step sizes per output interval (the
#: free-running substep and the truncated interval-final one), so a handful
#: of entries covers every schedule while bounding memory.
_MAX_CACHED_OPERATORS = 8


class FPStepper:
    """One Fokker-Planck marching substep, bound to a grid and σ.

    The solver drives a stepper through a small protocol:

    1. :meth:`set_drift` installs the ν-drift field (once for a static
       drift, per substep under delayed feedback);
    2. :meth:`free_running_dt` / :meth:`bounded_dt` report the largest
       stable substep for the installed drift;
    3. :meth:`begin` announces per-solve flags (static drift, monitoring);
    4. :meth:`advance` marches ``density`` by ``dt`` using ``work`` as the
       ping-pong buffer and returns the (possibly swapped) pair.

    Implementations own all kernel state (scratch arenas, operator caches)
    so a solver holds exactly one stepper for its lifetime.
    """

    #: Registry name of the stepper.
    name: str = ""

    def __init__(self, grid: PhaseGrid2D, sigma: float,
                 backend: NumericsBackend, boundary: BoundaryConditions):
        self.grid = grid
        self.sigma = float(sigma)
        self.backend = backend
        self.boundary = boundary

    @property
    def max_abs_drift(self) -> float:
        """``max |g|`` of the drift installed by :meth:`set_drift`."""
        raise NotImplementedError

    def set_drift(self, drift: np.ndarray) -> None:
        """Install the ν-drift field ``g`` and refresh drift-derived state."""
        raise NotImplementedError

    def begin(self, static_drift: bool, monitored: bool) -> None:
        """Announce per-solve flags before the marching loop starts."""
        self._static_drift = static_drift
        self._monitored = monitored

    def free_running_dt(self, cfl: float) -> float:
        """Largest stable substep for the installed drift (may be ``inf``)."""
        raise NotImplementedError

    def bounded_dt(self, cfl: float, max_dt: float) -> float:
        """The free-running step clipped to *max_dt*."""
        raise NotImplementedError

    def advance(self, density: np.ndarray, dt: float, work: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        """March *density* by *dt*; returns the new ``(density, work)`` pair."""
        raise NotImplementedError

    def record_health(self, monitor, t: float) -> None:
        """Feed stepper-internal intermediate state to a health monitor.

        Called at the solver's per-interval check cadence.  The default is a
        no-op (the per-axis scheme has no intermediates beyond the committed
        density, which the solver already checks).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class AxisSplitStepper(FPStepper):
    """The historical per-axis splitting, extracted verbatim.

    One substep is ``CN(dt) · A_ν(dt) · A_q(dt)``: explicit upwind advection
    along q, explicit upwind advection along ν, Crank-Nicolson diffusion
    along q (sub-cycled when the diffusion number exceeds 2).  Kernel calls,
    argument flags and buffer hand-offs are exactly those of the pre-seam
    solver hot loop, so this stepper is bit-identical to it.
    """

    name = "axis"

    def __init__(self, grid: PhaseGrid2D, sigma: float,
                 backend: NumericsBackend, boundary: BoundaryConditions):
        super().__init__(grid, sigma, backend, boundary)
        # One shared scratch arena: the advection and diffusion kernels use
        # their scratch at disjoint times within a substep, so overlaying
        # them keeps the working set cache-resident.
        arena = np.empty(shared_scratch_size(grid))
        self.advection = UpwindAdvection(grid, scratch=arena)
        self.diffusion = CrankNicolsonDiffusion(grid, sigma, backend=backend,
                                                scratch=arena)
        self._sigma_zero = self.sigma == 0.0
        self._reflect_q_zero = boundary.reflect_q_zero
        self._static_drift = True
        self._monitored = False

    @property
    def max_abs_drift(self) -> float:
        return self.advection.max_abs_drift

    def set_drift(self, drift: np.ndarray) -> None:
        self.advection.set_drift(drift)

    def free_running_dt(self, cfl: float) -> float:
        return cfl_time_step_from_speeds(self.grid,
                                         self.advection.max_abs_drift, cfl,
                                         max_dt=np.inf)

    def bounded_dt(self, cfl: float, max_dt: float) -> float:
        return cfl_time_step_from_speeds(self.grid,
                                         self.advection.max_abs_drift, cfl,
                                         max_dt=max_dt)

    def advance(self, density: np.ndarray, dt: float, work: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        # Two buffers suffice: each kernel's input is dead once it has run,
        # so its buffer becomes the next kernel's output.  The σ > 0 path
        # uses the fast kernel variants (prescaled velocities, no
        # intermediate clamp, flush-clamped output); the σ = 0 path keeps
        # the bit-exact reference arithmetic.
        sigma_zero = self._sigma_zero
        self.advection.advect_q(density, dt, self._reflect_q_zero, work,
                                not sigma_zero, sigma_zero)
        if sigma_zero:
            # The diffusion step is a no-op: the ν-advection output (written
            # over the dead pre-step density) is the state.
            self.advection.advect_v(work, dt, density)
        else:
            # flush=True zeroes the far-tail values the advection re-creates
            # below the diffusion flush threshold: products of two
            # sub-threshold magnitudes inside the Crank-Nicolson matmul land
            # in the (microcode-slow) IEEE subnormal range.
            self.advection.advect_v(work, dt, density, True,
                                    self._static_drift)
            self.diffusion.step(density, dt, work)
            density, work = work, density
        return density, work


class ADIStepper(FPStepper):
    """Peaceman-Rachford 2-D operator-split stepper on sparse kernels.

    See the module docstring for the scheme.  Construction is cheap; the
    discrete operators are assembled on the first :meth:`set_drift` (the
    q-direction operator ``A₁`` is drift-independent and built once, the
    ν-direction operator ``A₂`` is rebuilt — and its per-``dt`` implicit
    factorizations invalidated — whenever the drift changes, which is what
    the delayed-feedback solver does every substep).
    """

    name = "adi"

    def __init__(self, grid: PhaseGrid2D, sigma: float,
                 backend: NumericsBackend, boundary: BoundaryConditions):
        super().__init__(grid, sigma, backend, boundary)
        if not boundary.reflect_q_zero:
            raise ConfigurationError(
                "the 'adi' stepper requires the reflecting q=0 boundary "
                "(its q-direction operator is assembled with the paper's "
                "reflecting convention); use stepper='axis' for "
                "non-reflecting boundaries")
        nq, nv = grid.shape
        self._nq = nq
        self._nv = nv
        self.n = nq * nv
        self._max_abs_drift = 0.0
        self._static_drift = True
        self._monitored = False
        self._generator = None
        # Static q-direction bands (ν-major ordering) built on first use.
        self._q_bands: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        # Current ν-direction bands (row-major ordering).
        self._v_bands: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        # Per-dt operator caches: dt -> (explicit_bands, implicit_solver).
        self._q_ops: OrderedDict = OrderedDict()
        self._v_ops: OrderedDict = OrderedDict()
        # Flat work vectors: two ν-major buffers for the q-direction half
        # steps, one band-product scratch, one stashed intermediate for the
        # health monitor.
        self._flat_t = np.empty(self.n)
        self._flat_t2 = np.empty(self.n)
        self._band_tmp = np.empty(self.n)
        self._stash: Optional[np.ndarray] = None

    @property
    def max_abs_drift(self) -> float:
        return self._max_abs_drift

    def set_drift(self, drift: np.ndarray) -> None:
        drift = np.asarray(drift, dtype=float)
        if drift.shape != self.grid.shape:
            raise StabilityError("drift array shape does not match density shape")
        if self._generator is None:
            from .generator import DiscreteGenerator
            self._generator = DiscreteGenerator(self.grid, self.sigma, drift)
            self._q_bands = self._generator.q_direction_bands()
            self._v_bands = self._generator.v_direction_bands()
        else:
            self._v_bands = self._generator.v_direction_bands(drift)
        self._v_ops.clear()
        self._max_abs_drift = (float(np.max(np.abs(drift)))
                               if drift.size else 0.0)

    def free_running_dt(self, cfl: float) -> float:
        # Each explicit half advances h = dt/2, so the full step can be
        # twice the per-axis CFL step while every explicit half keeps its
        # Courant number within the configured bound; diffusion is implicit
        # and never constrains dt.
        return 2.0 * cfl_time_step_from_speeds(self.grid,
                                               self._max_abs_drift, cfl,
                                               max_dt=np.inf)

    def bounded_dt(self, cfl: float, max_dt: float) -> float:
        return min(self.free_running_dt(cfl), max_dt)

    def _ops_for(self, cache: OrderedDict, bands, block_size: int, h: float):
        """The cached ``(I + h A, (I − h A)⁻¹)`` pair for one half-step size.

        The explicit factor is stored as premultiplied bands
        ``(h·lower, 1 + h·diag, h·upper)``; the implicit factor is a backend
        sparse factorization (COO triplets of ``I − h A``, with the
        decoupled-block structure hint).  Keyed by ``h`` with LRU eviction,
        mirroring the PR 2 Crank-Nicolson operator cache.
        """
        ops = cache.get(h)
        if ops is not None:
            cache.move_to_end(h)
            return ops
        lower, diag, upper = bands
        explicit = (h * lower, 1.0 + h * diag, h * upper)
        n = self.n
        idx = np.arange(n)
        rows = np.concatenate([idx, idx[1:], idx[:-1]])
        cols = np.concatenate([idx, idx[1:] - 1, idx[:-1] + 1])
        values = np.concatenate([1.0 - h * diag, -h * lower[1:],
                                 -h * upper[:-1]])
        implicit = self.backend.factorize_sparse(rows, cols, values, n,
                                                 block_size=block_size)
        ops = (explicit, implicit)
        cache[h] = ops
        if len(cache) > _MAX_CACHED_OPERATORS:
            cache.popitem(last=False)
        return ops

    def _apply_explicit(self, explicit, x: np.ndarray, out: np.ndarray
                        ) -> None:
        """``out = x + h·A x`` from premultiplied bands (block-safe).

        The ``±1`` band entries at block boundaries are exact zeros by
        construction (the generator zeroes couplings that would cross a
        grid line), so one flat shifted multiply-add per band is correct
        for all blocks at once.
        """
        lower_h, diag_1h, upper_h = explicit
        tmp = self._band_tmp
        np.multiply(diag_1h, x, out=out)
        head = tmp[:self.n - 1]
        np.multiply(upper_h[:-1], x[1:], out=head)
        out[:-1] += head
        np.multiply(lower_h[1:], x[:-1], out=head)
        out[1:] += head

    def advance(self, density: np.ndarray, dt: float, work: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        if self._v_bands is None:
            raise StabilityError("ADI advance called before set_drift")
        h = 0.5 * dt
        grid = self.grid
        courant_q = grid.max_abs_v * h / grid.dq
        courant_v = self._max_abs_drift * h / grid.dv
        if max(courant_q, courant_v) > 1.0 + 1e-12:
            raise StabilityError(
                f"ADI explicit half-step violates CFL: max Courant number "
                f"{max(courant_q, courant_v):.3f}")

        nq, nv = self._nq, self._nv
        v_explicit, v_implicit = self._ops_for(self._v_ops, self._v_bands,
                                               nv, h)
        q_explicit, q_implicit = self._ops_for(self._q_ops, self._q_bands,
                                               nq, h)

        flat = density.reshape(-1)
        flat_work = work.reshape(-1)

        # Explicit ν half: y = (I + h A₂) fⁿ       (row-major)
        self._apply_explicit(v_explicit, flat, flat_work)
        # Reorder to ν-major for the q-direction half-steps.
        transposed = self._flat_t.reshape(nv, nq)
        np.copyto(transposed, work.reshape(nq, nv).T)
        # Implicit q half: (I − h A₁) f* = y       (ν-major, per-column)
        q_implicit.solve(self._flat_t, out=self._flat_t2)
        if self._monitored:
            # Stash the Peaceman-Rachford intermediate for the health
            # monitor (checked at the solver's per-interval cadence).
            if self._stash is None:
                self._stash = np.empty(self.n)
            np.copyto(self._stash, self._flat_t2)
        # Explicit q half: z = (I + h A₁) f*       (ν-major)
        self._apply_explicit(q_explicit, self._flat_t2, self._flat_t)
        # Back to row-major.
        np.copyto(work.reshape(nq, nv),
                  self._flat_t.reshape(nv, nq).T)
        # Implicit ν half: (I − h A₂) fⁿ⁺¹ = z     (row-major, per-row)
        v_implicit.solve(flat_work, out=flat)
        # The upwind halves are positivity-preserving and the implicit
        # factors are M-matrices, so negatives are rounding-level; clamp
        # them exactly as the per-axis kernels do.
        np.maximum(density, 0.0, out=density)
        return density, work

    @property
    def last_intermediate(self) -> Optional[np.ndarray]:
        """The most recent stashed Peaceman-Rachford intermediate (flat)."""
        return self._stash

    def record_health(self, monitor, t: float) -> None:
        if monitor is None or self._stash is None:
            return
        monitor.check_fp_half_step(self._stash, self.grid, t)


#: Registry of stepper implementations by name.
STEPPERS: Dict[str, Type[FPStepper]] = {
    AxisSplitStepper.name: AxisSplitStepper,
    ADIStepper.name: ADIStepper,
}


def available_steppers() -> list:
    """Names of the registered steppers."""
    return sorted(STEPPERS)


def is_known_stepper(name: str) -> bool:
    """Whether *name* is resolvable by :func:`get_stepper` (``""`` = default)."""
    return name == "" or name in STEPPERS


def get_stepper(name: Optional[str] = None) -> Type[FPStepper]:
    """Resolve a stepper *name* to its implementation class.

    ``None`` or the empty string select the default per-axis splitting.
    Unknown names raise :class:`~repro.exceptions.ConfigurationError`
    listing the registered steppers.
    """
    if not name:
        return AxisSplitStepper
    stepper = STEPPERS.get(name)
    if stepper is None:
        raise ConfigurationError(
            f"unknown FP stepper {name!r}; available steppers: "
            f"{available_steppers()}")
    return stepper
