"""High-level Fokker-Planck solver for Equation 14.

:class:`FokkerPlanckSolver` time-integrates the joint density ``f(t, q, ν)``
of queue length and queue growth rate under

    f_t + ν f_q + (g f)_ν = (σ²/2) f_qq

using a pluggable marching scheme (see :mod:`repro.core.stepper`):

* ``stepper="axis"`` (the default) is the historical per-axis splitting —
  explicit upwind advection along ``q``, explicit upwind advection along
  ``ν``, Crank-Nicolson diffusion along ``q`` — kept bit-identical to the
  pre-seam solver;
* ``stepper="adi"`` is the Peaceman-Rachford 2-D operator-split scheme
  whose implicit half-steps run on the sparse-operator backend kernels and
  which scales to grids the dense per-axis path cannot reach.

The solver automatically sub-cycles the requested output step so the
explicit sub-steps respect the CFL condition, records snapshots of the full
density plus its moments, and tracks the probability mass absorbed at the
``q = q_max`` boundary when a finite buffer is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..config import GridParameters, SystemParameters, TimeParameters
from ..control.base import RateControl
from ..exceptions import StabilityError
from ..health import HealthMonitor, consume_numerical_fault
from ..health.report import HealthLog
from ..numerics.backend import get_backend
from ..numerics.grids import PhaseGrid2D
from .boundary import BoundaryConditions
from .initial import gaussian_initial_density
from .stepper import get_stepper
from .moments import DensityMoments, compute_moments, marginal_q, tail_probability

__all__ = ["FokkerPlanckSolver", "FokkerPlanckResult", "DensitySnapshot"]


@dataclass
class DensitySnapshot:
    """The joint density and its moments at one output time."""

    time: float
    density: np.ndarray
    moments: DensityMoments


@dataclass
class FokkerPlanckResult:
    """Full output of a Fokker-Planck integration.

    Attributes
    ----------
    grid:
        The phase grid the densities live on.
    snapshots:
        Density snapshots at the requested output interval (always includes
        the initial and the final time).
    absorbed_mass:
        Total probability mass removed at the ``q = q_max`` boundary (zero
        unless a finite buffer was modelled).
    health:
        The :class:`~repro.health.HealthLog` of the run when health
        monitoring was active, else ``None``.
    """

    grid: PhaseGrid2D
    snapshots: List[DensitySnapshot] = field(default_factory=list)
    absorbed_mass: float = 0.0
    health: Optional[HealthLog] = None

    @property
    def times(self) -> np.ndarray:
        """Array of snapshot times."""
        return np.asarray([snap.time for snap in self.snapshots])

    @property
    def mean_queue(self) -> np.ndarray:
        """Mean queue length at every snapshot."""
        return np.asarray([snap.moments.mean_q for snap in self.snapshots])

    @property
    def std_queue(self) -> np.ndarray:
        """Queue-length standard deviation at every snapshot."""
        return np.asarray([snap.moments.std_q for snap in self.snapshots])

    @property
    def mean_growth_rate(self) -> np.ndarray:
        """Mean queue growth rate ``E[ν]`` at every snapshot."""
        return np.asarray([snap.moments.mean_v for snap in self.snapshots])

    def mean_rate(self, mu: float) -> np.ndarray:
        """Mean arrival rate ``E[λ] = E[ν] + μ`` at every snapshot."""
        return self.mean_growth_rate + mu

    @property
    def final_density(self) -> np.ndarray:
        """The joint density at the final snapshot."""
        return self.snapshots[-1].density

    @property
    def final_moments(self) -> DensityMoments:
        """Moments at the final snapshot."""
        return self.snapshots[-1].moments

    def final_marginal_q(self) -> np.ndarray:
        """Queue-length marginal density at the final time."""
        return marginal_q(self.final_density, self.grid)

    def overflow_probability(self, buffer_size: float) -> float:
        """``P(Q > buffer_size)`` at the final time."""
        return tail_probability(self.final_density, self.grid, buffer_size)


class FokkerPlanckSolver:
    """Operator-splitting integrator for the controlled-queue Fokker-Planck PDE.

    Parameters
    ----------
    params:
        Physical system parameters (service rate, σ, ...).
    control:
        Rate-control law supplying the drift ``g(q, λ)``.
    grid_params:
        Phase-plane discretisation.
    boundary:
        Boundary-condition policy (defaults to all-reflecting).
    delayed_queue_provider:
        Optional callable ``t → q_delayed`` giving the queue value the
        controller *sees* at time ``t``.  When supplied, the ν-drift is
        evaluated at that (scalar) delayed queue value for the whole grid
        instead of at each cell's own ``q``; this is the quasi-deterministic
        delayed-feedback approximation used in Section 7 experiments (see
        :mod:`repro.delay.fokker_planck_delay` for the driver that builds
        the provider self-consistently).
    """

    def __init__(self, params: SystemParameters, control: RateControl,
                 grid_params: Optional[GridParameters] = None,
                 boundary: Optional[BoundaryConditions] = None,
                 delayed_queue_provider: Optional[Callable[[float], float]] = None):
        self.params = params
        self.control = control
        self.grid_params = grid_params if grid_params is not None else GridParameters()
        self.boundary = boundary if boundary is not None else BoundaryConditions()
        self.delayed_queue_provider = delayed_queue_provider
        self.grid = PhaseGrid2D.from_bounds(
            q_max=self.grid_params.q_max, nq=self.grid_params.nq,
            v_min=self.grid_params.v_min, v_max=self.grid_params.v_max,
            nv=self.grid_params.nv)
        # Pre-compute the (static) drift field for the undelayed case.
        q_mesh, v_mesh = self.grid.meshgrid()
        self._q_mesh = q_mesh
        self._v_mesh = v_mesh
        self._static_drift = np.asarray(
            control.drift_in_growth_coordinates(q_mesh, v_mesh, params.mu),
            dtype=float)
        # Kernel backend plus the marching stepper, which owns all reusable
        # hot-loop machinery (scratch arenas, preallocated kernel
        # workspaces, cached implicit operators); the solver keeps only the
        # ping-pong work buffer shared by every solve() on this instance.
        self.backend = get_backend(params.backend or None)
        self.stepper = get_stepper(params.stepper or None)(
            self.grid, params.sigma, self.backend, self.boundary)
        self._work_a = np.empty(self.grid.shape)

    def default_initial_density(self, q0: float, rate0: float) -> np.ndarray:
        """A narrow Gaussian around the starting point ``(q0, λ0)``.

        The widths are tied to the grid spacing so the initial condition is
        always resolvable.
        """
        return gaussian_initial_density(
            self.grid, q0, rate0 - self.params.mu,
            q_std=max(1.5 * self.grid.dq, 0.5),
            v_std=max(1.5 * self.grid.dv, 0.02))

    def _drift_field(self, time: float) -> np.ndarray:
        if self.delayed_queue_provider is None:
            return self._static_drift
        delayed_queue = float(self.delayed_queue_provider(time))
        return np.asarray(
            self.control.drift_in_growth_coordinates(
                np.full_like(self._q_mesh, delayed_queue), self._v_mesh,
                self.params.mu),
            dtype=float)

    def solve(self, initial_density: np.ndarray,
              time_params: Optional[TimeParameters] = None) -> FokkerPlanckResult:
        """Integrate the PDE from *initial_density* over the configured horizon.

        The output step is ``time_params.dt``; each output step is internally
        sub-cycled so the explicit advection sub-steps respect the CFL limit
        ``time_params.cfl``.
        """
        time_params = time_params if time_params is not None else TimeParameters()
        density = np.asarray(initial_density, dtype=float).copy()
        if density.shape != self.grid.shape:
            raise StabilityError(
                f"initial density shape {density.shape} does not match grid "
                f"{self.grid.shape}")
        density = self.grid.normalize(np.maximum(density, 0.0))
        if consume_numerical_fault("nan-density"):
            # Deterministic chaos hook: poison the centre cell so the
            # per-interval finiteness check (and its policies) can be
            # exercised end to end by the fault-injection suite.
            density[density.shape[0] // 2, density.shape[1] // 2] = np.nan

        monitor = HealthMonitor.create(self.params.health, where="core.solver")

        result = FokkerPlanckResult(grid=self.grid)
        result.snapshots.append(DensitySnapshot(
            time=0.0, density=density.copy(),
            moments=compute_moments(density, self.grid)))

        t = 0.0
        absorbed_total = 0.0
        output_dt = time_params.dt
        steps_between_snapshots = time_params.snapshot_every
        n_outputs = time_params.n_steps

        # Hoist the per-substep invariants.  With a static drift field (the
        # undelayed case) the drift, its interface decomposition, max |g| and
        # therefore the free-running CFL step are all constant over the whole
        # integration, so every substep reuses them -- and, because the
        # substep dt repeats, every implicit substep hits the stepper's
        # cached operator for its step size.
        grid = self.grid
        stepper = self.stepper
        boundary = self.boundary
        absorbing = boundary.absorb_q_max
        cfl = time_params.cfl
        static_drift = self.delayed_queue_provider is None
        stepper.begin(static_drift, monitor is not None)
        if static_drift:
            stepper.set_drift(self._static_drift)
            free_dt = stepper.free_running_dt(cfl)
        work = self._work_a
        advance = stepper.advance

        for output_index in range(1, n_outputs + 1):
            target_time = min(output_index * output_dt, time_params.t_end)
            while t < target_time - 1e-12:
                if static_drift:
                    dt = min(target_time - t, free_dt)
                else:
                    stepper.set_drift(self._drift_field(t))
                    dt = stepper.bounded_dt(cfl, target_time - t)
                density, work = advance(density, dt, work)
                if absorbing:
                    _, absorbed = boundary.apply_post_step(density, grid,
                                                           inplace=True)
                    absorbed_total += absorbed
                t += dt

            # density >= 0, so a plain sum is finite iff every cell is (no
            # cancellation can hide an inf or a NaN, and a non-finite value
            # can never become finite again) -- checking once per output
            # interval therefore catches every blow-up before a snapshot is
            # recorded.  With monitoring active the same cadence also covers
            # positivity and mass conservation, and a blow-up reports the
            # first offending cell index instead of just aborting.
            if monitor is None:
                if not (density.sum() < np.inf):
                    raise StabilityError(
                        f"Fokker-Planck density became non-finite at t={t:.4g}")
            else:
                monitor.check_fp_density(density, grid, t,
                                         absorbed=absorbed_total)
                # Steppers with internal intermediates (the ADI half-step
                # state) surface them to the monitor at the same cadence.
                stepper.record_health(monitor, t)

            if (output_index % steps_between_snapshots == 0
                    or output_index == n_outputs):
                result.snapshots.append(DensitySnapshot(
                    time=t, density=density.copy(),
                    moments=compute_moments(density, grid)))

        result.absorbed_mass = absorbed_total
        if monitor is not None:
            result.health = monitor.log
        return result

    def solve_from_point(self, q0: float, rate0: float,
                         time_params: Optional[TimeParameters] = None
                         ) -> FokkerPlanckResult:
        """Convenience wrapper: start from the default Gaussian around a point."""
        return self.solve(self.default_initial_density(q0, rate0), time_params)
