"""Crank-Nicolson diffusion step along the queue axis.

The right-hand side of Equation 14, ``(σ²/2) f_qq``, models the variability
of the queue growth process (the feature that distinguishes the paper's
Fokker-Planck model from the deterministic fluid approximation).  It is
integrated implicitly with the Crank-Nicolson scheme, which is second-order
accurate in time and unconditionally stable, so the diffusion never
constrains the time step.

Neumann (zero-gradient, i.e. reflecting / no-flux) boundaries are used at
both ends of the queue axis so the diffusion conserves probability mass
exactly; the physical outflow at ``q = q_max`` is negligible provided the
grid extends well past the operating region, which the tests verify.
"""

from __future__ import annotations

import numpy as np

from ..numerics.grids import PhaseGrid2D
from ..numerics.tridiag import solve_tridiagonal

__all__ = ["crank_nicolson_diffuse_q"]


def crank_nicolson_diffuse_q(density: np.ndarray, grid: PhaseGrid2D,
                             sigma: float, dt: float) -> np.ndarray:
    """Apply one Crank-Nicolson step of ``f_t = (σ²/2) f_qq`` to *density*.

    Parameters
    ----------
    density:
        Joint density, shape ``(nq, nv)``.  Each ν-column diffuses
        independently along q.
    grid:
        The phase grid.
    sigma:
        Diffusion coefficient σ of Equation 14 (σ = 0 returns the input
        unchanged).
    dt:
        Time step.

    Returns
    -------
    numpy.ndarray
        The diffused density (new array, non-negative).
    """
    if sigma == 0.0:
        return density.copy()

    nq = grid.q_grid.n
    diffusivity = 0.5 * sigma * sigma
    r = diffusivity * dt / (2.0 * grid.dq * grid.dq)

    # Crank-Nicolson is unconditionally stable but oscillatory for very large
    # diffusion numbers; sub-cycle so each substep stays in the smooth regime
    # (keeps the density non-negative and the mass exactly conserved).
    if r > 2.0:
        n_sub = int(np.ceil(r / 2.0))
        updated = density
        for _ in range(n_sub):
            updated = crank_nicolson_diffuse_q(updated, grid, sigma, dt / n_sub)
        return updated

    # Implicit operator (I - r * L) and explicit operator (I + r * L) where L
    # is the standard second-difference matrix with Neumann boundaries.
    lower = np.full(nq, -r)
    upper = np.full(nq, -r)
    diag = np.full(nq, 1.0 + 2.0 * r)
    # Neumann boundary: ghost cell equals the boundary cell, so the boundary
    # rows only couple to one neighbour.
    diag[0] = 1.0 + r
    diag[-1] = 1.0 + r

    # Explicit half step (I + r L) applied column-wise, vectorised over ν.
    rhs = np.empty_like(density)
    rhs[1:-1, :] = (density[1:-1, :]
                    + r * (density[2:, :] - 2.0 * density[1:-1, :]
                           + density[:-2, :]))
    rhs[0, :] = density[0, :] + r * (density[1, :] - density[0, :])
    rhs[-1, :] = density[-1, :] + r * (density[-2, :] - density[-1, :])

    updated = solve_tridiagonal(lower, diag, upper, rhs)
    return np.maximum(updated, 0.0)
