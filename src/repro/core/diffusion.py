"""Crank-Nicolson diffusion step along the queue axis.

The right-hand side of Equation 14, ``(σ²/2) f_qq``, models the variability
of the queue growth process (the feature that distinguishes the paper's
Fokker-Planck model from the deterministic fluid approximation).  It is
integrated implicitly with the Crank-Nicolson scheme, which is second-order
accurate in time and unconditionally stable, so the diffusion never
constrains the time step.

Neumann (zero-gradient, i.e. reflecting / no-flux) boundaries are used at
both ends of the queue axis so the diffusion conserves probability mass
exactly; the physical outflow at ``q = q_max`` is negligible provided the
grid extends well past the operating region, which the tests verify.

Performance.  One Crank-Nicolson substep always applies the same pair of
operators ``(I - r L)^{-1} (I + r L)`` for a fixed diffusion number
``r = (σ²/2) dt / (2 dq²)``; the Fokker-Planck solver calls it with the
same ``dt`` on every substep of an output interval.  :class:`
CrankNicolsonDiffusion` therefore caches, keyed by ``r``:

* for moderate grids, the *combined* dense operator
  ``M = (I - r L)^{-1} (I + r L)`` -- one BLAS matrix-matrix product per
  substep, no python-level row loop at all;
* for large grids (``nq > dense_limit``), a reusable tridiagonal
  factorization from the active :mod:`repro.numerics.backend` plus a
  preallocated right-hand-side scratch buffer.

Sub-cycling for very large diffusion numbers (``r > 2``) is an iterative
loop over the cached sub-operator rather than the recursive call of the
original implementation; the arithmetic is unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from ..numerics.backend import NumericsBackend, get_backend
from ..numerics.grids import PhaseGrid2D
from ..numerics.tridiag import solve_tridiagonal  # noqa: F401  (re-export)
from .advection import FLUSH_THRESHOLD

__all__ = ["CrankNicolsonDiffusion", "crank_nicolson_diffuse_q"]

#: Above this many queue cells the dense combined operator (nq² memory,
#: nq²·nv work per substep) loses to the O(nq·nv) factorized banded solve.
DENSE_NQ_LIMIT = 512

#: Retain at most this many per-``r`` operator cache entries per instance.
_MAX_CACHED_OPERATORS = 32

#: Build the dense combined operator only once a diffusion number has been
#: requested this many times.  Building it costs an O(nq³) solve, which only
#: pays off for the repeated substeps of the CFL schedule; one-off diffusion
#: numbers (e.g. the truncated final substep of each output interval) stay
#: on the O(nq) factorized path.
_DENSE_UPGRADE_HITS = 2


def _neumann_second_difference(nq: int) -> np.ndarray:
    """Dense second-difference matrix ``L`` with Neumann boundary rows."""
    main = np.full(nq, -2.0)
    main[0] = -1.0
    main[-1] = -1.0
    matrix = np.diag(main)
    off = np.arange(nq - 1)
    matrix[off, off + 1] = 1.0
    matrix[off + 1, off] = 1.0
    return matrix


#: Values below this magnitude are flushed to zero in the dense combined
#: operator and its output.  The entries of ``(I - rL)^{-1}`` decay
#: exponentially away from the diagonal and the density carries similarly
#: tiny far-tail values; their products land in the IEEE-754 subnormal range,
#: where the FPU falls back to microcoded assists that can triple the BLAS
#: matmul time.  Flushing perturbs the result by < 1e-145 -- far below the
#: 1e-12 agreement budget of the solver -- and keeps every product either
#: a normal number or an exact zero.  The same threshold is applied by
#: ``UpwindAdvection.advect_v(..., flush=True)`` to the density feeding this
#: operator, so the two flushes share one constant.
_FLUSH_THRESHOLD = FLUSH_THRESHOLD


class _DenseStep:
    """Combined CN substep ``density -> max(M @ density, 0)`` for one ``r``.

    The Neumann Laplacian commutes with the index reflection ``J``
    (``i -> nq-1-i``), so the combined operator ``M`` is centrosymmetric:
    ``J M J = M``.  For even ``nq`` the product ``M @ density`` therefore
    splits into two half-size products on the symmetric and antisymmetric
    parts of the density -- half the BLAS flops, and the two half-operators
    together use half the cache footprint of ``M``.
    """

    def __init__(self, nq: int, r: float, workspace: "CrankNicolsonDiffusion"):
        laplacian = _neumann_second_difference(nq)
        implicit = np.eye(nq) - r * laplacian
        explicit = np.eye(nq) + r * laplacian
        combined = np.linalg.solve(implicit, explicit)
        combined[np.abs(combined) < _FLUSH_THRESHOLD] = 0.0
        self._half = nq // 2 if nq % 2 == 0 else 0
        if self._half:
            h = self._half
            upper_left = combined[:h, :h]
            upper_right_flipped = combined[:h, h:][:, ::-1]
            # M @ d = [P s + Q a ; J (P s - Q a)] with s/a the (anti)symmetric
            # halves of d; the 1/2 of the half decomposition is folded in.
            # P and Q are stacked so one batched matmul covers both halves.
            self._ops = np.stack([0.5 * (upper_left + upper_right_flipped),
                                  0.5 * (upper_left - upper_right_flipped)])
            self._combined = None
        else:
            self._combined = combined
        self._workspace = workspace

    def apply(self, density: np.ndarray, out: np.ndarray) -> None:
        h = self._half
        if not h:
            np.matmul(self._combined, density, out=out)
        else:
            halves, products = self._workspace._half_buffers(h)
            top = density[:h]
            bottom_flipped = density[h:][::-1]
            np.add(top, bottom_flipped, out=halves[0])
            np.subtract(top, bottom_flipped, out=halves[1])
            np.matmul(self._ops, halves, out=products)
            # Recombine the halves with the non-negativity clamp folded into
            # the same passes (elementwise max commutes with the flip).
            np.add(products[0], products[1], out=halves[0])
            np.maximum(halves[0], 0.0, out=out[:h])
            np.subtract(products[0], products[1], out=halves[1])
            np.maximum(halves[1][::-1], 0.0, out=out[h:])
            return
        np.maximum(out, 0.0, out=out)


class _FactorizedStep:
    """CN substep via explicit half step plus a cached tridiagonal solve."""

    def __init__(self, nq: int, nv: int, r: float, backend: NumericsBackend,
                 workspace: "CrankNicolsonDiffusion"):
        lower = np.full(nq, -r)
        upper = np.full(nq, -r)
        diag = np.full(nq, 1.0 + 2.0 * r)
        # Neumann boundary: ghost cell equals the boundary cell, so the
        # boundary rows only couple to one neighbour.
        diag[0] = 1.0 + r
        diag[-1] = 1.0 + r
        self._r = r
        self._solver = backend.factorize_tridiagonal(lower, diag, upper)
        self._workspace = workspace

    def apply(self, density: np.ndarray, out: np.ndarray) -> None:
        r = self._r
        rhs = self._workspace._rhs_buffer(density.shape)
        # Explicit half step (I + r L) applied column-wise, vectorised over ν.
        rhs[1:-1, :] = (density[1:-1, :]
                        + r * (density[2:, :] - 2.0 * density[1:-1, :]
                               + density[:-2, :]))
        rhs[0, :] = density[0, :] + r * (density[1, :] - density[0, :])
        rhs[-1, :] = density[-1, :] + r * (density[-2, :] - density[-1, :])
        self._solver.solve(rhs, out=out)
        np.maximum(out, 0.0, out=out)


class CrankNicolsonDiffusion:
    """Reusable Crank-Nicolson diffusion operator for one grid and σ.

    Parameters
    ----------
    grid:
        The phase grid; each ν-column diffuses independently along q.
    sigma:
        Diffusion coefficient σ of Equation 14 (σ = 0 makes :meth:`step` a
        no-op copy).
    backend:
        Kernel backend used for the factorized (large-grid) path; defaults
        to :func:`repro.numerics.backend.get_backend` resolution.
    dense_limit:
        Largest ``nq`` for which the dense combined operator is used
        (defaults to :data:`DENSE_NQ_LIMIT`; pass 0 to force the factorized
        path, e.g. in backend-parity tests).
    scratch:
        Optional flat float scratch arena of at least ``2·nq·nv`` entries
        (see :func:`repro.core.advection.shared_scratch_size`); the solver
        shares one arena between this operator and the advection kernels so
        the hot loop's working set stays cache-resident.
    """

    def __init__(self, grid: PhaseGrid2D, sigma: float,
                 backend: Optional[NumericsBackend] = None,
                 dense_limit: Optional[int] = None,
                 scratch: Optional[np.ndarray] = None):
        self.grid = grid
        self.sigma = float(sigma)
        self.backend = backend if backend is not None else get_backend()
        self.dense_limit = DENSE_NQ_LIMIT if dense_limit is None else dense_limit
        self._diffusivity = 0.5 * self.sigma * self.sigma
        # Kept as a divisor (not a cached reciprocal) so the diffusion number
        # r rounds exactly as in the original per-call implementation.
        self._two_dq2 = 2.0 * grid.dq * grid.dq
        self._steps: OrderedDict = OrderedDict()
        nq, nv = grid.shape
        if scratch is None:
            scratch = np.empty(2 * nq * nv)
        self._arena = scratch
        self._scratch: Optional[np.ndarray] = None
        self._half_views = None
        self._last_r: Optional[float] = None
        self._last_step = None

    def _half_buffers(self, h: int):
        """(halves, products) views over the shared arena for the dense step."""
        if self._half_views is None or self._half_views[0].shape[1] != h:
            nv = self.grid.shape[1]
            count = 2 * h * nv
            self._half_views = (self._arena[:count].reshape(2, h, nv),
                                self._arena[count:2 * count].reshape(2, h, nv))
        return self._half_views

    def _rhs_buffer(self, shape) -> np.ndarray:
        """Grid-shaped right-hand-side view for the factorized step."""
        count = int(np.prod(shape))
        return self._arena[:count].reshape(shape)

    def _step_for(self, r: float):
        # Fast path: the CFL schedule requests the same diffusion number for
        # long runs of consecutive substeps.  Only steps that can no longer
        # be upgraded are cached here, so the hit counting of the slow path
        # (which drives the dense-operator upgrade) stays accurate.
        if r == self._last_r:
            return self._last_step
        step = self._step_for_slow(r)
        if not isinstance(step, _FactorizedStep):
            self._last_r = r
            self._last_step = step
        return step

    def _step_for_slow(self, r: float):
        nq, nv = self.grid.shape
        entry = self._steps.get(r)
        if entry is None:
            entry = [_FactorizedStep(nq, nv, r, self.backend, self), 1]
            self._steps[r] = entry
            if len(self._steps) > _MAX_CACHED_OPERATORS:
                self._steps.popitem(last=False)
            return entry[0]
        self._steps.move_to_end(r)
        entry[1] += 1
        if (entry[1] >= _DENSE_UPGRADE_HITS and nq <= self.dense_limit
                and isinstance(entry[0], _FactorizedStep)):
            entry[0] = _DenseStep(nq, r, self)
        return entry[0]

    def step(self, density: np.ndarray, dt: float,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply one Crank-Nicolson step of size *dt* to *density*.

        Writes into *out* when given (must not alias *density*), otherwise
        returns a new array.  For σ = 0 the input is returned unchanged
        (or copied into *out*).
        """
        if out is None:
            out = np.empty_like(density)
        if self.sigma == 0.0:
            if out is not density:
                np.copyto(out, density)
            return out

        # Diffusion number of the requested step.  Crank-Nicolson is
        # unconditionally stable but oscillatory for very large diffusion
        # numbers; sub-cycle so each substep stays in the smooth regime
        # (keeps the density non-negative and the mass exactly conserved).
        r = self._diffusivity * dt / self._two_dq2
        if r <= 2.0:
            self._step_for(r).apply(density, out)
            return out

        n_sub = int(np.ceil(r / 2.0))
        sub_dt = dt / n_sub
        sub_r = self._diffusivity * sub_dt / self._two_dq2
        step = self._step_for(sub_r)
        if self._scratch is None:
            self._scratch = np.empty_like(out)
        # Alternate between *out* and the scratch buffer so the final
        # substep always lands in *out*.
        buffers = (out, self._scratch) if n_sub % 2 else (self._scratch, out)
        source = density
        for index in range(n_sub):
            target = buffers[index % 2]
            step.apply(source, target)
            source = target
        return out


#: Small cache behind the stateless convenience function below, so repeated
#: calls with the same grid and σ (the common pattern in tests and simple
#: scripts) still hit the per-``r`` operator cache.
_OPERATOR_CACHE: OrderedDict = OrderedDict()
_OPERATOR_CACHE_SIZE = 8


def _cached_operator(grid: PhaseGrid2D, sigma: float) -> CrankNicolsonDiffusion:
    key = (grid, sigma)
    operator = _OPERATOR_CACHE.get(key)
    if operator is None:
        operator = CrankNicolsonDiffusion(grid, sigma)
        _OPERATOR_CACHE[key] = operator
        if len(_OPERATOR_CACHE) > _OPERATOR_CACHE_SIZE:
            _OPERATOR_CACHE.popitem(last=False)
    else:
        _OPERATOR_CACHE.move_to_end(key)
    return operator


def crank_nicolson_diffuse_q(density: np.ndarray, grid: PhaseGrid2D,
                             sigma: float, dt: float) -> np.ndarray:
    """Apply one Crank-Nicolson step of ``f_t = (σ²/2) f_qq`` to *density*.

    Stateless convenience wrapper around :class:`CrankNicolsonDiffusion`
    (which long-running callers should hold directly to reuse its scratch
    buffers).

    Parameters
    ----------
    density:
        Joint density, shape ``(nq, nv)``.  Each ν-column diffuses
        independently along q.
    grid:
        The phase grid.
    sigma:
        Diffusion coefficient σ of Equation 14 (σ = 0 returns the input
        unchanged, without copying).
    dt:
        Time step.

    Returns
    -------
    numpy.ndarray
        The diffused density (a new array, non-negative), or *density*
        itself when σ = 0.
    """
    if sigma == 0.0:
        return density
    return _cached_operator(grid, float(sigma)).step(density, dt)
