"""Fokker-Planck machinery for the controlled queue (the paper's contribution).

The joint density ``f(t, q, ν)`` of queue length and queue growth rate obeys
Equation 14 of the paper,

    f_t + ν f_q + (g f)_ν = (σ²/2) f_qq,

with ``g(q, λ)`` the rate-control law and ``ν = λ − μ``.  The solver in
:mod:`repro.core.solver` discretises this on the phase grid of
:class:`repro.numerics.PhaseGrid2D` with operator splitting: a conservative
upwind advection step in ``q`` (velocity ``ν``), a conservative upwind
advection step in ``ν`` (velocity ``g``), and a Crank-Nicolson diffusion
step in ``q``.  Reflecting boundaries keep the probability mass at one.

The reduced (σ = 0) hyperbolic system can alternatively be solved along its
characteristics, reproducing the paper's Section 5 analysis directly
(:mod:`repro.core.reduced`).
"""

from .advection import (
    UpwindAdvection,
    cfl_time_step,
    cfl_time_step_from_speeds,
    upwind_advect_q,
    upwind_advect_v,
)
from .boundary import BoundaryConditions
from .diffusion import CrankNicolsonDiffusion, crank_nicolson_diffuse_q
from .initial import (
    delta_initial_density,
    gaussian_initial_density,
    uniform_initial_density,
)
from .generator import DiscreteGenerator, SparseOperator, assemble_generator
from .moments import DensityMoments, compute_moments, marginal_q, marginal_v, tail_probability
from .reduced import ReducedSystemSolver
from .solver import FokkerPlanckSolver, FokkerPlanckResult, DensitySnapshot
from .steady_state import SteadyStateEstimate, estimate_steady_state, relaxation_time

__all__ = [
    "UpwindAdvection",
    "upwind_advect_q",
    "upwind_advect_v",
    "cfl_time_step",
    "cfl_time_step_from_speeds",
    "BoundaryConditions",
    "CrankNicolsonDiffusion",
    "crank_nicolson_diffuse_q",
    "delta_initial_density",
    "gaussian_initial_density",
    "uniform_initial_density",
    "DensityMoments",
    "compute_moments",
    "marginal_q",
    "marginal_v",
    "tail_probability",
    "ReducedSystemSolver",
    "FokkerPlanckSolver",
    "FokkerPlanckResult",
    "DensitySnapshot",
    "SteadyStateEstimate",
    "estimate_steady_state",
    "relaxation_time",
    "SparseOperator",
    "DiscreteGenerator",
    "assemble_generator",
]
