"""Initial conditions for the Fokker-Planck solver.

The paper's derivation conditions on a known starting point
``(Q(0), ν(0)) = (q̂₀, ν̂₀)``, i.e. a delta-function initial density.  On a
finite grid a delta is represented either exactly (all mass in one cell,
:func:`delta_initial_density`) or as a narrow Gaussian
(:func:`gaussian_initial_density`), which is smoother and converges to the
same solution as the grid is refined.  A uniform density over a rectangle is
also provided for ensemble-of-initial-conditions studies.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..numerics.grids import PhaseGrid2D

__all__ = [
    "delta_initial_density",
    "gaussian_initial_density",
    "uniform_initial_density",
]


def delta_initial_density(grid: PhaseGrid2D, q0: float, v0: float) -> np.ndarray:
    """All probability mass in the cell containing ``(q0, v0)``.

    The returned array integrates to one over the grid.
    """
    density = np.zeros(grid.shape)
    qi = grid.q_grid.locate(q0)
    vi = grid.v_grid.locate(v0)
    density[qi, vi] = 1.0 / grid.cell_area
    return density


def gaussian_initial_density(grid: PhaseGrid2D, q0: float, v0: float,
                             q_std: float = 1.0, v_std: float = 0.05
                             ) -> np.ndarray:
    """A normalised Gaussian blob centred at ``(q0, v0)``.

    Standard deviations should be a few grid cells wide; values below half a
    cell are rejected because they would alias back to a delta and defeat
    the purpose of the smooth initial condition.
    """
    if q_std < 0.5 * grid.dq or v_std < 0.5 * grid.dv:
        raise ConfigurationError(
            "Gaussian initial condition narrower than half a grid cell; "
            "use delta_initial_density instead")
    return grid.gaussian_density(q0, v0, q_std, v_std)


def uniform_initial_density(grid: PhaseGrid2D, q_low: float, q_high: float,
                            v_low: float, v_high: float) -> np.ndarray:
    """Uniform density over the rectangle ``[q_low, q_high] × [v_low, v_high]``.

    Cells whose centre falls inside the rectangle receive equal mass; the
    result is normalised to one.
    """
    if q_high <= q_low or v_high <= v_low:
        raise ConfigurationError("uniform initial rectangle must have positive area")
    q, v = grid.meshgrid()
    inside = ((q >= q_low) & (q <= q_high) & (v >= v_low) & (v <= v_high))
    if not np.any(inside):
        raise ConfigurationError(
            "uniform initial rectangle does not contain any grid cell centre")
    density = inside.astype(float)
    return grid.normalize(density)
