"""Moments, marginals and tail probabilities of the joint density.

These are the quantities the paper's Fokker-Planck model provides that the
fluid approximation cannot: not only the mean queue length trajectory but
also its variance and tail probabilities such as ``P(Q > B)`` (buffer
overflow likelihood for a buffer of size ``B``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import AnalysisError
from ..numerics.grids import PhaseGrid2D

__all__ = [
    "DensityMoments",
    "compute_moments",
    "marginal_q",
    "marginal_v",
    "tail_probability",
]


@dataclass(frozen=True)
class DensityMoments:
    """First and second moments of the joint density at one instant.

    Attributes
    ----------
    mass:
        Total probability mass on the grid (should stay close to one).
    mean_q, var_q:
        Mean and variance of the queue length.
    mean_v, var_v:
        Mean and variance of the queue growth rate ``ν = λ − μ``.
    covariance:
        Covariance between queue length and growth rate.
    """

    mass: float
    mean_q: float
    var_q: float
    mean_v: float
    var_v: float
    covariance: float

    @property
    def std_q(self) -> float:
        """Standard deviation of the queue length."""
        return float(np.sqrt(max(self.var_q, 0.0)))

    @property
    def std_v(self) -> float:
        """Standard deviation of the growth rate."""
        return float(np.sqrt(max(self.var_v, 0.0)))

    def mean_rate(self, mu: float) -> float:
        """Mean arrival rate ``E[λ] = E[ν] + μ``."""
        return self.mean_v + mu


def compute_moments(density: np.ndarray, grid: PhaseGrid2D) -> DensityMoments:
    """Compute :class:`DensityMoments` of *density* on *grid*.

    Raises
    ------
    AnalysisError
        If the density has (numerically) no mass.
    """
    mass = grid.total_mass(density)
    if mass <= 0.0:
        raise AnalysisError("density has no probability mass")

    q, v = grid.meshgrid()
    weight = density * grid.cell_area / mass
    mean_q = float(np.sum(q * weight))
    mean_v = float(np.sum(v * weight))
    var_q = float(np.sum((q - mean_q) ** 2 * weight))
    var_v = float(np.sum((v - mean_v) ** 2 * weight))
    covariance = float(np.sum((q - mean_q) * (v - mean_v) * weight))
    return DensityMoments(mass=mass, mean_q=mean_q, var_q=var_q,
                          mean_v=mean_v, var_v=var_v, covariance=covariance)


def marginal_q(density: np.ndarray, grid: PhaseGrid2D) -> np.ndarray:
    """Marginal density of the queue length, shape ``(nq,)``.

    Integrates the joint density over the growth-rate axis; the result
    integrates (cell-sum rule) to the total mass of the joint density.
    """
    return np.sum(density, axis=1) * grid.dv


def marginal_v(density: np.ndarray, grid: PhaseGrid2D) -> np.ndarray:
    """Marginal density of the growth rate, shape ``(nv,)``."""
    return np.sum(density, axis=0) * grid.dq


def tail_probability(density: np.ndarray, grid: PhaseGrid2D,
                     threshold: float) -> float:
    """Return ``P(Q > threshold)`` under the joint density.

    Cells whose centre exceeds the threshold contribute their full mass; the
    cell straddling the threshold contributes the fraction of its width
    above it.  The result is normalised by the total mass so it is a proper
    probability even if some mass has been absorbed at the boundary.
    """
    mass = grid.total_mass(density)
    if mass <= 0.0:
        raise AnalysisError("density has no probability mass")
    q_centers = grid.q_centers
    q_marginal = marginal_q(density, grid)

    above = 0.0
    half = 0.5 * grid.dq
    for center, value in zip(q_centers, q_marginal, strict=True):
        cell_low = center - half
        cell_high = center + half
        if cell_low >= threshold:
            above += value * grid.dq
        elif cell_high > threshold:
            above += value * (cell_high - threshold)
    return float(above / mass)
