"""Parameter dataclasses shared across the library.

The central object is :class:`SystemParameters`, which captures the
physical description of the controlled queue studied in the paper:

* ``mu`` -- the mean service rate of the bottleneck (packets / unit time),
* ``q_target`` -- the target queue length ``q̂`` at which the control law
  switches from *increase* to *decrease*,
* ``c0`` -- the linear increase rate (``dλ/dt = C0`` while ``Q ≤ q̂``),
* ``c1`` -- the exponential decrease constant (``dλ/dt = −C1 λ`` while
  ``Q > q̂``),
* ``sigma`` -- the diffusion coefficient ``σ`` of Equation 14, modelling the
  variability of the queue growth rate (``σ = 0`` recovers the reduced
  hyperbolic system analysed in Section 5 of the paper).

All dataclasses validate their fields on construction and raise
:class:`repro.exceptions.ConfigurationError` on inconsistent input, so that
errors surface where the mistake was made rather than deep inside a solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Type

from .exceptions import ConfigurationError

__all__ = [
    "SystemParameters",
    "GridParameters",
    "TimeParameters",
    "SourceParameters",
    "DelayParameters",
    "ParameterDictMixin",
    "parameters_from_dict",
]


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


#: Registry mapping the ``__parameters__`` type tag written by
#: :meth:`ParameterDictMixin.to_dict` back to the dataclass, so a dictionary
#: can be revived without knowing its concrete type in advance.
_PARAMETER_REGISTRY: Dict[str, Type["ParameterDictMixin"]] = {}

#: Key under which the concrete type name is stored in serialised form.
_TYPE_TAG = "__parameters__"


class ParameterDictMixin:
    """Canonical ``to_dict()`` / ``from_dict()`` round-trip for parameters.

    Every parameter dataclass in this module mixes this in so that any
    configuration object can be turned into a plain, JSON-serialisable
    dictionary and back.  The dictionary form is the basis of the
    content-addressed job hashes used by :mod:`repro.runner` and is also
    convenient for logging and result metadata.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        _PARAMETER_REGISTRY[cls.__name__] = cls

    def to_dict(self) -> dict:
        """Return a plain dictionary with a ``__parameters__`` type tag."""
        data = {_TYPE_TAG: type(self).__name__}
        for spec in fields(self):
            data[spec.name] = getattr(self, spec.name)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ParameterDictMixin":
        """Rebuild an instance from :meth:`to_dict` output.

        The type tag (when present) must match *cls*, unknown keys are
        rejected, and the rebuilt instance passes through the usual
        ``__post_init__`` validation.
        """
        payload = dict(data)
        tag = payload.pop(_TYPE_TAG, None)
        _require(tag is None or tag == cls.__name__,
                 f"cannot revive a {tag!r} dictionary as {cls.__name__}")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        _require(not unknown,
                 f"unknown {cls.__name__} fields in dictionary: {unknown}")
        return cls(**payload)


def parameters_from_dict(data: dict) -> ParameterDictMixin:
    """Revive any parameter dataclass from its :meth:`to_dict` form.

    Dispatches on the ``__parameters__`` tag, so callers need not know which
    concrete parameter class a stored dictionary describes.
    """
    _require(isinstance(data, dict) and _TYPE_TAG in data,
             "parameters_from_dict needs a dictionary with a "
             f"{_TYPE_TAG!r} type tag")
    tag = data[_TYPE_TAG]
    _require(tag in _PARAMETER_REGISTRY,
             f"unknown parameter type tag {tag!r}")
    return _PARAMETER_REGISTRY[tag].from_dict(data)


@dataclass(frozen=True)
class SystemParameters(ParameterDictMixin):
    """Physical parameters of the controlled bottleneck queue.

    Parameters
    ----------
    mu:
        Mean service rate of the bottleneck node (must be positive).
    q_target:
        Target queue length ``q̂`` of the adaptive algorithm (non-negative).
    c0:
        Linear increase rate ``C0 > 0`` used while the queue is below target.
    c1:
        Exponential decrease constant ``C1 > 0`` used above target.
    sigma:
        Diffusion coefficient ``σ ≥ 0`` of the Fokker-Planck equation.  A
        value of zero selects the reduced (purely hyperbolic) system.
    backend:
        Numerical kernel backend for the PDE solvers: ``""`` (the default)
        defers to the ``REPRO_BACKEND`` environment variable / the
        ``"numpy"`` reference kernels, ``"auto"`` picks the fastest
        available backend, and any registered backend name (``"numpy"``,
        ``"scipy"``) pins one explicitly.  See
        :mod:`repro.numerics.backend`.
    health:
        Run-time numerical health policy for the solvers: ``""`` (the
        default) defers to the ``REPRO_HEALTH`` environment variable /
        the ``"observe"`` default, ``"strict"`` aborts on any invariant
        violation with a typed error, ``"repair"`` applies logged
        repairs, ``"observe"`` records reports without changing the
        numerics, and ``"off"`` disables monitoring entirely
        (bit-identical to the unmonitored code paths).  See
        :mod:`repro.health`.
    stepper:
        Time-marching scheme of the Fokker-Planck solver: ``""``/
        ``"axis"`` (the default) selects the per-axis splitting that is
        bit-identical to the historical solver, ``"adi"`` the
        Peaceman-Rachford 2-D operator-split stepper whose implicit
        half-steps run on the sparse-operator backend kernels (larger
        stable steps, scales to grids the dense path cannot).  See
        :mod:`repro.core.stepper`.
    """

    mu: float = 1.0
    q_target: float = 10.0
    c0: float = 0.05
    c1: float = 0.2
    sigma: float = 0.0
    backend: str = ""
    health: str = ""
    stepper: str = ""

    def __post_init__(self) -> None:
        _require(self.mu > 0.0, f"service rate mu must be positive, got {self.mu}")
        _require(self.q_target >= 0.0,
                 f"target queue length must be non-negative, got {self.q_target}")
        _require(self.c0 > 0.0, f"increase rate c0 must be positive, got {self.c0}")
        _require(self.c1 > 0.0, f"decrease constant c1 must be positive, got {self.c1}")
        _require(self.sigma >= 0.0, f"sigma must be non-negative, got {self.sigma}")
        from .numerics.backend import is_known_backend
        _require(is_known_backend(self.backend),
                 f"unknown numerics backend {self.backend!r}")
        from .health.policy import is_known_health
        _require(is_known_health(self.health),
                 f"unknown health mode {self.health!r}")
        from .core.stepper import is_known_stepper
        _require(is_known_stepper(self.stepper),
                 f"unknown FP stepper {self.stepper!r}")

    def with_backend(self, backend: str) -> "SystemParameters":
        """Return a copy of these parameters pinned to a kernel *backend*."""
        return replace(self, backend=backend)

    def with_stepper(self, stepper: str) -> "SystemParameters":
        """Return a copy of these parameters pinned to an FP *stepper*."""
        return replace(self, stepper=stepper)

    def with_health(self, health: str) -> "SystemParameters":
        """Return a copy of these parameters pinned to a *health* policy."""
        return replace(self, health=health)

    def with_sigma(self, sigma: float) -> "SystemParameters":
        """Return a copy of these parameters with a different ``sigma``."""
        return replace(self, sigma=sigma)

    def with_rates(self, c0: Optional[float] = None,
                   c1: Optional[float] = None) -> "SystemParameters":
        """Return a copy with updated increase/decrease constants."""
        return replace(
            self,
            c0=self.c0 if c0 is None else c0,
            c1=self.c1 if c1 is None else c1,
        )

    @property
    def equilibrium_rate(self) -> float:
        """The arrival rate at the limit point of Theorem 1 (``λ* = μ``)."""
        return self.mu

    @property
    def equilibrium_queue(self) -> float:
        """The queue length at the limit point of Theorem 1 (``Q* = q̂``)."""
        return self.q_target


@dataclass(frozen=True)
class GridParameters(ParameterDictMixin):
    """Discretisation of the ``(q, ν)`` phase plane for the PDE solver.

    The queue axis spans ``[0, q_max]`` with ``nq`` cells and the
    growth-rate axis spans ``[v_min, v_max]`` with ``nv`` cells.
    """

    q_max: float = 40.0
    nq: int = 120
    v_min: float = -1.5
    v_max: float = 1.5
    nv: int = 90

    def __post_init__(self) -> None:
        _require(self.q_max > 0.0, "q_max must be positive")
        _require(self.nq >= 4, "nq must be at least 4")
        _require(self.nv >= 4, "nv must be at least 4")
        _require(self.v_max > self.v_min,
                 "v_max must be strictly greater than v_min")

    @property
    def dq(self) -> float:
        """Cell width along the queue axis."""
        return self.q_max / self.nq

    @property
    def dv(self) -> float:
        """Cell width along the growth-rate axis."""
        return (self.v_max - self.v_min) / self.nv


@dataclass(frozen=True)
class TimeParameters(ParameterDictMixin):
    """Time-integration horizon and step control for PDE / ODE solvers."""

    t_end: float = 200.0
    dt: float = 0.05
    cfl: float = 0.8
    snapshot_every: int = 10

    def __post_init__(self) -> None:
        _require(self.t_end > 0.0, "t_end must be positive")
        _require(self.dt > 0.0, "dt must be positive")
        _require(0.0 < self.cfl <= 1.0, "cfl must lie in (0, 1]")
        _require(self.snapshot_every >= 1, "snapshot_every must be >= 1")

    @property
    def n_steps(self) -> int:
        """Number of full time steps of size ``dt`` needed to reach ``t_end``."""
        return max(1, int(round(self.t_end / self.dt)))


@dataclass(frozen=True)
class SourceParameters(ParameterDictMixin):
    """Per-source control parameters for multi-source scenarios.

    Each source ``i`` runs its own copy of the adaptive algorithm with its
    own increase rate ``c0``, decrease constant ``c1`` and feedback delay
    ``delay`` (in the same time units as the service rate).
    """

    c0: float = 0.05
    c1: float = 0.2
    delay: float = 0.0
    initial_rate: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        _require(self.c0 > 0.0, "c0 must be positive")
        _require(self.c1 > 0.0, "c1 must be positive")
        _require(self.delay >= 0.0, "delay must be non-negative")
        _require(self.initial_rate >= 0.0, "initial_rate must be non-negative")


@dataclass(frozen=True)
class DelayParameters(ParameterDictMixin):
    """Feedback-delay configuration for Section 7 experiments."""

    delay: float = 2.0
    history_dt: float = 0.01

    def __post_init__(self) -> None:
        _require(self.delay >= 0.0, "delay must be non-negative")
        _require(self.history_dt > 0.0, "history_dt must be positive")


@dataclass
class SweepResult:
    """Container pairing a swept parameter value with an arbitrary result."""

    parameter: float
    result: object = field(default=None)
