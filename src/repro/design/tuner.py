"""Coarse-to-fine controller gain design.

The tuner sweeps a grid of ``(c0, c1, q_target, mu)`` gain choices in two
stages:

1. **Coarse** — every point is scored from a batched characteristic
   trajectory (:func:`repro.design.objectives.score_gain_grid`), processed
   in chunks so a ≥10⁴-point grid streams through the 2-state RK4 engine
   without large resident blocks.
2. **Refine** — the best ``top_k`` points are re-examined with direct
   stationary Fokker-Planck solves (:func:`repro.design.stationary
   .solve_stationary`) when ``σ > 0``: the stationary mean queue replaces
   the trajectory-window mean in the queue-error axis and the combined
   score is recomputed, so the final ranking reflects the full stochastic
   operating point rather than the noiseless characteristics.

The result carries the ranked gains and the Pareto front of the
oscillation-amplitude / relaxation-time trade-off — the DEC-TR-506 style
design view (responsiveness versus smoothness) — and is exposed through
``repro design sweep`` and the ``design-gain-grid`` runner matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import GridParameters, ParameterDictMixin, SystemParameters
from ..dataplane import StreamingMoments, validate_retention
from ..exceptions import ConfigurationError, ConvergenceError
from ..health import HealthMonitor
from ..health.report import HealthLog
from .objectives import (GainGridScores, ObjectiveWeights, OperatingPointScore,
                         score_gain_grid, combine_score)
from .stationary import solve_stationary

__all__ = [
    "RankedGain",
    "GainSweepResult",
    "default_axes",
    "design_gains",
    "pareto_front_indices",
]


@dataclass(frozen=True)
class RankedGain(ParameterDictMixin):
    """One ranked gain choice from a design sweep (JSON/cache friendly).

    ``stationary_mean_queue`` / ``stationary_std_queue`` are NaN unless the
    point went through the stationary refinement stage.  ``healthy`` is
    ``False`` when the refinement stage could not converge a stationary
    solve for the point even on the widened retry grid — the entry then
    carries the coarse-stage score, flagged as numerically unhealthy
    instead of silently blending in.
    """

    rank: int
    c0: float
    c1: float
    q_target: float
    mu: float
    score: float
    oscillation_amplitude: float
    oscillation_period: float
    relaxation_time: float
    queue_error: float
    unfairness: float
    stationary_mean_queue: float = float("nan")
    stationary_std_queue: float = float("nan")
    refined: bool = False
    healthy: bool = True


@dataclass
class GainSweepResult:
    """Outcome of one coarse-to-fine gain sweep.

    ``score_stats`` summarises the finite combined scores of the whole
    grid (count/mean/std/min/max from a streaming fold -- identical under
    every retention policy); ``retention`` records the policy the sweep
    ran under (``"moments"``/``"none"`` never materialise the full score
    columns, so their working set is O(top_k + front) instead of
    O(n_points)).
    """

    ranked: List[RankedGain]
    pareto: List[RankedGain]
    n_points: int
    n_refined: int
    t_end: float
    dt: float
    weights: ObjectiveWeights
    chunks: int = field(default=0)
    retention: str = "full"
    score_stats: Optional[dict] = None
    #: Health log of the refinement stage (``None`` when the monitor is off).
    health: Optional[HealthLog] = None

    @property
    def best(self) -> RankedGain:
        """The top-ranked gain choice."""
        return self.ranked[0]


def default_axes(params: SystemParameters, n_c0: int = 10, n_c1: int = 10,
                 n_q_target: int = 10, n_mu: int = 10) -> dict:
    """Default sweep axes bracketing the configured operating point.

    Gains span a factor of four either side of the configured values
    (geometric spacing, matching their multiplicative role); target queue
    and service rate span moderate linear ranges.  The default sizes give
    the 10⁴-point grid the acceptance benchmark runs.
    """
    return {
        "c0_values": np.geomspace(params.c0 / 4.0, params.c0 * 4.0, n_c0),
        "c1_values": np.geomspace(params.c1 / 4.0, params.c1 * 4.0, n_c1),
        "q_target_values": np.linspace(max(params.q_target / 2.0, 1.0),
                                       params.q_target * 1.5, n_q_target),
        "mu_values": np.linspace(0.6 * params.mu, 1.4 * params.mu, n_mu),
    }


def pareto_front_indices(amplitude: np.ndarray, relaxation: np.ndarray
                         ) -> np.ndarray:
    """Indices of the non-dominated points minimising both axes.

    A point is on the front when no other point has both a smaller (or
    equal, with one strictly smaller) amplitude and relaxation time.
    Returned in increasing-amplitude order.
    """
    amplitude = np.asarray(amplitude, dtype=float)
    relaxation = np.asarray(relaxation, dtype=float)
    order = np.lexsort((relaxation, amplitude))
    front = []
    best_relaxation = np.inf
    for index in order:
        if relaxation[index] < best_relaxation:
            front.append(index)
            best_relaxation = relaxation[index]
    return np.asarray(front, dtype=int)


def _ranked_from_point(point: OperatingPointScore, rank: int) -> RankedGain:
    return RankedGain(rank=rank, c0=point.c0, c1=point.c1,
                      q_target=point.q_target, mu=point.mu,
                      score=point.score,
                      oscillation_amplitude=point.oscillation_amplitude,
                      oscillation_period=point.oscillation_period,
                      relaxation_time=point.relaxation_time,
                      queue_error=point.queue_error,
                      unfairness=point.unfairness)


def _concatenate_column(chunks: Sequence[np.ndarray],
                        memmap_dir: Optional[str]) -> np.ndarray:
    if memmap_dir is None:
        return np.concatenate(chunks)
    import os
    import tempfile
    total = sum(chunk.size for chunk in chunks)
    fd, path = tempfile.mkstemp(suffix=".col", dir=memmap_dir)
    try:
        os.ftruncate(fd, max(total, 1) * 8)
        column = np.memmap(path, dtype=np.float64, mode="r+", shape=(total,))
    finally:
        os.close(fd)
    os.unlink(path)
    offset = 0
    for chunk in chunks:
        column[offset:offset + chunk.size] = chunk
        offset += chunk.size
    return column


def _concatenate_scores(chunks: Sequence[GainGridScores],
                        memmap_dir: Optional[str] = None) -> GainGridScores:
    def cat(name: str) -> np.ndarray:
        return _concatenate_column([getattr(c, name) for c in chunks],
                                   memmap_dir)
    return GainGridScores(
        c0=cat("c0"), c1=cat("c1"), q_target=cat("q_target"), mu=cat("mu"),
        oscillation_amplitude=cat("oscillation_amplitude"),
        oscillation_period=cat("oscillation_period"),
        relaxation_time=cat("relaxation_time"),
        queue_error=cat("queue_error"), unfairness=cat("unfairness"),
        score=cat("score"))


def _score_sort_key(candidate: Tuple[int, OperatingPointScore]):
    """Sort key matching a stable argsort over scores (NaN last)."""
    index, point = candidate
    if math.isnan(point.score):
        return (1, 0.0, index)
    return (0, point.score, index)


def _refine_grid(q_target: float, spread: float = 0.0) -> GridParameters:
    """Stationary-solve grid sized to the point's target queue.

    *spread* (the coarse stage's oscillation amplitude) widens the queue
    extent: weakly damped gains carry long density tails, and a truncated
    domain leaks mass through the outflow boundary until no normalizable
    stationary state exists on it.
    """
    return GridParameters(q_max=max(3.0 * (q_target + 2.0 * spread), 15.0),
                          nq=48, v_min=-1.5, v_max=1.5, nv=36)


def _widened(grid: GridParameters) -> GridParameters:
    """Double the queue extent at the same resolution (retry grid)."""
    return GridParameters(q_max=2.0 * grid.q_max, nq=2 * grid.nq,
                          v_min=grid.v_min, v_max=grid.v_max, nv=grid.nv)


def design_gains(params: SystemParameters,
                 c0_values=None, c1_values=None, q_target_values=None,
                 mu_values=None,
                 *,
                 weights: Optional[ObjectiveWeights] = None,
                 top_k: int = 16,
                 chunk_size: int = 1024,
                 t_end: float = 150.0,
                 dt: float = 0.1,
                 refine: Optional[bool] = None,
                 refine_grid: Optional[GridParameters] = None,
                 refine_dt: Optional[float] = None,
                 backend: Optional[str] = None,
                 retention: str = "full",
                 memmap_dir: Optional[str] = None,
                 health: Optional[str] = None) -> GainSweepResult:
    """Run a coarse-to-fine gain-design sweep.

    Parameters
    ----------
    params:
        Base system parameters (``sigma`` drives the refinement stage; the
        configured gains are the fairness reference deployment).
    c0_values, c1_values, q_target_values, mu_values:
        Axis values; the sweep covers their Cartesian product (row-major).
        Missing axes default to :func:`default_axes`.
    weights:
        Objective weights (equal by default).
    top_k:
        Number of leading points carried into the refinement stage.
    chunk_size:
        Points per batched-trajectory call of the coarse stage.
    t_end, dt:
        Coarse-stage trajectory horizon and step.
    refine:
        Force the refinement stage on/off; the default refines exactly when
        ``params.sigma > 0`` (with ``σ = 0`` the stationary density is the
        degenerate point mass the characteristics already resolve).
    refine_grid, refine_dt, backend:
        Stationary-solve discretisation overrides for the refinement stage.
    retention:
        ``"full"`` keeps the whole grid's score columns (today's
        behaviour; O(n_points) memory).  ``"moments"`` streams each chunk
        into a running top-k, a running Pareto front (the union of chunk
        fronts, compacted each chunk, provably equals the full front) and
        streaming score moments -- the working set no longer grows with
        the grid.  ``"none"`` additionally skips the Pareto front.  The
        ranked/pareto outputs are identical between ``"full"`` and
        ``"moments"``.
    memmap_dir:
        Under ``retention="full"``, back the concatenated score columns
        with ``numpy.memmap`` files in this directory.
    health:
        Numerical health policy for the refinement stage (falls back to
        ``params.health``, then the environment / the ``observe``
        default).  A gain point whose stationary solve fails even on the
        widened retry grid is flagged ``healthy=False`` and scored from
        the coarse entry instead of returning garbage; under ``strict``
        that double failure aborts the sweep with a typed
        :class:`~repro.exceptions.ResidualHealthError`, and under
        ``repair`` the widened-grid retry is counted as a repair.

    Raises
    ------
    ConfigurationError
        On empty axes or non-positive sizes.
    """
    validate_retention(retention)
    if top_k < 1:
        raise ConfigurationError("top_k must be at least 1")
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be at least 1")
    defaults = default_axes(params)
    axes = {
        "c0": np.asarray(c0_values if c0_values is not None
                         else defaults["c0_values"], dtype=float),
        "c1": np.asarray(c1_values if c1_values is not None
                         else defaults["c1_values"], dtype=float),
        "q_target": np.asarray(q_target_values if q_target_values is not None
                               else defaults["q_target_values"], dtype=float),
        "mu": np.asarray(mu_values if mu_values is not None
                         else defaults["mu_values"], dtype=float),
    }
    for name, values in axes.items():
        if values.ndim != 1 or values.size == 0:
            raise ConfigurationError(
                f"axis {name} must be a non-empty 1-D array")

    mesh = np.meshgrid(axes["c0"], axes["c1"], axes["q_target"], axes["mu"],
                       indexing="ij")
    c0_flat, c1_flat, q_target_flat, mu_flat = (m.ravel() for m in mesh)
    n_points = c0_flat.size
    weights = weights if weights is not None else ObjectiveWeights()

    keep_columns = retention == "full"
    track_pareto = retention != "none"
    score_moments = StreamingMoments()
    chunk_scores: List[GainGridScores] = []
    top_candidates: List[Tuple[int, OperatingPointScore]] = []
    pareto_candidates: List[Tuple[int, OperatingPointScore]] = []
    n_chunks = 0
    for start in range(0, n_points, chunk_size):
        stop = min(start + chunk_size, n_points)
        chunk = score_gain_grid(
            params, c0_flat[start:stop], c1_flat[start:stop],
            q_target_flat[start:stop], mu_flat[start:stop],
            weights=weights, t_end=t_end, dt=dt)
        n_chunks += 1
        chunk.fold_score_moments(score_moments)
        if keep_columns:
            chunk_scores.append(chunk)
            continue
        # Streamed retention: merge this chunk's leaders into the running
        # top-k (the global top-k is a subset of the union of chunk
        # top-ks) and its Pareto front into the running front (a globally
        # non-dominated point is non-dominated in its own chunk, so the
        # union of chunk fronts contains the global front).  The sort key
        # mirrors a stable argsort over global indices, so ties resolve
        # exactly as in the full-retention path.
        for local in chunk.ranking()[:min(top_k, chunk.size)]:
            top_candidates.append((start + int(local),
                                   chunk.point(int(local))))
        top_candidates.sort(key=_score_sort_key)
        del top_candidates[top_k:]
        if track_pareto:
            local_front = pareto_front_indices(chunk.oscillation_amplitude,
                                               chunk.relaxation_time)
            pareto_candidates.extend(
                (start + int(local), chunk.point(int(local)))
                for local in local_front)
            amplitude = np.array([p.oscillation_amplitude
                                  for _, p in pareto_candidates])
            relaxation = np.array([p.relaxation_time
                                   for _, p in pareto_candidates])
            keep = pareto_front_indices(amplitude, relaxation)
            pareto_candidates = [pareto_candidates[int(i)] for i in keep]

    if keep_columns:
        scores = _concatenate_scores(chunk_scores, memmap_dir)
        ranking = scores.ranking()
        top = [(int(index), scores.point(int(index)))
               for index in ranking[:min(top_k, n_points)]]
        front_points = [scores.point(int(index)) for index in
                        pareto_front_indices(scores.oscillation_amplitude,
                                             scores.relaxation_time)]
    else:
        top = top_candidates
        # After the final compaction the candidates already sit in the
        # front's canonical increasing-amplitude order.
        front_points = [point for _, point in pareto_candidates]

    do_refine = params.sigma > 0.0 if refine is None else bool(refine)
    monitor = HealthMonitor.create(health or params.health or None,
                                   where="design.tuner")

    ranked: List[RankedGain] = []
    n_refined = 0
    if do_refine:
        for _, point in top:
            point_params = replace(params, c0=point.c0, c1=point.c1,
                                   q_target=point.q_target, mu=point.mu)
            grid = (refine_grid if refine_grid is not None
                    else _refine_grid(point.q_target,
                                      point.oscillation_amplitude))
            point_label = (f"gain point (c0={point.c0:.4g}, c1={point.c1:.4g}, "
                           f"q_target={point.q_target:.4g}, mu={point.mu:.4g})")
            # The inner solves run with health="off": the tuner is the
            # monitor here, and its policy must see the first failure
            # before the widened-grid retry (a strict inner monitor would
            # abort before the retry could run).
            try:
                stationary = solve_stationary(point_params, grid_params=grid,
                                              dt=refine_dt, backend=backend,
                                              health="off")
            except ConvergenceError:
                # Mass is probably leaking through a too-small domain;
                # retry once on a doubled queue extent, then fall back to
                # the coarse entry rather than abort the whole sweep.
                if monitor is not None and monitor.mode != "strict":
                    # Counted as a repair in repair mode, recorded in
                    # observe; strict only aborts on the double failure.
                    monitor.check_residual(
                        float("inf"), 1e-9, repair=lambda: None,
                        label=f"{point_label}: widened-grid retry")
                try:
                    stationary = solve_stationary(
                        point_params, grid_params=_widened(grid),
                        dt=refine_dt, backend=backend, health="off")
                except ConvergenceError:
                    if monitor is not None:
                        monitor.check_residual(
                            float("inf"), 1e-9,
                            label=(f"{point_label}: stationary refine failed "
                                   f"on the widened grid too"))
                    ranked.append(replace(_ranked_from_point(point, 0),
                                          healthy=False))
                    continue
            n_refined += 1
            queue_error = abs(stationary.moments.mean_q - point.q_target)
            q_scale = max(point.q_target, 1.0)
            score = float(combine_score(
                weights, point.oscillation_amplitude, point.relaxation_time,
                queue_error, point.unfairness, q_scale, t_end))
            ranked.append(RankedGain(
                rank=0, c0=point.c0, c1=point.c1, q_target=point.q_target,
                mu=point.mu, score=score,
                oscillation_amplitude=point.oscillation_amplitude,
                oscillation_period=point.oscillation_period,
                relaxation_time=point.relaxation_time,
                queue_error=queue_error, unfairness=point.unfairness,
                stationary_mean_queue=stationary.moments.mean_q,
                stationary_std_queue=stationary.moments.std_q,
                refined=True))
        ranked.sort(key=lambda gain: gain.score)
        ranked = [replace(gain, rank=position)
                  for position, gain in enumerate(ranked)]
    else:
        ranked = [_ranked_from_point(point, position)
                  for position, (_, point) in enumerate(top)]

    front = [_ranked_from_point(point, position)
             for position, point in enumerate(front_points)]

    score_stats = {
        "count": int(score_moments.count),
        "mean": float(score_moments.mean) if score_moments.count else None,
        "std": float(score_moments.std) if score_moments.count else None,
        "min": float(score_moments.minimum) if score_moments.count else None,
        "max": float(score_moments.maximum) if score_moments.count else None,
    }
    return GainSweepResult(ranked=ranked, pareto=front, n_points=n_points,
                           n_refined=n_refined, t_end=t_end, dt=dt,
                           weights=weights, chunks=n_chunks,
                           retention=retention, score_stats=score_stats,
                           health=monitor.log if monitor else None)
