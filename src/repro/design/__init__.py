"""Controller gain design: direct stationary solves plus objective sweeps.

The subsystem turns the reproduction into a design tool: stationary
Fokker-Planck densities are solved directly from the assembled discrete
operator (:mod:`repro.design.stationary`), operating points are scored on
oscillation / relaxation / queue-error / fairness axes
(:mod:`repro.design.objectives`), and :mod:`repro.design.tuner` sweeps
gain grids coarse-to-fine, ranking candidates and tracing the
oscillation-versus-convergence Pareto front.  Exposed on the command line
as ``repro design`` and through the ``design-gain-grid`` runner matrix.
"""

from .objectives import (GainGridScores, ObjectiveWeights,
                         OperatingPointScore, combine_score,
                         deployment_unfairness, score_gain_grid,
                         score_operating_point)
from .stationary import (DelayShiftedControl, MultiSourceStationary,
                         StationaryDensity, StationaryEstimate,
                         compare_with_marching, solve_stationary,
                         solve_stationary_multisource)
from .tuner import (GainSweepResult, RankedGain, default_axes, design_gains,
                    pareto_front_indices)

__all__ = [
    "DelayShiftedControl",
    "GainGridScores",
    "GainSweepResult",
    "MultiSourceStationary",
    "ObjectiveWeights",
    "OperatingPointScore",
    "RankedGain",
    "StationaryDensity",
    "StationaryEstimate",
    "combine_score",
    "compare_with_marching",
    "default_axes",
    "deployment_unfairness",
    "design_gains",
    "pareto_front_indices",
    "score_gain_grid",
    "score_operating_point",
    "solve_stationary",
    "solve_stationary_multisource",
]
