"""Direct stationary solves of the discrete Fokker-Planck operator.

Instead of time-marching Equation 14 to ``t_end`` and averaging the tail
(:mod:`repro.core.steady_state`), the heavy-traffic questions of the paper
can be answered directly: the stationary density is the null vector of the
assembled discrete operator from :mod:`repro.core.generator`, solved through
the :mod:`repro.numerics.backend` registry (dense row-replacement on the
numpy reference backend, ``splu`` shifted inverse iteration on scipy).

Two operator choices are exposed:

* ``method="splitting"`` (the default) solves ``S(dt) p = 0`` where
  ``S(dt)`` is the fixed-point matrix of one marching substep.  Its null
  vector *is* the density the marching solver converges to (splitting error
  included), so the solve agrees with the time-marched tail to solver
  tolerance — the property the golden tests pin at 1e-6 relative.
* ``method="generator"`` solves the continuous-time generator ``L p = 0``,
  the ``dt → 0`` limit; it differs from any finite-``dt`` march by the
  ``O(dt)`` splitting error.

Delayed feedback needs care: the scalar mean-queue closure used by
:class:`repro.delay.fokker_planck_delay.DelayedFokkerPlanckSolver` sustains
a limit cycle (the Section 7 phenomenon), so it has *no* stationary density
to solve for.  The stationary treatment instead uses the first-order
characteristic closure ``Q(t − τ) ≈ q − τ ν`` (the queue a cell's
trajectory had one delay earlier), wrapping the control law into the static
effective drift ``g(q − τν, λ)`` of :class:`DelayShiftedControl`.  That
field keeps the destabilising tilt of delay, reduces to the undelayed law
at ``τ = 0``, has a genuine stationary density, and can be marched by the
unmodified solver — which is exactly how the golden tests cross-check it.
Multi-source configurations reuse the Section 6 aggregate reduction
(:class:`repro.multisource.AggregateControl`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import (GridParameters, ParameterDictMixin, SourceParameters,
                      SystemParameters, TimeParameters)
from ..control.base import RateControl
from ..core.generator import DiscreteGenerator, assemble_generator
from ..core.initial import gaussian_initial_density
from ..core.moments import DensityMoments, compute_moments
from ..core.steady_state import SteadyStateEstimate
from ..exceptions import ConfigurationError, ConvergenceError
from ..health import HealthMonitor
from ..health.report import HealthLog
from ..numerics.backend import get_backend
from ..numerics.grids import PhaseGrid2D

__all__ = [
    "StationaryEstimate",
    "StationaryDensity",
    "MultiSourceStationary",
    "DelayShiftedControl",
    "solve_stationary",
    "solve_stationary_multisource",
    "compare_with_marching",
]


class DelayShiftedControl(RateControl):
    """First-order delay closure: the drift sees ``q − τ ν`` instead of ``q``.

    Along a characteristic, the queue one delay ``τ`` earlier is
    ``Q(t − τ) = q − τ ν + O(τ²)``; evaluating the wrapped law there gives a
    *static* effective drift field for delayed feedback, in contrast with
    the time-dependent mean-queue closure of
    :class:`repro.delay.fokker_planck_delay.DelayedFokkerPlanckSolver`
    (whose limit cycle has no stationary density).  ``τ = 0`` recovers the
    wrapped law exactly.
    """

    def __init__(self, inner: RateControl, delay: float, mu: float):
        if delay < 0.0:
            raise ConfigurationError("delay must be non-negative")
        self.inner = inner
        self.delay = float(delay)
        self.mu = float(mu)

    def drift(self, queue_length, rate):
        queue_length = np.asarray(queue_length, dtype=float)
        rate = np.asarray(rate, dtype=float)
        growth = rate - self.mu
        shifted = np.maximum(queue_length - self.delay * growth, 0.0)
        result = self.inner.drift(shifted, rate)
        if np.ndim(result) == 0 and queue_length.shape == ():
            return float(result)
        return result

    def describe(self) -> str:
        return (f"{self.inner.describe()} with first-order delay closure "
                f"tau={self.delay:g}")


@dataclass(frozen=True)
class StationaryEstimate(ParameterDictMixin):
    """Scalar summary of one stationary solve (JSON/cache friendly).

    Mixes in :class:`repro.config.ParameterDictMixin`, so design jobs cache
    these through :mod:`repro.runner` exactly like parameter dataclasses.
    """

    mean_queue: float
    std_queue: float
    mean_growth_rate: float
    std_growth_rate: float
    residual: float
    dt: float
    method: str
    backend: str
    iterations: int

    def to_steady_state(self, tail_fraction: float = 1.0
                        ) -> SteadyStateEstimate:
        """View as a :class:`SteadyStateEstimate` (e.g. to seed another solve)."""
        return SteadyStateEstimate(mean_queue=self.mean_queue,
                                   std_queue=self.std_queue,
                                   mean_growth_rate=self.mean_growth_rate,
                                   tail_fraction=tail_fraction,
                                   n_snapshots_used=0)


@dataclass
class StationaryDensity:
    """A stationary solve result: the density plus its summary moments."""

    density: np.ndarray
    grid: PhaseGrid2D
    moments: DensityMoments
    estimate: StationaryEstimate
    #: Health log of the solve (``None`` when the monitor is off).
    health: Optional[HealthLog] = None


@dataclass
class MultiSourceStationary:
    """Aggregate stationary density with the Section 6 share decomposition."""

    stationary: StationaryDensity
    shares: np.ndarray
    source_names: list
    mu: float

    def mean_source_rates(self) -> np.ndarray:
        """Per-source stationary mean rates ``shareᵢ · E[Λ]``."""
        aggregate_rate = self.stationary.moments.mean_v + self.mu
        return aggregate_rate * self.shares


def _resolve_dt(generator: DiscreteGenerator, dt: Optional[float]) -> float:
    """Default ``dt``: the library default capped at the free-running CFL step."""
    if dt is not None:
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        return float(dt)
    return min(TimeParameters().dt, generator.max_stable_dt())


def _seed_density(grid: PhaseGrid2D, seed: Optional[SteadyStateEstimate],
                  q_center: float) -> np.ndarray:
    """Gaussian guess density from a tail estimate (or around the target)."""
    if seed is not None:
        q_center = seed.mean_queue
        v_center = seed.mean_growth_rate
        q_std = max(seed.std_queue, 1.5 * grid.dq, 0.5)
    else:
        v_center = 0.0
        q_std = max(1.5 * grid.dq, 0.5)
    v_std = max(1.5 * grid.dv, 0.02)
    q_center = float(np.clip(q_center, 0.0, grid.q_grid.upper))
    v_center = float(np.clip(v_center, grid.v_grid.lower, grid.v_grid.upper))
    return gaussian_initial_density(grid, q_center, v_center,
                                    q_std=q_std, v_std=v_std)


def _solve_operator(generator: DiscreteGenerator, method: str, dt: float,
                    backend_name: str, guess: np.ndarray, tol: float,
                    max_iterations: int):
    """Run the null-vector solve for one assembled operator."""
    if method == "splitting":
        operator = generator.splitting_matrix(dt)
    elif method in ("generator", "adi"):
        # The Peaceman-Rachford recurrence fixes exactly the null vector of
        # the continuous discrete generator (no splitting error), so the
        # stationary density of an ADI march is the "generator" solve;
        # "adi" is accepted as an alias to make that correspondence
        # explicit for callers marching with stepper="adi".
        operator = generator.generator()
    else:
        raise ConfigurationError(
            f"unknown stationary method {method!r}; choose 'splitting', "
            f"'generator' or 'adi'")
    backend = get_backend(backend_name)
    vector, info = backend.stationary_null_vector(
        operator.rows, operator.cols, operator.values, operator.n,
        guess=guess.ravel(), weights=generator.mass_weights,
        tol=tol, max_iterations=max_iterations)
    return vector.reshape(generator.grid.shape), info


def solve_stationary(params: SystemParameters,
                     control: Optional[RateControl] = None,
                     grid_params: Optional[GridParameters] = None,
                     *,
                     dt: Optional[float] = None,
                     method: str = "splitting",
                     backend: Optional[str] = None,
                     seed: Optional[SteadyStateEstimate] = None,
                     delay: float = 0.0,
                     tol: float = 1e-9,
                     max_iterations: int = 50,
                     health: Optional[str] = None) -> StationaryDensity:
    """Solve for the stationary density of one operating point directly.

    Parameters
    ----------
    params, control, grid_params:
        As for :class:`repro.core.solver.FokkerPlanckSolver`; the control
        defaults to the JRJ law built from *params*.
    dt:
        Substep for ``method="splitting"`` (defaults to the library default
        step capped at the free-running CFL limit).  A marching run with
        ``TimeParameters.dt`` at or below the CFL limit takes uniform
        substeps of exactly its ``dt``, so passing that value here makes the
        solve match that run's tail to solver tolerance.
    method:
        ``"splitting"`` (matches the per-axis marching fixed point),
        ``"generator"`` (continuous-time operator), or ``"adi"`` (alias of
        ``"generator"``: the ADI stepper's fixed point carries no
        splitting error, so its marched tail is the generator null
        vector).  At large grids (nq in the thousands) use the scipy
        backend, whose sparse ``splu`` inverse iteration scales where the
        numpy dense reference solve cannot.
    backend:
        Backend registry name; defaults to ``params.backend`` resolution.
    seed:
        Optional tail estimate used to build the initial guess (and to pick
        the pivot row of the solve).
    delay:
        Feedback delay ``τ ≥ 0``.  A positive value wraps the control into
        the first-order :class:`DelayShiftedControl` closure (the scalar
        mean-queue closure of the delayed marching solver has no stationary
        density; see the module docstring).
    tol, max_iterations:
        Null-solve tolerance (relative residual) and iteration cap.
    health:
        Numerical health policy (falls back to ``params.health``, then the
        environment / the ``observe`` default).  The monitor checks the
        solve's residual health: a stalled solve is recorded (and typed
        :class:`~repro.exceptions.ResidualHealthError` replaces the plain
        ``ConvergenceError`` under ``strict``); ``"off"`` is bit-identical
        to the unmonitored solve.

    Raises
    ------
    ConvergenceError
        If the null solve stalls.
    """
    monitor = HealthMonitor.create(health or params.health or None,
                                   where="design.stationary")
    if control is None:
        from ..control.jrj import jrj_from_parameters
        control = jrj_from_parameters(params)
    if delay > 0.0:
        control = DelayShiftedControl(control, delay, params.mu)
    generator = assemble_generator(params, control=control,
                                   grid_params=grid_params)
    step = _resolve_dt(generator, dt)
    guess = _seed_density(generator.grid, seed, params.q_target)
    try:
        density, info = _solve_operator(generator, method, step,
                                        backend or params.backend, guess,
                                        tol, max_iterations)
    except ConvergenceError:
        if monitor is not None:
            # Under strict this aborts with the typed ResidualHealthError;
            # otherwise it records the failure and the original
            # ConvergenceError follows (so existing retry logic still works).
            monitor.check_residual(float("inf"), tol,
                                   label=f"stationary {method} solve")
        raise
    if monitor is not None:
        monitor.check_residual(float(info["residual"]), tol,
                               label=f"stationary {method} solve")
    moments = compute_moments(density, generator.grid)
    estimate = StationaryEstimate(
        mean_queue=moments.mean_q, std_queue=moments.std_q,
        mean_growth_rate=moments.mean_v, std_growth_rate=moments.std_v,
        residual=float(info["residual"]), dt=step, method=method,
        backend=str(info["method"]), iterations=int(info["iterations"]))
    return StationaryDensity(density=density, grid=generator.grid,
                             moments=moments, estimate=estimate,
                             health=monitor.log if monitor else None)


def solve_stationary_multisource(sources: Sequence[SourceParameters],
                                 params: SystemParameters,
                                 grid_params: Optional[GridParameters] = None,
                                 **kwargs) -> MultiSourceStationary:
    """Stationary density of an N-source system via the aggregate reduction.

    Accepts the same keyword options as :func:`solve_stationary`; the
    per-source stationary mean rates follow from the equilibrium shares.
    """
    from ..multisource.fokker_planck_ms import AggregateControl
    control = AggregateControl(sources, params.q_target)
    stationary = solve_stationary(params, control=control,
                                  grid_params=grid_params, **kwargs)
    names = [source.name or f"source-{index}"
             for index, source in enumerate(sources)]
    return MultiSourceStationary(stationary=stationary,
                                 shares=control.shares,
                                 source_names=names, mu=params.mu)


def compare_with_marching(stationary: StationaryDensity,
                          params: SystemParameters,
                          control: Optional[RateControl] = None,
                          grid_params: Optional[GridParameters] = None,
                          *,
                          t_end: float = 400.0,
                          delay: float = 0.0,
                          q0: Optional[float] = None,
                          rate0: Optional[float] = None) -> dict:
    """Cross-check a stationary solve against the time-marched tail.

    Marches the same configuration to *t_end* with the stationary solve's
    own ``dt`` (so both discretisations share the identical substep) and
    returns the relative moment differences alongside both moment sets.
    Pass the same *delay* given to :func:`solve_stationary` so the march
    uses the identical effective drift field.
    """
    from ..core.solver import FokkerPlanckSolver
    if control is None:
        from ..control.jrj import jrj_from_parameters
        control = jrj_from_parameters(params)
    if delay > 0.0:
        control = DelayShiftedControl(control, delay, params.mu)
    solver = FokkerPlanckSolver(params, control, grid_params=grid_params)
    dt = stationary.estimate.dt
    time_params = TimeParameters(t_end=t_end, dt=dt,
                                 snapshot_every=max(1, int(round(t_end / dt))))
    start_q = params.q_target if q0 is None else q0
    start_rate = params.mu if rate0 is None else rate0
    result = solver.solve_from_point(start_q, start_rate, time_params)
    marched = result.final_density / solver.grid.total_mass(
        result.final_density)
    marched_moments = compute_moments(marched, solver.grid)

    def _relative(got: float, want: float) -> float:
        return abs(got - want) / max(abs(want), 1e-30)

    moments = stationary.moments
    return {
        "relative": {
            "mean_queue": _relative(moments.mean_q, marched_moments.mean_q),
            "var_queue": _relative(moments.var_q, marched_moments.var_q),
            "mean_growth_rate": _relative(moments.mean_v,
                                          marched_moments.mean_v),
            "var_growth_rate": _relative(moments.var_v,
                                         marched_moments.var_v),
        },
        "stationary": moments,
        "marched": marched_moments,
        "t_end": t_end,
        "dt": dt,
    }
