"""Objective scoring of controller operating points.

A gain choice ``(c0, c1, q_target, mu)`` is scored on four axes, all drawn
from quantities the rest of the library already measures:

* **oscillation amplitude / period** of the queue trajectory's steady-state
  window (:func:`repro.analysis.oscillations.oscillation_metrics`) — the
  paper's Section 5 limit-cycle behaviour,
* **relaxation** — how quickly the characteristic settles near its final
  queue (:meth:`repro.characteristics.CharacteristicBatch.settling_times`),
* **queue error** — distance of the steady-window mean queue from the
  configured target, and
* **deployment unfairness** — how badly a source with these gains shares a
  bottleneck against a reference deployment, via the Section 6 equilibrium
  shares ``shareᵢ ∝ C0ᵢ/C1ᵢ`` and Jain's index
  (:mod:`repro.analysis.fairness`).

The combined score is a weighted sum of the normalised axes (lower is
better).  Scoring is vectorised over gain grids through
:func:`repro.characteristics.integrate_characteristic_batch`; the scalar
path (:func:`score_operating_point`) produces bit-identical numbers for any
single point, which the unit tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..analysis.oscillations import oscillation_metrics_batch
from ..config import ParameterDictMixin, SystemParameters
from ..control.jrj import JRJControl
from ..characteristics.trajectory import integrate_characteristic_batch
from ..dataplane import StreamingMoments
from ..exceptions import ConfigurationError

__all__ = [
    "ObjectiveWeights",
    "OperatingPointScore",
    "GainGridScores",
    "combine_score",
    "deployment_unfairness",
    "score_gain_grid",
    "score_operating_point",
]


@dataclass(frozen=True)
class ObjectiveWeights(ParameterDictMixin):
    """Relative weights of the four scoring axes (all non-negative)."""

    oscillation: float = 1.0
    relaxation: float = 1.0
    queue_error: float = 1.0
    unfairness: float = 1.0

    def __post_init__(self) -> None:
        for name in ("oscillation", "relaxation", "queue_error",
                     "unfairness"):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(
                    f"objective weight {name} must be non-negative")


@dataclass(frozen=True)
class OperatingPointScore(ParameterDictMixin):
    """Scalar scorecard of one gain choice (JSON/cache friendly)."""

    c0: float
    c1: float
    q_target: float
    mu: float
    oscillation_amplitude: float
    oscillation_period: float
    relaxation_time: float
    queue_error: float
    unfairness: float
    score: float


@dataclass
class GainGridScores:
    """Vectorised scorecards of a whole gain grid (one entry per point)."""

    c0: np.ndarray
    c1: np.ndarray
    q_target: np.ndarray
    mu: np.ndarray
    oscillation_amplitude: np.ndarray
    oscillation_period: np.ndarray
    relaxation_time: np.ndarray
    queue_error: np.ndarray
    unfairness: np.ndarray
    score: np.ndarray

    @property
    def size(self) -> int:
        """Number of scored points."""
        return int(self.score.size)

    def point(self, index: int) -> OperatingPointScore:
        """Extract one point as a scalar :class:`OperatingPointScore`."""
        return OperatingPointScore(
            c0=float(self.c0[index]), c1=float(self.c1[index]),
            q_target=float(self.q_target[index]), mu=float(self.mu[index]),
            oscillation_amplitude=float(self.oscillation_amplitude[index]),
            oscillation_period=float(self.oscillation_period[index]),
            relaxation_time=float(self.relaxation_time[index]),
            queue_error=float(self.queue_error[index]),
            unfairness=float(self.unfairness[index]),
            score=float(self.score[index]))

    def ranking(self) -> np.ndarray:
        """Point indices from best (lowest score) to worst."""
        return np.argsort(self.score, kind="stable")

    def fold_score_moments(self, moments: StreamingMoments
                           ) -> StreamingMoments:
        """Fold this chunk's finite combined scores into *moments*.

        The streamed-retention design sweep keeps these running statistics
        instead of the concatenated score columns; non-finite scores
        (degenerate gain points) are excluded so they cannot poison the
        mean/variance.
        """
        finite = self.score[np.isfinite(self.score)]
        if finite.size:
            moments.update_batch(finite, axis=0)
        return moments


def deployment_unfairness(c0, c1, reference_c0: float, reference_c1: float):
    """Unfairness of deploying gains ``(c0, c1)`` against a reference source.

    Both sources share a bottleneck at the Section 6 sliding equilibrium, so
    their shares are proportional to ``C0/C1``; the returned value is
    ``1 − Jain(shares)`` — zero when the deployment matches the reference
    ratio, approaching ``1/2`` as one source starves the other.  Vectorised
    over ``c0``/``c1``.
    """
    if reference_c0 <= 0.0 or reference_c1 <= 0.0:
        raise ConfigurationError("reference gains must be positive")
    ratio = (np.asarray(c0, dtype=float) / np.asarray(c1, dtype=float)) / (
        reference_c0 / reference_c1)
    # Jain's index of [x, 1]: (x + 1)^2 / (2 (x^2 + 1)).
    jain = (ratio + 1.0) ** 2 / (2.0 * (ratio * ratio + 1.0))
    return 1.0 - jain


def combine_score(weights: ObjectiveWeights, amplitude, relaxation,
                  queue_error, unfairness, q_scale, t_end: float):
    """Weighted sum of the normalised axes (lower is better)."""
    return (weights.oscillation * amplitude / q_scale
            + weights.relaxation * relaxation / t_end
            + weights.queue_error * queue_error / q_scale
            + weights.unfairness * unfairness)


def score_gain_grid(params: SystemParameters, c0, c1, q_target, mu,
                    *,
                    weights: Optional[ObjectiveWeights] = None,
                    reference: Optional[Tuple[float, float]] = None,
                    t_end: float = 150.0,
                    dt: float = 0.1,
                    q0: float = 0.0,
                    rate0: float = 0.0,
                    steady_fraction: float = 0.5,
                    tolerance: float = 0.1) -> GainGridScores:
    """Score a family of gain choices with one batched trajectory run.

    Parameters
    ----------
    params:
        Base system parameters (the fallback gains also serve as the default
        fairness reference deployment).
    c0, c1, q_target, mu:
        Gain-point coordinates; scalars or 1-D arrays that broadcast to a
        common batch size.
    weights:
        Axis weights (defaults to equal weights).
    reference:
        Reference ``(c0, c1)`` deployment for the unfairness axis; defaults
        to the gains in *params*.
    t_end, dt, q0, rate0:
        Trajectory horizon, step and shared start point (the canonical
        empty-queue, zero-rate startup by default).
    steady_fraction, tolerance:
        Analysis-window fraction for the oscillation metrics and the band
        tolerance for the settling times.
    """
    weights = weights if weights is not None else ObjectiveWeights()
    reference_c0, reference_c1 = (reference if reference is not None
                                  else (params.c0, params.c1))
    control = JRJControl(c0=params.c0, c1=params.c1,
                         q_target=params.q_target)
    batch = integrate_characteristic_batch(
        control, params, q0, rate0, t_end=t_end, dt=dt,
        columns={"c0": c0, "c1": c1, "q_target": q_target, "mu": mu})
    oscillation = oscillation_metrics_batch(batch.times, batch.queue,
                                            steady_fraction=steady_fraction)
    relaxation = batch.settling_times(tolerance)
    queue_error = np.abs(oscillation.mean_value - batch.q_target)
    unfairness = deployment_unfairness(
        np.broadcast_to(np.asarray(c0, dtype=float), batch.q_target.shape),
        np.broadcast_to(np.asarray(c1, dtype=float), batch.q_target.shape),
        reference_c0, reference_c1)
    q_scale = np.maximum(batch.q_target, 1.0)
    score = combine_score(weights, oscillation.amplitude, relaxation,
                          queue_error, unfairness, q_scale, t_end)
    size = batch.q_target.shape
    return GainGridScores(
        c0=np.broadcast_to(np.asarray(c0, dtype=float), size).copy(),
        c1=np.broadcast_to(np.asarray(c1, dtype=float), size).copy(),
        q_target=batch.q_target, mu=batch.mu,
        oscillation_amplitude=oscillation.amplitude,
        oscillation_period=oscillation.period,
        relaxation_time=relaxation, queue_error=queue_error,
        unfairness=unfairness, score=score)


def score_operating_point(params: SystemParameters, c0: float, c1: float,
                          q_target: float, mu: float,
                          *,
                          weights: Optional[ObjectiveWeights] = None,
                          reference: Optional[Tuple[float, float]] = None,
                          t_end: float = 150.0,
                          dt: float = 0.1,
                          q0: float = 0.0,
                          rate0: float = 0.0,
                          steady_fraction: float = 0.5,
                          tolerance: float = 0.1) -> OperatingPointScore:
    """Score one gain choice through the scalar trajectory path.

    Runs the non-batched integrator and analysis routines end to end;
    because the batched engine is member-wise bit-identical to the scalar
    one, the result equals the corresponding :func:`score_gain_grid` entry
    exactly — a parity the unit tests pin.
    """
    from ..analysis.oscillations import oscillation_metrics
    from ..characteristics.trajectory import integrate_characteristic
    weights = weights if weights is not None else ObjectiveWeights()
    reference_c0, reference_c1 = (reference if reference is not None
                                  else (params.c0, params.c1))
    point_params = replace(params, mu=float(mu))
    control = JRJControl(c0=float(c0), c1=float(c1),
                         q_target=float(q_target))
    trajectory = integrate_characteristic(control, point_params, q0, rate0,
                                          t_end=t_end, dt=dt)
    oscillation = oscillation_metrics(trajectory.times, trajectory.queue,
                                      steady_fraction=steady_fraction)
    relaxation = trajectory.settling_time(tolerance)
    queue_error = abs(oscillation.mean_value - float(q_target))
    unfairness = float(deployment_unfairness(float(c0), float(c1),
                                             reference_c0, reference_c1))
    q_scale = max(float(q_target), 1.0)
    score = float(combine_score(weights, oscillation.amplitude, relaxation,
                                queue_error, unfairness, q_scale, t_end))
    return OperatingPointScore(
        c0=float(c0), c1=float(c1), q_target=float(q_target), mu=float(mu),
        oscillation_amplitude=oscillation.amplitude,
        oscillation_period=oscillation.period,
        relaxation_time=relaxation, queue_error=queue_error,
        unfairness=unfairness, score=score)
