"""Sharded map-reduce aggregation for job matrices.

A campaign that only needs an *aggregate* -- merged streaming moments, a
combined histogram, a global top-k -- should not hold every per-job payload
in memory until the end.  :class:`MapReduceSpec` describes how successful
job values fold into one running state; :func:`~repro.runner.run_jobs`
applies it **in submission order** as jobs finish (a staging buffer holds
out-of-order completions until their turn), so the reduced state is
bit-identical whether the matrix ran serially, across worker processes, or
resumed from a journal.  With ``keep_values=False`` (the default) each
value is dropped right after it is cached, journaled and folded, bounding
the campaign's working set by the reduce state plus the in-flight window.

Accumulator states from :mod:`repro.dataplane` (``StreamingMoments``,
``StreamingHistogram``, ``TimeWeightedMoments``) are the intended fold
targets: their Chan-parallel merges make the aggregate independent of how
the work was sharded, which the Hypothesis suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..exceptions import ConfigurationError

__all__ = ["MapReduceSpec"]


@dataclass(frozen=True)
class MapReduceSpec:
    """How a job matrix reduces to one aggregate state.

    Attributes
    ----------
    fold:
        ``fold(state, value) -> state`` applied to every successful job
        value in submission order.  Mutating and returning *state* is
        fine; so is returning a fresh state.
    initial:
        Starting state.  A callable is treated as a zero-argument factory
        and invoked once per run (pass e.g. ``StreamingMoments`` states
        this way so reruns never share mutable state).
    finalize:
        Optional ``finalize(state) -> result`` applied once after the last
        fold; its return value becomes ``MatrixResult.reduced``.
    keep_values:
        When ``False`` (default), each job value is dropped from the
        in-memory outcome right after caching/journaling/folding --
        ``MatrixResult.reduced`` is the product, not the value list.  Set
        ``True`` to retain per-job values alongside the aggregate.
    """

    fold: Callable[[Any, Any], Any]
    initial: Any = None
    finalize: Optional[Callable[[Any], Any]] = None
    keep_values: bool = False

    def __post_init__(self) -> None:
        if not callable(self.fold):
            raise ConfigurationError("MapReduceSpec.fold must be callable")
        if self.finalize is not None and not callable(self.finalize):
            raise ConfigurationError(
                "MapReduceSpec.finalize must be callable when given")

    def make_initial(self) -> Any:
        """The starting state for one run (factories invoked here)."""
        if callable(self.initial):
            return self.initial()
        return self.initial


def coerce_reduce_spec(reduce: Any) -> "MapReduceSpec":
    """Accept a :class:`MapReduceSpec` or a bare fold callable."""
    if isinstance(reduce, MapReduceSpec):
        return reduce
    if callable(reduce):
        return MapReduceSpec(fold=reduce)
    raise ConfigurationError(
        "reduce= must be a MapReduceSpec or a fold callable")


class SubmissionOrderReducer:
    """Folds job values in submission order regardless of completion order.

    Completions arriving early are staged; whenever the next-unfolded
    index becomes available (success *or* failure -- failures advance the
    pointer without folding), the contiguous prefix is folded and
    released.  This makes the reduce deterministic: the fold sees exactly
    the successful values in matrix order, however execution interleaved.
    """

    _SKIP = object()  # marks a failed job: advances the fold frontier

    def __init__(self, spec: MapReduceSpec):
        self.spec = spec
        self.state = spec.make_initial()
        self._staged: Dict[int, Any] = {}
        self._next = 0
        self.folded = 0

    def offer(self, index: int, value: Any, ok: bool) -> None:
        """Stage one finished job and fold any ready prefix."""
        self._staged[index] = value if ok else self._SKIP
        while self._next in self._staged:
            staged = self._staged.pop(self._next)
            if staged is not self._SKIP:
                self.state = self.spec.fold(self.state, staged)
                self.folded += 1
            self._next += 1

    def result(self) -> Any:
        """The final reduced value (after :attr:`spec` finalisation)."""
        if self._staged:
            raise ConfigurationError(
                "reduce finished with unfolded staged values; some job "
                "indices never reported an outcome")
        if self.spec.finalize is not None:
            return self.spec.finalize(self.state)
        return self.state
