"""Canonical JSON encoding and content hashing for job specifications.

A job's cache key must be *stable*: the same logical job -- same callable,
same parameters, same overrides, same seed -- must hash to the same string
in every process, on every run, regardless of dictionary insertion order.
The encoder here therefore sorts mapping keys, normalises numpy scalar
types to their Python equivalents, and rejects values whose serialisation
would be ambiguous (arbitrary objects, NaN sentinels used as keys, ...).
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

import numpy as np

from ..config import ParameterDictMixin
from ..exceptions import ConfigurationError

__all__ = ["canonical_json", "content_hash"]


def _normalise(value: Any) -> Any:
    """Convert *value* to a canonical, JSON-representable form."""
    if isinstance(value, ParameterDictMixin):
        return _normalise(value.to_dict())
    if isinstance(value, dict):
        normalised = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"canonical JSON requires string keys, got {key!r}")
            normalised[key] = _normalise(value[key])
        return normalised
    if isinstance(value, (list, tuple)):
        return [_normalise(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return _normalise(float(value))
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, float):
        # repr round-trips doubles exactly; encode the two non-finite cases
        # as tagged strings so the hash never depends on json's NaN quirks.
        if math.isnan(value):
            return {"__float__": "nan"}
        if math.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise ConfigurationError(
        f"value of type {type(value).__name__} cannot be canonically "
        f"serialised for hashing: {value!r}")


def canonical_json(value: Any) -> str:
    """Serialise *value* to a canonical (sorted, compact) JSON string."""
    return json.dumps(_normalise(value), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of *value*."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
