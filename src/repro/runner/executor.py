"""Fault-tolerant parallel job execution with caching and checkpointing.

:func:`run_jobs` is the single entry point: it takes a list of
:class:`~repro.runner.JobSpec` objects and returns a
:class:`MatrixResult` whose outcomes are in submission order regardless of
completion order.  Execution is exact-deterministic: a job's result depends
only on its spec (function, params, overrides, seed), so running the same
matrix serially, in parallel, from cache, from a resumed journal -- or
through any schedule of injected faults absorbed by retries -- yields
bit-identical values.

Resilience layers (each optional, all composable):

* **Failure isolation** -- a job that raises is recorded as a failed
  outcome with its traceback; the rest of the matrix still runs.
* **Retries with deterministic backoff** -- ``retries=`` /
  ``retry_policy=`` re-execute jobs that fail *transiently* (killed
  worker, broken pool, timeout, unpicklable transport, or any raised
  :class:`~repro.exceptions.TransientJobError`).  Deterministic failures
  (``StabilityError``, ``ConvergenceError``, plain bugs) are never
  retried: re-running a bit-identical job cannot change the outcome.
* **Per-job timeouts and pool supervision** -- ``timeout=`` arms a
  watchdog that kills wedged workers; a ``BrokenProcessPool`` respawns a
  fresh pool and resubmits the surviving pending jobs instead of
  poisoning the whole matrix.
* **Checkpoint/resume** -- ``journal=`` appends every outcome to a
  crash-safe :class:`~repro.runner.journal.RunJournal`; a rerun with the
  same journal skips journaled successes, so a killed campaign continues
  where it left off.
* **Deterministic chaos** -- ``faults=`` (or the ``REPRO_FAULTS``
  environment variable) threads a
  :class:`~repro.runner.faults.FaultPlan` into every execution so each
  recovery path above is exercisable reproducibly in tests.

Only successful results are written to the cache.
"""

from __future__ import annotations

import heapq
import sys
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import ConfigurationError, SimulationError, TransientJobError
from .cache import ResultCache
from .faults import FaultPlan
from .journal import RunJournal
from .mapreduce import MapReduceSpec, SubmissionOrderReducer, coerce_reduce_spec
from .spec import JobSpec

__all__ = ["JobOutcome", "MatrixResult", "MapReduceSpec", "RetryPolicy",
           "run_jobs", "print_progress"]

ProgressCallback = Callable[[int, int, "JobOutcome"], None]

#: Supervision-loop tick: how often the watchdog and retry queue are
#: polled while futures are in flight.  Purely an upper bound on reaction
#: latency; never affects results.
_TICK_SECONDS = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How transient job failures are retried.

    The backoff schedule is *deterministic* (capped exponential, no
    jitter): retry ``k`` of a job waits
    ``min(backoff_max, backoff_base * backoff_factor ** (k - 1))``
    seconds, so a campaign's retry behaviour is reproducible run-to-run.

    ``retries`` bounds re-executions after an *observed* transient failure
    (an in-job :class:`~repro.exceptions.TransientJobError`, a timeout, an
    unpicklable transport).  Worker crashes are budgeted separately by
    ``max_crashes`` (default ``retries + 2``): when a pool breaks the
    executor cannot tell the job that killed the worker from innocent
    bystanders that were merely in flight, so crash resubmissions are
    bounded but not charged against the ordinary retry budget.
    """

    retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    max_crashes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("RetryPolicy.retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("RetryPolicy backoff must be >= 0")

    @property
    def crash_budget(self) -> int:
        if self.max_crashes is not None:
            return self.max_crashes
        return self.retries + 2

    def delay(self, failure_count: int) -> float:
        """Backoff before retry number *failure_count* (1-based)."""
        exponent = max(0, failure_count - 1)
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** exponent)


@dataclass
class JobOutcome:
    """Result record of one job: value or error, provenance and timing."""

    spec: JobSpec
    key: str
    value: Any = None
    error: Optional[str] = None
    from_cache: bool = False
    from_journal: bool = False
    attempts: int = 1
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job produced a value (freshly or from cache)."""
        return self.error is None


@dataclass
class MatrixResult:
    """Outcome of a whole job matrix, in submission order.

    When the matrix ran with ``reduce=``, :attr:`reduced` carries the
    folded (and finalised) aggregate; unless the reduce spec kept values,
    the per-outcome ``value`` fields were dropped after folding.
    """

    outcomes: List[JobOutcome] = field(default_factory=list)
    reduced: Any = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def values(self) -> List[Any]:
        """Values of all successful jobs, raising if any job failed."""
        self.raise_failures()
        return [outcome.value for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_cache)

    @property
    def journal_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_journal)

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes
                   if outcome.ok and not outcome.from_cache
                   and not outcome.from_journal)

    @property
    def retried(self) -> int:
        """Jobs that needed more than one attempt."""
        return sum(1 for outcome in self.outcomes if outcome.attempts > 1)

    @property
    def failures(self) -> List[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def raise_failures(self) -> None:
        """Raise :class:`SimulationError` describing all failed jobs, if any."""
        failed = self.failures
        if failed:
            details = "; ".join(
                f"{outcome.spec.label}: "
                f"{_last_line(outcome.error)}" for outcome in failed)
            raise SimulationError(
                f"{len(failed)} of {len(self.outcomes)} jobs failed: {details}")

    def summary(self) -> str:
        """One-line human-readable account of hits/computed/failures."""
        parts = [f"{len(self.outcomes)} jobs: {self.cache_hits} cache hits"]
        if self.journal_hits:
            parts.append(f"{self.journal_hits} journal hits")
        parts.append(f"{self.computed} computed")
        if self.retried:
            parts.append(f"{self.retried} retried")
        parts.append(f"{len(self.failures)} failed")
        return ", ".join(parts)


def _last_line(error: Optional[str]) -> str:
    """Final line of an error transcript, tolerating empty strings."""
    lines = (error or "").splitlines()
    return lines[-1] if lines else "<no error detail>"


def print_progress(done: int, total: int, outcome: JobOutcome) -> None:
    """Default progress reporter: one stderr line per finished job."""
    if outcome.from_cache:
        status = "cached"
    elif outcome.from_journal:
        status = "journaled"
    elif outcome.ok:
        status = "ok" if outcome.attempts == 1 \
            else f"ok after {outcome.attempts} attempts"
    else:
        status = "FAILED"
    print(f"[runner] {done}/{total} {outcome.spec.label}: {status} "
          f"({outcome.duration:.2f}s)", file=sys.stderr, flush=True)


def _execute_job(spec: JobSpec, attempt: int = 0, faults=None):
    """Worker-side execution: never raises.

    Returns ``(value, error, transient, seconds)`` where *error* is the
    formatted traceback (or ``None`` on success) and *transient* records
    whether the raised exception derived from
    :class:`~repro.exceptions.TransientJobError` -- the worker-side half
    of the retry classification.
    """
    start = time.perf_counter()
    try:
        if faults is not None:
            faults.apply(spec, attempt)
        value = spec.execute()
        return value, None, False, time.perf_counter() - start
    except Exception as error:  # KeyboardInterrupt/SystemExit stay interruptive
        transient = isinstance(error, TransientJobError)
        return None, traceback.format_exc(), transient, \
            time.perf_counter() - start


class _Supervisor:
    """Book-keeping shared by the serial and pooled execution paths."""

    def __init__(self, jobs: Sequence[JobSpec], outcomes: List[
                 Optional[JobOutcome]], done: int, total: int,
                 policy: RetryPolicy, cache: Optional[ResultCache],
                 journal: Optional[RunJournal],
                 progress: Optional[ProgressCallback],
                 reducer: Optional[SubmissionOrderReducer] = None):
        self.jobs = jobs
        self.outcomes = outcomes
        self.done = done
        self.total = total
        self.policy = policy
        self.cache = cache
        self.journal = journal
        self.progress = progress
        self.reducer = reducer
        self.dispatches: Dict[int, int] = {}  # index -> executions started
        self.failures: Dict[int, int] = {}    # index -> retryable failures
        self.crashes: Dict[int, int] = {}     # index -> pool-break charges
        self.durations: Dict[int, float] = {}

    def finish(self, index: int, value: Any, error: Optional[str],
               from_cache: bool = False, from_journal: bool = False) -> None:
        """Record the final outcome of job *index* and run the sinks."""
        spec = self.jobs[index]
        outcome = JobOutcome(
            spec=spec, key=spec.key, value=value, error=error,
            from_cache=from_cache, from_journal=from_journal,
            attempts=max(1, self.dispatches.get(index, 0)),
            duration=self.durations.get(index, 0.0))
        self.outcomes[index] = outcome
        self.done += 1
        if self.cache is not None and outcome.ok and not from_cache \
                and not from_journal:
            self.cache.put(outcome.key, outcome.value, meta={
                "label": spec.label,
                "function": spec.function_ref,
                "seed": spec.seed,
                "duration": outcome.duration,
            })
        if self.journal is not None and not from_journal:
            # Journal-replayed outcomes are already on disk; re-recording
            # them would only grow the journal on every resume.
            self.journal.record(outcome)
        if self.reducer is not None:
            # Fold after the durable sinks (cache, journal) have the value,
            # so dropping it below loses nothing a resume cannot recover.
            self.reducer.offer(index, outcome.value, outcome.ok)
            if not self.reducer.spec.keep_values:
                outcome.value = None
        if self.progress is not None:
            self.progress(self.done, self.total, outcome)

    def settle(self, index: int, value: Any, error: Optional[str],
               transient: bool, seconds: float) -> Optional[float]:
        """Fold one execution result; return a backoff delay to retry.

        Returns ``None`` when the job reached a final outcome (success or
        permanent failure), else the deterministic backoff in seconds
        before its next attempt.
        """
        self.durations[index] = self.durations.get(index, 0.0) + seconds
        if error is None:
            self.finish(index, value, None)
            return None
        if transient:
            count = self.failures.get(index, 0) + 1
            self.failures[index] = count
            if count <= self.policy.retries:
                return self.policy.delay(count)
        self.finish(index, None, error)
        return None

    def crash(self, index: int, message: str) -> Optional[float]:
        """Charge a pool-break to job *index*; return a retry delay or None."""
        count = self.crashes.get(index, 0) + 1
        self.crashes[index] = count
        if count <= self.policy.crash_budget:
            return self.policy.delay(count)
        self.finish(index, None, message)
        return None


def _run_serial(supervisor: _Supervisor, pending: Sequence[int],
                faults) -> None:
    for index in pending:
        spec = supervisor.jobs[index]
        while True:
            attempt = supervisor.dispatches.get(index, 0)
            supervisor.dispatches[index] = attempt + 1
            value, error, transient, seconds = _execute_job(
                spec, attempt, faults)
            delay = supervisor.settle(index, value, error, transient, seconds)
            if delay is None:
                break
            if delay > 0.0:
                time.sleep(delay)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's workers and discard it (watchdog / break recovery)."""
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except OSError:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.join(timeout=2.0)
        except Exception:
            pass


def _run_supervised(supervisor: _Supervisor, pending: Sequence[int],
                    workers: int, timeout: Optional[float], faults) -> None:
    """Pooled execution with watchdog, pool respawn and retry scheduling.

    Jobs are submitted through a sliding window of at most *workers*
    in-flight futures, so every submitted job starts (approximately)
    immediately and the per-job ``timeout`` can be measured from
    submission.  A timed-out or broken pool is killed and respawned; the
    surviving pending jobs are resubmitted.  All scheduling here affects
    only *when* a job runs, never *what* it computes, so results remain
    bit-identical to the serial path.
    """
    queue = deque(pending)                 # indices ready to dispatch
    delayed: List[Tuple[float, int]] = []  # (eligible_at, index) retry heap
    inflight: Dict[Any, Tuple[int, float]] = {}  # future -> (index, start)
    barren_respawns = 0  # consecutive respawns that dispatched nothing
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        while queue or delayed or inflight:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                queue.append(heapq.heappop(delayed)[1])

            # Top up the in-flight window.
            respawn = False
            while queue and len(inflight) < workers:
                index = queue[0]
                attempt = supervisor.dispatches.get(index, 0)
                try:
                    future = pool.submit(_execute_job, supervisor.jobs[index],
                                         attempt, faults)
                except BrokenProcessPool:
                    respawn = True
                    break
                queue.popleft()
                supervisor.dispatches[index] = attempt + 1
                inflight[future] = (index, time.monotonic())
            if respawn:
                # The pool broke between harvests (worker died while idle
                # or while accepting work); nothing in flight is
                # trustworthy -- charge and reclaim it all, then respawn.
                barren_respawns = 0 if inflight else barren_respawns + 1
                if barren_respawns > 5:
                    raise SimulationError(
                        "worker pool breaks immediately on every respawn; "
                        "giving up (cannot spawn worker processes?)")
                _reclaim_broken(supervisor, inflight, delayed, queue)
                _terminate_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                continue
            barren_respawns = 0

            if not inflight:
                if delayed:
                    time.sleep(max(0.0, min(_TICK_SECONDS,
                                            delayed[0][0] - now)))
                continue

            done, _ = wait(list(inflight), timeout=_TICK_SECONDS,
                           return_when=FIRST_COMPLETED)
            broke = False
            for future in done:
                index, started = inflight.pop(future)
                try:
                    value, error, transient, seconds = future.result()
                except BrokenProcessPool:
                    broke = True
                    delay = supervisor.crash(index, _crash_message(
                        supervisor.jobs[index]))
                    if delay is not None:
                        heapq.heappush(delayed,
                                       (time.monotonic() + delay, index))
                except Exception:
                    # The computation may have finished; its transport did
                    # not (unpicklable result, torn pipe).  Classified
                    # transient per the error taxonomy.
                    message = ("transient result-transport failure "
                               "(ResultTransportError):\n"
                               + traceback.format_exc())
                    delay = supervisor.settle(index, None, message, True, 0.0)
                    if delay is not None:
                        heapq.heappush(delayed,
                                       (time.monotonic() + delay, index))
                else:
                    delay = supervisor.settle(index, value, error, transient,
                                              seconds)
                    if delay is not None:
                        heapq.heappush(delayed,
                                       (time.monotonic() + delay, index))
            if broke:
                _reclaim_broken(supervisor, inflight, delayed, queue)
                _terminate_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                continue

            # Watchdog: kill the pool when any in-flight job exceeds the
            # deadline.  Stuck workers cannot be reclaimed individually, so
            # expired jobs are charged a timeout (retryable) while innocent
            # co-resident jobs are resubmitted without any charge.
            if timeout is not None and inflight:
                now = time.monotonic()
                expired = {future: meta for future, meta in inflight.items()
                           if now - meta[1] >= timeout}
                if expired:
                    for future, (index, started) in list(inflight.items()):
                        if future in expired:
                            message = (
                                f"job exceeded timeout={timeout:g}s and its "
                                "worker was killed (JobTimeoutError)")
                            delay = supervisor.settle(
                                index, None, message, True, now - started)
                            if delay is not None:
                                heapq.heappush(
                                    delayed,
                                    (time.monotonic() + delay, index))
                        else:
                            # Collateral of the pool kill, not at fault:
                            # resubmit without consuming any budget.
                            supervisor.dispatches[index] = max(
                                0, supervisor.dispatches.get(index, 1) - 1)
                            queue.append(index)
                    inflight.clear()
                    _terminate_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _crash_message(spec: JobSpec) -> str:
    return (f"worker process died while job {spec.label!r} was in flight "
            "(WorkerCrashError: killed worker / broken process pool); "
            "the pool was respawned")


def _reclaim_broken(supervisor: _Supervisor, inflight, delayed, queue) -> None:
    """Charge every in-flight job of a broken pool and requeue survivors."""
    for future, (index, started) in list(inflight.items()):
        delay = supervisor.crash(index,
                                 _crash_message(supervisor.jobs[index]))
        if delay is not None:
            heapq.heappush(delayed, (time.monotonic() + delay, index))
    inflight.clear()


def run_jobs(jobs: Sequence[JobSpec], n_jobs: int = 1,
             cache: Optional[ResultCache] = None,
             progress: Optional[ProgressCallback] = None,
             retries: int = 0,
             retry_policy: Optional[RetryPolicy] = None,
             timeout: Optional[float] = None,
             journal: Union[RunJournal, str, None] = None,
             faults=None,
             reduce: Union[MapReduceSpec, Callable[[Any, Any], Any],
                           None] = None) -> MatrixResult:
    """Execute a job matrix, serially or across supervised worker processes.

    Parameters
    ----------
    jobs:
        The job specifications to run.
    n_jobs:
        Number of worker processes; ``1`` runs everything in-process (no
        pool), which is bit-identical to the parallel path because each
        job's randomness is fully determined by its spec.
    cache:
        Optional :class:`~repro.runner.ResultCache`.  Jobs whose key is
        present are served from disk without executing; fresh successful
        results are stored back.
    progress:
        Optional callback invoked after every finished job with
        ``(done_count, total, outcome)``.
    retries:
        Re-execute a job up to this many times after a *transient* failure
        (killed worker, broken pool, timeout, unpicklable transport, or an
        in-job :class:`~repro.exceptions.TransientJobError`), with capped
        deterministic backoff.  Deterministic failures are never retried.
    retry_policy:
        Full :class:`RetryPolicy` (backoff shape, crash budget); overrides
        ``retries`` when given.
    timeout:
        Per-job wall-clock budget in seconds.  Enforced on the pooled path
        (``n_jobs > 1``) by a watchdog that kills and respawns the pool; a
        timed-out job is charged a retryable
        :class:`~repro.exceptions.JobTimeoutError`.  The serial path
        cannot preempt its own process and ignores it.
    journal:
        A :class:`~repro.runner.journal.RunJournal` (or its path).  Every
        outcome is appended as it completes; jobs whose key already has a
        journaled success are served from the journal without executing,
        so an interrupted campaign resumes where it left off.
    faults:
        A :class:`~repro.runner.faults.FaultPlan` of deterministic
        injected faults (tests/chaos drills).  When ``None``, a plan armed
        via the ``REPRO_FAULTS`` environment variable applies.
    reduce:
        A :class:`~repro.runner.mapreduce.MapReduceSpec` (or bare
        ``fold(state, value) -> state`` callable) folding successful job
        values -- in submission order, regardless of completion order --
        into ``MatrixResult.reduced``.  Journal-replayed successes fold
        too, so resumed campaigns rebuild the same aggregate; unless the
        spec sets ``keep_values=True``, per-job values are dropped right
        after caching/journaling/folding to bound the working set.
    """
    jobs = list(jobs)
    if n_jobs < 1:
        raise ConfigurationError("n_jobs must be at least 1")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError("timeout must be positive")
    policy = retry_policy if retry_policy is not None \
        else RetryPolicy(retries=retries)
    if faults is None:
        faults = FaultPlan.from_environment()
    if journal is not None and not isinstance(journal, RunJournal):
        journal = RunJournal(journal)

    reducer = (SubmissionOrderReducer(coerce_reduce_spec(reduce))
               if reduce is not None else None)

    total = len(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * total
    supervisor = _Supervisor(jobs, outcomes, 0, total, policy, cache,
                             journal, progress, reducer)

    journaled = journal.successes() if journal is not None else {}

    # Replay/cache pass: satisfied jobs never reach a worker.
    pending: List[int] = []
    for index, spec in enumerate(jobs):
        key = spec.key
        record = journaled.get(key)
        if record is not None:
            supervisor.finish(index, record.value, None, from_journal=True)
            continue
        if cache is not None:
            hit, value = cache.get(key)
            if hit:
                supervisor.finish(index, value, None, from_cache=True)
                continue
        pending.append(index)

    if pending and n_jobs == 1:
        _run_serial(supervisor, pending, faults)
    elif pending:
        workers = min(n_jobs, len(pending))
        _run_supervised(supervisor, pending, workers, timeout, faults)

    reduced = reducer.result() if reducer is not None else None
    return MatrixResult(outcomes=list(outcomes), reduced=reduced)
