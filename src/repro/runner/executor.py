"""Parallel job execution with caching, failure isolation and progress.

:func:`run_jobs` is the single entry point: it takes a list of
:class:`~repro.runner.JobSpec` objects and returns a
:class:`MatrixResult` whose outcomes are in submission order regardless of
completion order.  Execution is exact-deterministic: a job's result depends
only on its spec (function, params, overrides, seed), so running the same
matrix serially, in parallel, or from cache yields bit-identical values.

Failure isolation: a job that raises is recorded as a failed outcome with
its traceback; the rest of the matrix still runs.  Only successful results
are written to the cache.
"""

from __future__ import annotations

import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from ..exceptions import ConfigurationError, SimulationError
from .cache import ResultCache
from .spec import JobSpec

__all__ = ["JobOutcome", "MatrixResult", "run_jobs", "print_progress"]

ProgressCallback = Callable[[int, int, "JobOutcome"], None]


@dataclass
class JobOutcome:
    """Result record of one job: value or error, provenance and timing."""

    spec: JobSpec
    key: str
    value: Any = None
    error: Optional[str] = None
    from_cache: bool = False
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job produced a value (freshly or from cache)."""
        return self.error is None


@dataclass
class MatrixResult:
    """Outcome of a whole job matrix, in submission order."""

    outcomes: List[JobOutcome] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def values(self) -> List[Any]:
        """Values of all successful jobs, raising if any job failed."""
        self.raise_failures()
        return [outcome.value for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_cache)

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes
                   if outcome.ok and not outcome.from_cache)

    @property
    def failures(self) -> List[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def raise_failures(self) -> None:
        """Raise :class:`SimulationError` describing all failed jobs, if any."""
        failed = self.failures
        if failed:
            details = "; ".join(
                f"{outcome.spec.label}: {outcome.error.splitlines()[-1]}"
                for outcome in failed)
            raise SimulationError(
                f"{len(failed)} of {len(self.outcomes)} jobs failed: {details}")

    def summary(self) -> str:
        """One-line human-readable account of hits/computed/failures."""
        return (f"{len(self.outcomes)} jobs: {self.cache_hits} cache hits, "
                f"{self.computed} computed, {len(self.failures)} failed")


def print_progress(done: int, total: int, outcome: JobOutcome) -> None:
    """Default progress reporter: one stderr line per finished job."""
    status = "cached" if outcome.from_cache else (
        "ok" if outcome.ok else "FAILED")
    print(f"[runner] {done}/{total} {outcome.spec.label}: {status} "
          f"({outcome.duration:.2f}s)", file=sys.stderr, flush=True)


def _execute_job(spec: JobSpec):
    """Worker-side execution: never raises, returns (value, error, seconds)."""
    start = time.perf_counter()
    try:
        value = spec.execute()
        return value, None, time.perf_counter() - start
    except Exception:  # KeyboardInterrupt/SystemExit must stay interruptive
        return None, traceback.format_exc(), time.perf_counter() - start


def _finish(outcome: JobOutcome, cache: Optional[ResultCache],
            progress: Optional[ProgressCallback], done: int,
            total: int) -> None:
    if cache is not None and outcome.ok and not outcome.from_cache:
        cache.put(outcome.key, outcome.value, meta={
            "label": outcome.spec.label,
            "function": outcome.spec.function_ref,
            "seed": outcome.spec.seed,
            "duration": outcome.duration,
        })
    if progress is not None:
        progress(done, total, outcome)


def run_jobs(jobs: Sequence[JobSpec], n_jobs: int = 1,
             cache: Optional[ResultCache] = None,
             progress: Optional[ProgressCallback] = None) -> MatrixResult:
    """Execute a job matrix, serially or across worker processes.

    Parameters
    ----------
    jobs:
        The job specifications to run.
    n_jobs:
        Number of worker processes; ``1`` runs everything in-process (no
        pool), which is bit-identical to the parallel path because each
        job's randomness is fully determined by its spec.
    cache:
        Optional :class:`~repro.runner.ResultCache`.  Jobs whose key is
        present are served from disk without executing; fresh successful
        results are stored back.
    progress:
        Optional callback invoked after every finished job with
        ``(done_count, total, outcome)``.
    """
    jobs = list(jobs)
    if n_jobs < 1:
        raise ConfigurationError("n_jobs must be at least 1")
    total = len(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * total
    done = 0

    # Cache lookup pass: satisfied jobs never reach a worker.
    pending: List[int] = []
    for index, spec in enumerate(jobs):
        key = spec.key
        if cache is not None:
            hit, value = cache.get(key)
            if hit:
                done += 1
                outcomes[index] = JobOutcome(spec=spec, key=key, value=value,
                                             from_cache=True)
                _finish(outcomes[index], None, progress, done, total)
                continue
        pending.append(index)

    if pending and n_jobs == 1:
        for index in pending:
            spec = jobs[index]
            value, error, seconds = _execute_job(spec)
            done += 1
            outcomes[index] = JobOutcome(spec=spec, key=spec.key, value=value,
                                         error=error, duration=seconds)
            _finish(outcomes[index], cache, progress, done, total)
    elif pending:
        workers = min(n_jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_execute_job, jobs[index]): index
                       for index in pending}
            # Harvest in completion order so cache writes and progress are
            # not head-of-line-blocked by a slow early job; `outcomes` keeps
            # submission order regardless.
            for future in as_completed(futures):
                index = futures[future]
                spec = jobs[index]
                try:
                    value, error, seconds = future.result()
                except BrokenProcessPool:
                    value, error, seconds = None, (
                        "worker process pool broke (worker killed?)"), 0.0
                except Exception:  # e.g. unpicklable result; Ctrl-C propagates
                    value, error, seconds = None, traceback.format_exc(), 0.0
                done += 1
                outcomes[index] = JobOutcome(spec=spec, key=spec.key,
                                             value=value, error=error,
                                             duration=seconds)
                _finish(outcomes[index], cache, progress, done, total)

    return MatrixResult(outcomes=list(outcomes))
