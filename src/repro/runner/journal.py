"""Crash-safe append-only campaign journal for checkpoint/resume.

A :class:`RunJournal` records each job outcome as one self-contained JSON
line the moment it completes, so a campaign killed at any instant --
``kill -9``, power loss, a broken pool the retries could not absorb --
leaves behind an exact account of what finished.  Re-running with
``run_jobs(..., journal=...)`` (or ``repro run --resume``) replays that
account and skips every journaled success, continuing where the dead
campaign left off.

Design points:

* **Append-only, atomic records.**  Each record is a single
  newline-terminated line, flushed and ``fsync``'d before the append
  returns, so at most the final line can ever be damaged.
* **Truncated-tail recovery.**  Opening a journal scans it line by line;
  a partial or malformed trailing line (the signature of a crash mid
  append) is dropped and the file is truncated back to the last intact
  record, so the journal self-heals instead of poisoning the resume.
* **Order-insensitive replay.**  Replay folds records into a key-indexed
  map in which any success for a key wins over any failure for the same
  key.  Because the runner's jobs are deterministic, all successes for a
  key carry bit-identical values, so replay is invariant under arbitrary
  permutation of the journal's lines -- pinned by a property test.
* **Bit-exact values.**  Values are stored with the cache's JSON codec,
  with ndarrays embedded as base64 raw bytes (and a pickle+base64
  fallback for arbitrary objects), so a value served from the journal is
  bit-identical to the freshly computed one.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError
from .cache import _decode_jsonable, _encode_jsonable, _Unencodable

__all__ = ["RunJournal", "JournalRecord", "encode_value", "decode_value"]

#: Bump when the record format changes; mismatched journals refuse replay.
_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Value codec: cache JSON codec + base64-embedded arrays, pickle fallback.
# ---------------------------------------------------------------------------

def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    if array.dtype.hasobject:
        raise _Unencodable("object-dtype array")
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_array(payload: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.dtype(payload["dtype"])) \
        .reshape(payload["shape"]).copy()


def encode_value(value: Any) -> Dict[str, Any]:
    """Encode *value* into a JSON-able ``{"encoding": ..., ...}`` payload."""
    arrays: Dict[str, np.ndarray] = {}
    try:
        jsonable = _encode_jsonable(value, arrays)
        encoded_arrays = {token: _encode_array(array)
                          for token, array in arrays.items()}
    except _Unencodable:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return {"encoding": "pickle",
                "data": base64.b64encode(blob).decode("ascii")}
    return {"encoding": "json", "json": jsonable, "arrays": encoded_arrays}


def decode_value(payload: Dict[str, Any]) -> Any:
    """Invert :func:`encode_value`, bit-identically."""
    encoding = payload.get("encoding")
    if encoding == "pickle":
        return pickle.loads(base64.b64decode(payload["data"]))
    if encoding == "json":
        arrays = {token: _decode_array(spec)
                  for token, spec in payload.get("arrays", {}).items()}
        return _decode_jsonable(payload.get("json"), arrays)
    raise ValueError(f"unknown journal value encoding {encoding!r}")


# ---------------------------------------------------------------------------
# The journal.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JournalRecord:
    """One replayed outcome: the key, success flag and decoded value."""

    key: str
    label: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    duration: float = 0.0


class RunJournal:
    """Append-only, fsync'd, self-healing record of a campaign's outcomes.

    Parameters
    ----------
    path:
        Journal file location (created, with parents, on first append).
    fsync:
        Force each record to stable storage before the append returns
        (default).  Tests may disable it for speed; production campaigns
        should not.
    """

    def __init__(self, path: os.PathLike, fsync: bool = True):
        self.path = Path(path).expanduser()
        self._fsync = bool(fsync)
        self._handle = None
        self._replayed: Optional[Dict[str, JournalRecord]] = None

    # -- replay ------------------------------------------------------------

    def replay(self) -> Dict[str, JournalRecord]:
        """Fold the journal into a ``key -> record`` map (success wins).

        Scans the file line by line, dropping a damaged tail, and caches
        the result; the cache is updated incrementally by :meth:`record`,
        so replay-then-append round trips stay consistent.
        """
        if self._replayed is None:
            self._replayed = {}
            self._recover()
        return dict(self._replayed)

    def successes(self) -> Dict[str, JournalRecord]:
        """Only the journaled successes (the jobs resume can skip)."""
        return {key: record for key, record in self.replay().items()
                if record.ok}

    def _fold(self, record: JournalRecord) -> None:
        existing = self._replayed.get(record.key)
        if existing is None or (record.ok and not existing.ok):
            self._replayed[record.key] = record

    def _recover(self) -> None:
        """Scan the file, fold intact records, truncate a damaged tail."""
        if not self.path.is_file():
            return
        good_end = 0
        with open(self.path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break  # partial final line: crash mid-append
                try:
                    payload = json.loads(line.decode("utf-8"))
                    record = self._record_from(payload)
                except (ValueError, KeyError, TypeError):
                    break  # malformed record: treat it and the rest as torn
                good_end += len(line)
                if record is not None:
                    self._fold(record)
        if good_end < self.path.stat().st_size:
            with open(self.path, "rb+") as handle:
                handle.truncate(good_end)

    def _record_from(self, payload: Dict[str, Any]) \
            -> Optional[JournalRecord]:
        kind = payload.get("type")
        if kind == "journal":
            if payload.get("format") != _FORMAT_VERSION:
                raise ConfigurationError(
                    f"journal {self.path} uses format "
                    f"{payload.get('format')!r}, expected {_FORMAT_VERSION}")
            return None
        if kind != "outcome":
            raise ValueError(f"unknown journal record type {kind!r}")
        ok = bool(payload["ok"])
        return JournalRecord(
            key=payload["key"],
            label=str(payload.get("label", "")),
            ok=ok,
            value=decode_value(payload["value"]) if ok else None,
            error=payload.get("error"),
            attempts=int(payload.get("attempts", 1)),
            duration=float(payload.get("duration", 0.0)))

    # -- append ------------------------------------------------------------

    def _open(self):
        if self._handle is None:
            if self._replayed is None:
                self.replay()  # heal a damaged tail before appending
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists()
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh or self._handle.tell() == 0:
                self._append({"type": "journal", "format": _FORMAT_VERSION})
        return self._handle

    def _append(self, payload: Dict[str, Any]) -> None:
        handle = self._handle
        handle.write(json.dumps(payload, separators=(",", ":"),
                                default=str) + "\n")
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())

    def record(self, outcome) -> None:
        """Append one finished :class:`~repro.runner.JobOutcome`."""
        payload: Dict[str, Any] = {
            "type": "outcome",
            "key": outcome.key,
            "label": outcome.spec.label,
            "ok": outcome.ok,
            "attempts": int(getattr(outcome, "attempts", 1)),
            "duration": float(outcome.duration),
        }
        if outcome.ok:
            payload["value"] = encode_value(outcome.value)
        else:
            payload["error"] = outcome.error
        self._open()
        self._append(payload)
        self._fold(JournalRecord(
            key=outcome.key, label=outcome.spec.label, ok=outcome.ok,
            value=outcome.value if outcome.ok else None,
            error=outcome.error,
            attempts=int(getattr(outcome, "attempts", 1)),
            duration=float(outcome.duration)))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def clear(self) -> None:
        """Delete the journal file (a fresh, non-resumed campaign)."""
        self.close()
        self._replayed = None
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.replay())

    def __repr__(self) -> str:
        return f"RunJournal({str(self.path)!r})"
