"""Multi-dimensional parameter-grid construction.

Generalises the single-scalar sweep of :func:`repro.workloads.run_sweep`
to full cartesian matrices: a mapping of named axes expands into the list
of grid points, and :func:`build_matrix` turns those points into
:class:`~repro.runner.JobSpec` objects.  Axis values whose names match
fields of the base parameter object are folded into the parameter
dataclass (via :func:`dataclasses.replace`); the remaining names become
keyword arguments of the experiment callable.  Per-job seeds are derived
from a master seed with the spawn-key scheme of
:mod:`repro.queueing.random_streams`, so job ``i`` of a matrix always sees
the same seed no matter how (or where) the matrix is executed.
"""

from __future__ import annotations

import itertools
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..config import ParameterDictMixin
from ..exceptions import ConfigurationError
from ..queueing.random_streams import derive_child_seed
from .spec import JobSpec, function_accepts_seed

__all__ = ["expand_grid", "build_matrix"]


def expand_grid(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand named axes into the cartesian list of grid points.

    Points are produced in deterministic row-major order: the first axis
    varies slowest, the last axis fastest (like nested for-loops written in
    axis order).
    """
    if not axes:
        raise ConfigurationError("grid needs at least one axis")
    names = list(axes)
    value_lists = []
    for name in names:
        values = list(axes[name])
        if not values:
            raise ConfigurationError(f"grid axis {name!r} has no values")
        value_lists.append(values)
    return [dict(zip(names, combination, strict=True))
            for combination in itertools.product(*value_lists)]


def _split_point(point: Mapping[str, Any],
                 params: Optional[ParameterDictMixin]):
    """Split a grid point into parameter-field overrides and call kwargs."""
    if params is None or not is_dataclass(params):
        return None if params is None else params, dict(point)
    field_names = {spec.name for spec in dataclass_fields(params)}
    param_overrides = {name: value for name, value in point.items()
                       if name in field_names}
    call_overrides = {name: value for name, value in point.items()
                      if name not in field_names}
    if param_overrides:
        params = replace(params, **param_overrides)
    return params, call_overrides


def build_matrix(function: Callable,
                 params: Optional[ParameterDictMixin],
                 axes: Mapping[str, Sequence[Any]],
                 fixed: Optional[Mapping[str, Any]] = None,
                 master_seed: Optional[int] = None,
                 version: int = 1) -> List[JobSpec]:
    """Build the full cartesian job matrix for *function* over *axes*.

    Parameters
    ----------
    function:
        Module-level experiment callable (see :class:`~repro.runner.JobSpec`).
    params:
        Base parameter object.  Axis names matching its dataclass fields
        update the parameters of each point; other names are passed to the
        callable as keyword arguments.
    axes:
        Mapping of axis name to the values it sweeps.
    fixed:
        Extra keyword arguments shared by every job (horizons, resolutions).
    master_seed:
        When given, job ``i`` receives the spawn-key-derived child seed
        ``derive_child_seed(master_seed, (i,))``.  Seeds are only assigned
        when *function* can actually accept a ``seed=`` keyword; a
        deterministic callable keeps ``seed=None`` so its cache key (and
        hence its cached result) is independent of the master seed.
    version:
        Cache-busting version recorded in every spec.
    """
    points = expand_grid(axes)
    derive_seeds = master_seed is not None and function_accepts_seed(function)
    jobs: List[JobSpec] = []
    for index, point in enumerate(points):
        merged = dict(fixed or {})
        merged.update(point)
        job_params, call_overrides = _split_point(merged, params)
        seed = None
        if derive_seeds:
            seed = derive_child_seed(master_seed, (index,))
        label = ", ".join(f"{name}={value}" for name, value in point.items())
        jobs.append(JobSpec(function=function, params=job_params,
                            overrides=tuple(sorted(call_overrides.items())),
                            seed=seed, version=version, label=label))
    return jobs
