"""Module-level experiment functions and named job matrices for the CLI.

Every function here is a picklable, importable job callable: it takes a
:class:`~repro.config.SystemParameters` first, keyword overrides after,
and returns a JSON-friendly dictionary of headline metrics (so cached
results live in plain ``result.json`` files).  The registry at the bottom
maps matrix names (``repro run <name>``) to builders producing a job list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..characteristics import verify_theorem1, verify_theorem1_batch
from ..config import GridParameters, SystemParameters, TimeParameters
from ..control.jrj import jrj_from_parameters
from ..crossval import cross_validate
from ..delay.delayed_model import DelayedSystem
from ..design import default_axes, score_gain_grid, solve_stationary
from ..delay.oscillation import measure_oscillation
from ..exceptions import ConfigurationError
from ..multisource import MultiSourceModel, fairness_report
from ..queueing import MultiHopSimulator, Simulator
from ..queueing.multihop import parking_lot_scenario
from ..queueing.scenarios import get_scenario
from ..workloads.scenarios import (
    homogeneous_sources_scenario,
    packet_level_jrj_scenario,
)
from .grid import build_matrix
from .spec import JobSpec

__all__ = [
    "theorem1_point",
    "theorem1_batch_point",
    "density_point",
    "delay_point",
    "ensemble_point",
    "fairness_point",
    "multihop_point",
    "packet_point",
    "des_scenario_point",
    "crossval_point",
    "stationary_point",
    "design_chunk_point",
    "MatrixDefinition",
    "available_matrices",
    "get_matrix",
]


# ---------------------------------------------------------------------------
# Job callables.  Keep them module-level and keyword-friendly: the runner
# addresses them by ``module:qualname`` and hashes their keyword overrides.
# ---------------------------------------------------------------------------

def _with_health(value: dict, log) -> dict:
    """Attach a health-log summary to a job value — only when it has
    something to say, so healthy runs keep their pre-health value shape
    (and the ``repro health`` replay can tell quiet from unmonitored)."""
    if log is not None and log.n_reports:
        value["health"] = log.summary()
    return value

def theorem1_point(params: SystemParameters,
                   t_end: Optional[float] = None) -> dict:
    """Verify Theorem 1 convergence for one parameter combination.

    ``t_end=None`` lets :func:`~repro.characteristics.verify_theorem1` pick
    its parameter-scaled default horizon.
    """
    verification = verify_theorem1(params, t_end=t_end)
    return {
        "converges": bool(verification.converges),
        "final_queue_error": float(verification.final_queue_error),
        "final_rate_error": float(verification.final_rate_error),
        "mean_contraction_ratio": float(verification.mean_contraction_ratio),
    }


def theorem1_batch_point(params: SystemParameters,
                         c0_values: Optional[List[float]] = None,
                         c1_values: Optional[List[float]] = None,
                         t_end: Optional[float] = None,
                         dt: float = 0.02) -> dict:
    """Verify Theorem 1 over a ``c0 × c1`` chunk as one batched integration.

    The chunk's cross product is expanded in the row-major order
    :func:`~repro.runner.grid.expand_grid` uses (``c0`` slowest) and every
    member is integrated in one vectorized run.  With an explicit *t_end*
    each point's verdict is identical to :func:`theorem1_point` on the
    matching parameters.  With ``t_end=None`` the chunk shares the largest
    member's default horizon, so mixed-``c0`` chunks integrate their
    smaller-``c0`` members longer than the scalar default would (the
    in-tree ``theorem1-grid`` chunks are single-``c0``, where the shared
    default equals the scalar one).
    """
    c0_list = [params.c0] if c0_values is None else [float(v)
                                                    for v in c0_values]
    c1_list = [params.c1] if c1_values is None else [float(v)
                                                    for v in c1_values]
    columns = {
        "c0": np.repeat(c0_list, len(c1_list)),
        "c1": np.tile(c1_list, len(c0_list)),
    }
    verifications = verify_theorem1_batch(params, t_end=t_end, dt=dt,
                                          columns=columns)
    points = [
        {
            "c0": float(c0),
            "c1": float(c1),
            "converges": bool(verification.converges),
            "final_queue_error": float(verification.final_queue_error),
            "final_rate_error": float(verification.final_rate_error),
            "mean_contraction_ratio":
                float(verification.mean_contraction_ratio),
        }
        # The columns arrays are the authoritative point ordering.
        for c0, c1, verification in zip(columns["c0"], columns["c1"],
                                        verifications, strict=True)
    ]
    return {
        "n_points": len(points),
        "n_converged": sum(point["converges"] for point in points),
        "all_converge": all(point["converges"] for point in points),
        "points": points,
    }


def density_point(params: SystemParameters, t_end: float = 60.0,
                  nq: int = 60, nv: int = 48, q_max: float = 40.0,
                  v_span: float = 1.5, snapshot_every: int = 30) -> dict:
    """Solve the Fokker-Planck equation and report density moments."""
    from ..core.solver import FokkerPlanckSolver

    grid = GridParameters(q_max=q_max, nq=nq, v_min=-v_span, v_max=v_span,
                          nv=nv)
    control = jrj_from_parameters(params)
    solver = FokkerPlanckSolver(params, control, grid_params=grid)
    result = solver.solve_from_point(
        q0=0.0, rate0=0.5 * params.mu,
        time_params=TimeParameters(t_end=t_end, dt=max(t_end / 300.0, 0.1),
                                   snapshot_every=snapshot_every))
    moments = result.final_moments
    value = {
        "mean_queue": float(moments.mean_q),
        "std_queue": float(moments.std_q),
        "overflow_probability":
            float(result.overflow_probability(2.0 * params.q_target)),
        "snapshots": [
            {
                "time": float(snapshot.time),
                "mean_queue": float(snapshot.moments.mean_q),
                "std_queue": float(snapshot.moments.std_q),
            }
            for snapshot in result.snapshots
        ],
    }
    return _with_health(value, result.health)


def delay_point(params: SystemParameters, delay: float,
                t_end: float = 600.0, dt: float = 0.02) -> dict:
    """Integrate the delayed system and summarise its oscillation."""
    control = jrj_from_parameters(params)
    system = DelayedSystem(control, params, delay=float(delay))
    trajectory = system.solve(q0=0.0, rate0=0.5 * params.mu, t_end=t_end,
                              dt=dt)
    summary = measure_oscillation(trajectory)
    return {
        "delay": float(summary.delay),
        "sustained": bool(summary.sustained),
        "queue_amplitude": float(summary.queue_amplitude),
        "rate_amplitude": float(summary.rate_amplitude),
        "period": float(summary.period),
        "mean_queue": float(summary.mean_queue),
    }


def ensemble_point(params: SystemParameters, seed: int, t_end: float = 60.0,
                   n_paths: int = 500, dt: float = 0.02,
                   retention: str = "full",
                   memmap_dir: Optional[str] = None) -> dict:
    """Run a Langevin ensemble and report final-time queue statistics.

    ``retention="moments"`` streams per-time accumulators instead of the
    full path array (final-time statistics stay exact); ``"none"`` reads
    the mean/std from the streamed moments at the final time.
    """
    from ..stochastic.ensemble import run_ensemble

    ensemble = run_ensemble(jrj_from_parameters(params), params, q0=0.0,
                            rate0=0.5 * params.mu, t_end=t_end, dt=dt,
                            n_paths=n_paths, seed=seed, retention=retention,
                            memmap_dir=memmap_dir)
    if retention == "none":
        mean_queue = float(ensemble.mean_queue_series[-1])
        std_queue = float(ensemble.std_queue_series[-1])
    else:
        samples = ensemble.final_queue_samples()
        mean_queue = float(np.mean(samples))
        std_queue = float(np.std(samples))
    return _with_health({
        "mean_queue": mean_queue,
        "std_queue": std_queue,
        "overflow_probability":
            float(ensemble.overflow_probability(2.0 * params.q_target)),
    }, ensemble.health)


def fairness_point(params: SystemParameters, n_sources: int = 4,
                   t_end: float = 700.0) -> dict:
    """Multi-source fairness metrics for *n_sources* identical sources."""
    scenario_params, sources = homogeneous_sources_scenario(
        n_sources=n_sources, mu=params.mu, q_target=params.q_target,
        c0=params.c0, c1=params.c1)
    trajectory = MultiSourceModel(sources, scenario_params).solve(
        t_end=t_end, dt=0.05)
    report = fairness_report(trajectory, sources)
    return {
        "n_sources": int(n_sources),
        "jain_index": float(report.jain_index),
        "rows": report.rows(),
    }


def multihop_point(extra_hops: int = 2, duration: float = 300.0,
                   service_rate: float = 10.0, health: str = "") -> dict:
    """Parking-lot multihop unfairness metrics (no continuous parameters)."""
    config = parking_lot_scenario(n_extra_hops=extra_hops,
                                  service_rate=service_rate)
    result = MultiHopSimulator(config, health=health).run(duration=duration)
    return _with_health({
        "extra_hops": int(extra_hops),
        "long_to_short_ratio": float(result.long_to_short_ratio()),
        "jain_index": float(result.fairness_index()),
        "throughput_by_hops": [
            {"route": name, "hops": int(hops), "throughput": float(tp)}
            for hops, name, tp in result.throughput_by_hop_count()
        ],
    }, result.health)


def packet_point(seed: int = 0, n_sources: int = 2, duration: float = 200.0,
                 service_rate: float = 10.0) -> dict:
    """Packet-level DES run with JRJ rate sources; per-source throughput."""
    config = packet_level_jrj_scenario(n_sources=n_sources,
                                       service_rate=service_rate,
                                       seed=int(seed))
    result = Simulator(config).run(duration=duration)
    return {
        "throughputs": [float(tp) for tp in result.throughput_list()],
        "mean_queue": float(result.mean_queue),
    }


def des_scenario_point(scenario: str, duration: float = 120.0,
                       seed: Optional[int] = None, engine: str = "fast",
                       retention: str = "full",
                       memmap_dir: Optional[str] = None,
                       health: str = "",
                       **scenario_kwargs) -> dict:
    """Run one registered DES scenario and report its headline metrics.

    *scenario* names an entry of :mod:`repro.queueing.scenarios`; extra
    keyword arguments are forwarded to its builder.  A ``seed`` (derived
    per job by the matrix layer) overrides the builder's default seed.
    ``retention`` selects the trace data plane's history policy (see
    :mod:`repro.dataplane`); queue averages are reported as NaN under
    ``"none"``, which keeps only counters.  ``health`` selects the
    numerical health policy for the run; non-empty report logs ride in
    the value under ``"health"``.
    """
    spec = get_scenario(scenario)
    if seed is not None:
        scenario_kwargs["seed"] = int(seed)
    config = spec.build(**scenario_kwargs)

    if spec.kind == "multihop":
        result = MultiHopSimulator(config, engine=engine,
                                   retention=retention,
                                   memmap_dir=memmap_dir,
                                   health=health).run(duration)
        throughputs = list(result.throughputs.values())
        return _with_health({
            "scenario": scenario,
            "kind": spec.kind,
            "jain_index": float(result.fairness_index()),
            "total_throughput": float(sum(throughputs)),
            "total_losses": int(sum(result.losses.values())),
            "max_node_mean_queue":
                float(max(result.node_mean_queue.values())),
            "events_executed": int(result.events_executed),
        }, result.health)

    result = Simulator(config, engine=engine, retention=retention,
                       memmap_dir=memmap_dir, health=health).run(duration)
    mean_queue = (float("nan") if retention == "none"
                  else float(result.mean_queue))
    return _with_health({
        "scenario": scenario,
        "kind": spec.kind,
        "jain_index": float(result.fairness_index()),
        "utilization": float(result.utilization()),
        "mean_queue": mean_queue,
        "total_losses": int(result.total_losses),
        "events_executed": int(result.events_executed),
    }, result.health)


def stationary_point(params: SystemParameters, nq: int = 48, nv: int = 36,
                     q_max: float = 30.0, v_span: float = 1.2,
                     dt: Optional[float] = None, method: str = "splitting",
                     backend: Optional[str] = None,
                     delay: float = 0.0) -> dict:
    """Solve the stationary Fokker-Planck density directly; report moments."""
    grid = GridParameters(q_max=q_max, nq=nq, v_min=-v_span, v_max=v_span,
                          nv=nv)
    density = solve_stationary(params, grid_params=grid, dt=dt, method=method,
                               backend=backend, delay=delay)
    estimate = density.estimate
    return _with_health({
        "mean_queue": float(estimate.mean_queue),
        "std_queue": float(estimate.std_queue),
        "mean_growth_rate": float(estimate.mean_growth_rate),
        "std_growth_rate": float(estimate.std_growth_rate),
        "residual": float(estimate.residual),
        "iterations": int(estimate.iterations),
        "method": str(estimate.method),
        "backend": str(estimate.backend),
        "dt": float(estimate.dt),
    }, density.health)


def design_chunk_point(params: SystemParameters,
                       c0_values: Optional[List[float]] = None,
                       c1_values: Optional[List[float]] = None,
                       q_target: Optional[float] = None,
                       mu: Optional[float] = None,
                       t_end: float = 150.0, dt: float = 0.1,
                       top_k: int = 5) -> dict:
    """Score one ``c0 × c1`` gain chunk at a fixed ``(q_target, mu)`` point.

    The chunk's cross product is expanded row-major (``c0`` slowest, the
    :func:`~repro.runner.grid.expand_grid` order) and scored as one batched
    characteristic run through
    :func:`~repro.design.objectives.score_gain_grid`; the ``design-gain-grid``
    matrix fans one job per ``(q_target, mu)`` pair.
    """
    c0_list = [params.c0] if c0_values is None else [float(v)
                                                    for v in c0_values]
    c1_list = [params.c1] if c1_values is None else [float(v)
                                                    for v in c1_values]
    target = params.q_target if q_target is None else float(q_target)
    service = params.mu if mu is None else float(mu)
    c0 = np.repeat(c0_list, len(c1_list))
    c1 = np.tile(c1_list, len(c0_list))
    scores = score_gain_grid(params, c0, c1,
                             np.full(c0.size, target),
                             np.full(c0.size, service),
                             t_end=t_end, dt=dt)
    ranking = scores.ranking()[:max(int(top_k), 1)]
    top = [scores.point(int(index)) for index in ranking]
    return {
        "n_points": int(scores.size),
        "q_target": float(target),
        "mu": float(service),
        "best_score": float(top[0].score),
        "top": [
            {
                "c0": point.c0,
                "c1": point.c1,
                "score": point.score,
                "oscillation_amplitude": point.oscillation_amplitude,
                "relaxation_time": point.relaxation_time,
                "queue_error": point.queue_error,
                "unfairness": point.unfairness,
            }
            for point in top
        ],
    }


def crossval_point(params: SystemParameters, n_sources: int = 1,
                   duration: float = 2000.0, t_end: float = 150.0,
                   nq: int = 100, nv: int = 70,
                   seed: int = 11) -> dict:
    """DES-vs-FP cross-validation metrics for one matched configuration."""
    report = cross_validate(params, n_sources=n_sources, duration=duration,
                            t_end=t_end, nq=nq, nv=nv, seed=int(seed))
    return report.to_dict()


# ---------------------------------------------------------------------------
# Named matrices for ``repro run``.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MatrixDefinition:
    """A named, CLI-runnable job matrix.

    Builders take ``(params, seed, t_end)``; those with
    ``supports_retention=True`` additionally accept ``retention=`` and
    ``memmap_dir=`` keywords threading the trace data plane's history
    policy into every job (``repro run --retention/--memmap-dir``).
    Builders with ``supports_health=True`` additionally accept a
    ``health=`` keyword that arms the numerical-health monitor inside
    every job (``repro run --health``); matrices whose jobs carry
    :class:`~repro.config.SystemParameters` thread the policy through
    ``params.health`` instead.
    """

    name: str
    description: str
    build: Callable[..., List[JobSpec]]
    supports_retention: bool = False
    supports_health: bool = False


def _dataplane_fixed(fixed: Dict[str, object], retention: str,
                     memmap_dir: Optional[str],
                     health: str = "") -> Dict[str, object]:
    """Merge non-default data-plane knobs into a builder's fixed overrides.

    Defaults are *omitted* rather than spelled out so the job content hash
    -- and therefore the result cache key -- of a default-configured
    campaign is unchanged from before these knobs existed.
    """
    if retention != "full":
        fixed["retention"] = str(retention)
    if memmap_dir is not None:
        fixed["memmap_dir"] = str(memmap_dir)
    if health:
        fixed["health"] = str(health)
    return fixed


def _density_grid(params: SystemParameters, seed: Optional[int],
                  t_end: Optional[float]) -> List[JobSpec]:
    return build_matrix(
        density_point, params,
        axes={"sigma": [0.2, 0.5, 0.8], "c1": [0.1, 0.2, 0.4, 0.8]},
        fixed={"t_end": t_end if t_end is not None else 60.0,
               "nq": 50, "nv": 40},
        master_seed=seed)


def _fp2d_grid(params: SystemParameters, seed: Optional[int],
               t_end: Optional[float]) -> List[JobSpec]:
    # The stepper axis updates SystemParameters.stepper (it is a parameter
    # field), so each point's content-addressed cache key distinguishes the
    # marching schemes; sigma spans the diffusion-light and diffusion-heavy
    # regimes where the axis and ADI steppers respectively win (see
    # docs/performance.md).
    return build_matrix(
        density_point, params,
        axes={"stepper": ["axis", "adi"], "sigma": [0.5, 2.0]},
        fixed={"t_end": t_end if t_end is not None else 40.0,
               "nq": 160, "nv": 96},
        master_seed=seed)


def _delay_grid(params: SystemParameters, seed: Optional[int],
                t_end: Optional[float]) -> List[JobSpec]:
    return build_matrix(
        delay_point, params,
        axes={"delay": [0.0, 1.0, 2.0, 4.0], "c1": [0.1, 0.2, 0.4]},
        fixed={"t_end": t_end if t_end is not None else 400.0, "dt": 0.05},
        master_seed=seed)


def _ensemble_grid(params: SystemParameters, seed: Optional[int],
                   t_end: Optional[float], retention: str = "full",
                   memmap_dir: Optional[str] = None) -> List[JobSpec]:
    return build_matrix(
        ensemble_point, params,
        axes={"sigma": [0.2, 0.4, 0.6, 0.8], "c0": [0.025, 0.05, 0.1]},
        fixed=_dataplane_fixed(
            {"t_end": t_end if t_end is not None else 40.0,
             "n_paths": 400},
            retention, memmap_dir),
        master_seed=seed if seed is not None else 1991)


def _theorem1_grid(params: SystemParameters, seed: Optional[int],
                   t_end: Optional[float]) -> List[JobSpec]:
    # One batched job per c0 chunk: each job integrates its whole c1 row as
    # a single vectorized characteristic run instead of one process task per
    # grid point.  Verdicts are identical to the per-point form.
    c0_values = [0.025, 0.05, 0.1, 0.2]
    c1_values = (0.1, 0.2, 0.4)
    horizon = t_end if t_end is not None else 400.0
    # Override values are tuples, not lists, so the frozen JobSpec stays
    # hashable; the canonical-JSON hash treats both identically.
    return [
        JobSpec(theorem1_batch_point, params=params,
                overrides={"c0_values": (c0,), "c1_values": c1_values,
                           "t_end": horizon},
                label=f"c0={c0:g}, c1 in {list(c1_values)} (batched)")
        for c0 in c0_values
    ]


def _des_dumbbell_grid(params: SystemParameters, seed: Optional[int],
                       t_end: Optional[float], retention: str = "full",
                       memmap_dir: Optional[str] = None,
                       health: str = "") -> List[JobSpec]:
    return build_matrix(
        des_scenario_point, None,
        axes={"n_sources": [8, 32, 64]},
        fixed=_dataplane_fixed(
            {"scenario": "dumbbell",
             "duration": t_end if t_end is not None else 60.0},
            retention, memmap_dir, health),
        master_seed=seed)


def _des_parking_lot_grid(params: SystemParameters, seed: Optional[int],
                          t_end: Optional[float], retention: str = "full",
                          memmap_dir: Optional[str] = None,
                          health: str = "") -> List[JobSpec]:
    return build_matrix(
        des_scenario_point, None,
        axes={"n_extra_hops": [1, 2, 4],
              "scheme": ["jacobson", "decbit"]},
        fixed=_dataplane_fixed(
            {"scenario": "parking-lot",
             "duration": t_end if t_end is not None else 200.0},
            retention, memmap_dir, health),
        master_seed=seed)


def _des_chain_grid(params: SystemParameters, seed: Optional[int],
                    t_end: Optional[float], retention: str = "full",
                    memmap_dir: Optional[str] = None,
                    health: str = "") -> List[JobSpec]:
    return build_matrix(
        des_scenario_point, None,
        axes={"n_hops": [2, 4, 8]},
        fixed=_dataplane_fixed(
            {"scenario": "chain",
             "duration": t_end if t_end is not None else 200.0},
            retention, memmap_dir, health),
        master_seed=seed)


def _des_mesh_grid(params: SystemParameters, seed: Optional[int],
                   t_end: Optional[float], retention: str = "full",
                   memmap_dir: Optional[str] = None,
                   health: str = "") -> List[JobSpec]:
    return build_matrix(
        des_scenario_point, None,
        axes={"n_routes": [6, 12], "max_hops": [2, 4]},
        fixed=_dataplane_fixed(
            {"scenario": "mesh", "n_nodes": 8,
             "duration": t_end if t_end is not None else 150.0},
            retention, memmap_dir, health),
        master_seed=seed)


def _design_gain_grid(params: SystemParameters, seed: Optional[int],
                      t_end: Optional[float]) -> List[JobSpec]:
    # One batched job per (q_target, mu) operating point; each job scores
    # its whole c0 x c1 gain chunk in a single vectorized characteristic
    # run.  Override values are tuples so the frozen JobSpec stays hashable.
    axes = default_axes(params, n_c0=10, n_c1=10, n_q_target=4, n_mu=4)
    c0_values = tuple(float(value) for value in axes["c0_values"])
    c1_values = tuple(float(value) for value in axes["c1_values"])
    horizon = t_end if t_end is not None else 150.0
    return [
        JobSpec(design_chunk_point, params=params,
                overrides={"c0_values": c0_values, "c1_values": c1_values,
                           "q_target": float(q_target), "mu": float(mu),
                           "t_end": horizon},
                label=(f"q_target={q_target:g}, mu={mu:g} "
                       f"({len(c0_values) * len(c1_values)} gains, batched)"))
        for q_target in axes["q_target_values"]
        for mu in axes["mu_values"]
    ]


def _des_crossval_grid(params: SystemParameters, seed: Optional[int],
                       t_end: Optional[float]) -> List[JobSpec]:
    return build_matrix(
        crossval_point, params,
        axes={"sigma": [0.3, 0.5], "n_sources": [1, 4]},
        fixed={"duration": 2000.0,
               "t_end": t_end if t_end is not None else 150.0,
               "nq": 100, "nv": 70},
        master_seed=seed if seed is not None else 1991)


_MATRICES: Dict[str, MatrixDefinition] = {
    "density-grid": MatrixDefinition(
        "density-grid",
        "Fokker-Planck final moments over a sigma x c1 grid (12 jobs)",
        _density_grid),
    "fp2d-steppers": MatrixDefinition(
        "fp2d-steppers",
        "axis-vs-ADI FP moments over stepper x sigma at nq=160 (4 jobs)",
        _fp2d_grid),
    "delay-grid": MatrixDefinition(
        "delay-grid",
        "delayed-feedback oscillation metrics over delay x c1 (12 jobs)",
        _delay_grid),
    "ensemble-grid": MatrixDefinition(
        "ensemble-grid",
        "Langevin ensemble statistics over sigma x c0 (12 jobs, seeded)",
        _ensemble_grid, supports_retention=True),
    "theorem1-grid": MatrixDefinition(
        "theorem1-grid",
        "Theorem 1 convergence over c0 x c1 (4 batched jobs, 12 points)",
        _theorem1_grid),
    "des-dumbbell": MatrixDefinition(
        "des-dumbbell",
        "packet-level dumbbell scaling over n_sources (3 jobs, seeded)",
        _des_dumbbell_grid, supports_retention=True, supports_health=True),
    "des-parking-lot": MatrixDefinition(
        "des-parking-lot",
        "parking-lot unfairness over hops x scheme (6 jobs, seeded)",
        _des_parking_lot_grid, supports_retention=True, supports_health=True),
    "des-chain": MatrixDefinition(
        "des-chain",
        "N-hop chain with cross traffic over n_hops (3 jobs, seeded)",
        _des_chain_grid, supports_retention=True, supports_health=True),
    "des-mesh": MatrixDefinition(
        "des-mesh",
        "random-mesh DES over n_routes x max_hops (4 jobs, seeded)",
        _des_mesh_grid, supports_retention=True, supports_health=True),
    "des-crossval": MatrixDefinition(
        "des-crossval",
        "DES-vs-FP agreement over sigma x n_sources (4 jobs, seeded)",
        _des_crossval_grid),
    "design-gain-grid": MatrixDefinition(
        "design-gain-grid",
        "gain-design scores over q_target x mu (16 batched jobs, 1600 points)",
        _design_gain_grid),
}


def available_matrices() -> List[MatrixDefinition]:
    """All registered matrices, sorted by name."""
    return [_MATRICES[name] for name in sorted(_MATRICES)]


def get_matrix(name: str) -> MatrixDefinition:
    """Look up a matrix definition by name."""
    if name not in _MATRICES:
        known = ", ".join(sorted(_MATRICES))
        raise ConfigurationError(
            f"unknown experiment matrix {name!r} (available: {known})")
    return _MATRICES[name]
