"""Deterministic fault injection for the job executor (chaos harness).

Long campaigns die in boring ways: a worker is OOM-killed, a job wedges
past its deadline, a cache entry is half-written when the machine loses
power, a journal's final record is truncated.  Each recovery path in
:mod:`repro.runner.executor` exists to absorb exactly one of those deaths
-- and each must therefore be *exercisable on demand*, reproducibly, in a
unit test.  This module provides that: a :class:`FaultPlan` of seeded
chaos hooks the executor threads into every worker-side job execution,
plus filesystem helpers that damage cache entries and journals the same
way a crash would.

Determinism is the design constraint.  A fault never depends on wall
clock, scheduling order or process identity; it is keyed purely on
``(plan seed, fault kind, job key, attempt number)``.  Running the same
plan against the same matrix therefore injects the same faults whether
the matrix executes serially, across 2 workers or across 32 -- which is
what makes the differential gate testable: *any* fault schedule plus
retries must yield values bit-identical to a fault-free serial run.

Usage::

    from repro.runner import FaultPlan, run_jobs

    plan = FaultPlan(seed=7, transient_every=4)   # ~1 in 4 jobs raises
    result = run_jobs(jobs, n_jobs=4, retries=2, faults=plan)
    assert not result.failures                    # retries absorb the chaos

The ``REPRO_FAULTS`` environment variable (JSON of the plan fields) arms
the same hooks through the CLI, which is how the CI chaos job injects
worker kills into a real ``repro run`` campaign.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass
from typing import Optional, Tuple

from ..exceptions import ConfigurationError, TransientJobError, WorkerCrashError
from ..health import arm_numerical_fault, reset_numerical_faults
from .spec import JobSpec

__all__ = [
    "FaultPlan",
    "InjectedTransientError",
    "FAULTS_ENV_VAR",
    "corrupt_cache_entry",
    "truncate_journal",
]

#: Environment variable carrying a JSON-encoded :class:`FaultPlan`.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit code used by the kill-worker hook; only meaningful in tests.
_KILL_EXIT_CODE = 87


class InjectedTransientError(TransientJobError):
    """A transient failure raised by the fault-injection harness."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Each hook selects jobs by hashing ``(kind, seed, job key)`` -- roughly
    one job in ``every`` is hit, independent of submission or completion
    order -- and arms only while the job's 0-based attempt number is below
    the hook's ``*_attempts`` budget, so a retried job eventually runs
    clean and the differential gate (chaos + retries == fault-free serial)
    stays meaningful.

    Attributes
    ----------
    seed:
        Salt for the selection hashes; two plans with different seeds hit
        different (but equally reproducible) job subsets.
    kill_every:
        Kill the worker process (``os._exit``) before running roughly one
        job in ``kill_every`` -- the executor sees ``BrokenProcessPool``.
        In-process (serial) execution degrades to raising
        :class:`~repro.exceptions.WorkerCrashError` instead, so serial
        campaigns exercise the same classification path.
    kill_attempts:
        Number of leading attempts the kill hook stays armed for.
    transient_every / transient_attempts:
        Raise :class:`InjectedTransientError` inside the job.
    sleep_every / sleep_seconds / sleep_attempts:
        Sleep before running the job, long enough to trip the executor's
        per-job ``timeout=`` watchdog.
    nan_density_every / nan_density_attempts:
        Arm the ``nan-density`` numerical fault for the selected jobs: the
        next Fokker-Planck solve in the job poisons one density cell with
        NaN, so the finiteness monitor (and its repair/abort policies) can
        be exercised end to end.  Unlike the process-level hooks this is a
        *deterministic numerical* fault: under ``--health=strict`` it
        surfaces as a typed, non-retryable
        :class:`~repro.exceptions.NonFiniteStateError`.
    negative_queue_every / negative_queue_attempts:
        Arm the ``negative-queue`` numerical fault: the next DES run in
        the job records an impossible negative queue-length sample halfway
        through the horizon, exercising the queue-invariant monitor.
    match_labels:
        When non-empty, restrict every hook to jobs whose spec label is in
        this tuple (exact-match chaos for targeted tests).
    """

    seed: int = 0
    kill_every: Optional[int] = None
    kill_attempts: int = 1
    transient_every: Optional[int] = None
    transient_attempts: int = 1
    sleep_every: Optional[int] = None
    sleep_seconds: float = 0.0
    sleep_attempts: int = 1
    nan_density_every: Optional[int] = None
    nan_density_attempts: int = 1
    negative_queue_every: Optional[int] = None
    negative_queue_attempts: int = 1
    match_labels: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("kill_every", "transient_every", "sleep_every",
                     "nan_density_every", "negative_queue_every"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(f"FaultPlan.{name} must be >= 1")
        if not isinstance(self.match_labels, tuple):
            object.__setattr__(self, "match_labels",
                               tuple(self.match_labels))

    # -- selection ---------------------------------------------------------

    def _selects(self, kind: str, every: Optional[int],
                 spec: JobSpec) -> bool:
        if every is None:
            return False
        if self.match_labels and spec.label not in self.match_labels:
            return False
        digest = hashlib.sha256(
            f"{kind}:{self.seed}:{spec.key}".encode("utf-8")).hexdigest()
        return int(digest[:8], 16) % every == 0

    def kills(self, spec: JobSpec, attempt: int) -> bool:
        """Whether the kill hook fires for *spec* on 0-based *attempt*."""
        return attempt < self.kill_attempts \
            and self._selects("kill", self.kill_every, spec)

    def raises_transient(self, spec: JobSpec, attempt: int) -> bool:
        return attempt < self.transient_attempts \
            and self._selects("transient", self.transient_every, spec)

    def sleeps(self, spec: JobSpec, attempt: int) -> bool:
        return attempt < self.sleep_attempts \
            and self._selects("sleep", self.sleep_every, spec)

    def poisons_density(self, spec: JobSpec, attempt: int) -> bool:
        return attempt < self.nan_density_attempts \
            and self._selects("nan-density", self.nan_density_every, spec)

    def poisons_queue(self, spec: JobSpec, attempt: int) -> bool:
        return attempt < self.negative_queue_attempts \
            and self._selects("negative-queue", self.negative_queue_every,
                              spec)

    # -- the worker-side hook ----------------------------------------------

    def apply(self, spec: JobSpec, attempt: int) -> None:
        """Inject this plan's faults for *spec* on 0-based *attempt*.

        Called by the executor immediately before the job function runs,
        in whichever process executes the job.  Numerical faults are
        (re-)armed first -- the registry is cleared each time so a job
        that is *not* selected never inherits a poison left over from an
        earlier job in the same worker process.  Then sleeps (so a
        sleeping job can still be killed by the watchdog), then kills,
        then in-job transient raises.
        """
        reset_numerical_faults()
        if self.poisons_density(spec, attempt):
            arm_numerical_fault("nan-density")
        if self.poisons_queue(spec, attempt):
            arm_numerical_fault("negative-queue")
        if self.sleeps(spec, attempt) and self.sleep_seconds > 0.0:
            time.sleep(self.sleep_seconds)
        if self.kills(spec, attempt):
            if multiprocessing.parent_process() is not None:
                # A worker process: die the way SIGKILL/OOM would, without
                # running any interpreter cleanup.
                os._exit(_KILL_EXIT_CODE)
            raise WorkerCrashError(
                f"injected worker kill for job {spec.label!r} "
                f"(attempt {attempt}, in-process mode)")
        if self.raises_transient(spec, attempt):
            raise InjectedTransientError(
                f"injected transient fault for job {spec.label!r} "
                f"(attempt {attempt})")

    # -- environment plumbing ----------------------------------------------

    def to_environment(self) -> str:
        """The JSON form suitable for the ``REPRO_FAULTS`` variable."""
        payload = {name: value for name, value in asdict(self).items()
                   if value not in (None, ()) or name == "seed"}
        payload["match_labels"] = list(self.match_labels)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_environment(cls) -> Optional["FaultPlan"]:
        """The plan armed via ``REPRO_FAULTS``, or ``None`` when unset."""
        raw = os.environ.get(FAULTS_ENV_VAR)
        if not raw:
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("fault plan must be a JSON object")
            payload["match_labels"] = tuple(payload.get("match_labels", ()))
            return cls(**payload)
        except (ValueError, TypeError) as error:
            raise ConfigurationError(
                f"malformed {FAULTS_ENV_VAR} value {raw!r}: {error}") \
                from error


# ---------------------------------------------------------------------------
# Filesystem damage helpers (crash simulation for tests).
# ---------------------------------------------------------------------------

def corrupt_cache_entry(cache, key: str) -> bool:
    """Overwrite the payload of cache entry *key* with garbage bytes.

    Simulates a torn write (power loss mid-write, bit rot).  Returns
    ``True`` when an entry existed and was damaged.
    """
    entry = cache._entry_dir(key)
    if not entry.is_dir():
        return False
    damaged = False
    for child in sorted(entry.iterdir()):
        if child.is_file() and child.name != "meta.json":
            child.write_bytes(b"\x00corrupt\x00")
            damaged = True
    if not damaged:
        # Entry with metadata only: damage the metadata itself.
        (entry / "meta.json").write_text("{torn", encoding="utf-8")
        damaged = True
    return damaged


def truncate_journal(path, drop_bytes: int = 1) -> int:
    """Chop *drop_bytes* off the end of the journal file at *path*.

    Simulates a crash mid-append: the final record becomes a partial line
    that :class:`~repro.runner.journal.RunJournal` must detect and drop on
    replay.  Returns the resulting file size.
    """
    path = os.fspath(path)
    size = max(0, os.path.getsize(path) - int(drop_bytes))
    with open(path, "rb+") as handle:
        handle.truncate(size)
    return size
