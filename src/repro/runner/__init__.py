"""Parallel experiment orchestration with a content-addressed result cache.

This subsystem turns any experiment of the reproduction into a declarative,
picklable job and executes whole matrices of them with worker-process
parallelism, deterministic seeding and on-disk result reuse:

* :mod:`repro.runner.spec` -- :class:`JobSpec` / :class:`ExperimentSpec`,
  the *(callable, parameters, overrides, seed)* description of one
  evaluation, with a stable SHA-256 content hash;
* :mod:`repro.runner.grid` -- :func:`expand_grid` / :func:`build_matrix`,
  cartesian sweep construction with spawn-key-derived per-job seeds;
* :mod:`repro.runner.executor` -- :func:`run_jobs`, the supervised
  serial/parallel executor with failure isolation, retries with
  deterministic backoff (:class:`RetryPolicy`), per-job timeouts, pool
  respawn on worker death, and progress reporting;
* :mod:`repro.runner.cache` -- :class:`ResultCache`, the content-addressed
  JSON + npz (+ pickle fallback) store under ``~/.cache/repro`` with
  fsync'd atomic writes and a ``corrupt/`` quarantine;
* :mod:`repro.runner.journal` -- :class:`RunJournal`, the crash-safe
  append-only outcome journal behind checkpoint/resume
  (``run_jobs(..., journal=...)`` / ``repro run --resume``);
* :mod:`repro.runner.mapreduce` -- :class:`MapReduceSpec`, sharded
  map-reduce aggregation (``run_jobs(..., reduce=...)``): successful job
  values fold into one running state in submission order, so a campaign's
  working set is the aggregate, not every payload;
* :mod:`repro.runner.faults` -- :class:`FaultPlan`, deterministic fault
  injection (worker kills, transient raises, timeout sleeps) for testing
  every recovery path above;
* :mod:`repro.runner.experiments` -- importable job callables and the named
  matrices behind ``repro run``.

Quick start::

    from repro import SystemParameters
    from repro.runner import ResultCache, build_matrix, run_jobs
    from repro.runner.experiments import density_point

    jobs = build_matrix(density_point, SystemParameters(),
                        axes={"sigma": [0.2, 0.5], "c1": [0.1, 0.2, 0.4]},
                        fixed={"t_end": 40.0})
    result = run_jobs(jobs, n_jobs=4, cache=ResultCache())
    print(result.summary())          # e.g. "6 jobs: 0 cache hits, ..."
    for outcome in result:
        print(outcome.spec.label, outcome.value)
"""

from .cache import CacheEntryInfo, ResultCache, default_cache_dir
from .executor import (
    JobOutcome,
    MatrixResult,
    RetryPolicy,
    print_progress,
    run_jobs,
)
from .mapreduce import MapReduceSpec
from .faults import FaultPlan, InjectedTransientError, corrupt_cache_entry, \
    truncate_journal
from .grid import build_matrix, expand_grid
from .hashing import canonical_json, content_hash
from .journal import JournalRecord, RunJournal
from .spec import ExperimentSpec, JobSpec, function_reference

__all__ = [
    "JobSpec",
    "ExperimentSpec",
    "function_reference",
    "canonical_json",
    "content_hash",
    "expand_grid",
    "build_matrix",
    "run_jobs",
    "JobOutcome",
    "MatrixResult",
    "MapReduceSpec",
    "RetryPolicy",
    "print_progress",
    "ResultCache",
    "CacheEntryInfo",
    "default_cache_dir",
    "RunJournal",
    "JournalRecord",
    "FaultPlan",
    "InjectedTransientError",
    "corrupt_cache_entry",
    "truncate_journal",
]
