"""Content-addressed on-disk result cache.

Layout (under ``~/.cache/repro`` by default, overridable with the
``REPRO_CACHE_DIR`` environment variable or an explicit ``--cache-dir``)::

    <root>/objects/<key[:2]>/<key>/
        meta.json      -- fingerprint, label, encoding, creation time
        result.json    -- JSON-encodable results (possibly with array refs)
        arrays.npz     -- numpy arrays referenced from result.json
        result.pkl     -- pickle fallback for arbitrary Python results

``<key>`` is the SHA-256 content hash of the job fingerprint
(:meth:`repro.runner.JobSpec.key`), so a cache entry is valid for exactly
one logical computation.  Writes are crash-safe: every artifact is
written into a staging directory, flushed and ``fsync``'d, then published
with a single atomic rename.  Reads are defensive: any malformed entry --
truncated JSON, missing artifact, undecodable pickle -- is treated as a
miss and moved to a ``corrupt/`` quarantine (inspectable via ``repro
cache info``), so a corrupted cache degrades to recomputation rather
than to an error while preserving the evidence.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["ResultCache", "default_cache_dir", "CacheEntryInfo"]

_META_NAME = "meta.json"
_JSON_NAME = "result.json"
_NPZ_NAME = "arrays.npz"
_PICKLE_NAME = "result.pkl"

#: Bump when the on-disk format changes; mismatched entries read as misses.
_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """The default cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


class _Unencodable(Exception):
    """Internal: the value cannot use the JSON(+npz) encoding."""


def _fsync_handle(handle) -> None:
    """Flush *handle* and force its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (persists renames within it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _encode_jsonable(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Encode *value* for JSON storage, spilling ndarrays into *arrays*."""
    if isinstance(value, np.ndarray):
        token = f"a{len(arrays)}"
        arrays[token] = value
        return {"__ndarray__": token}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise _Unencodable("non-string dictionary key")
        if "__ndarray__" in value or "__tuple__" in value:
            # The user's keys collide with the codec's sentinels; pickling
            # the whole result is lossless, mis-decoding it would not be.
            raise _Unencodable("dictionary key collides with codec sentinel")
        return {key: _encode_jsonable(item, arrays)
                for key, item in value.items()}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_jsonable(item, arrays)
                              for item in value]}
    if isinstance(value, list):
        return [_encode_jsonable(item, arrays) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise _Unencodable(f"type {type(value).__name__}")


def _decode_jsonable(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__ndarray__"}:
            return arrays[value["__ndarray__"]]
        if set(value) == {"__tuple__"}:
            return tuple(_decode_jsonable(item, arrays)
                         for item in value["__tuple__"])
        return {key: _decode_jsonable(item, arrays)
                for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_jsonable(item, arrays) for item in value]
    return value


@dataclass(frozen=True)
class CacheEntryInfo:
    """Metadata summary of one cache entry (for ``repro cache list``)."""

    key: str
    label: str
    function: str
    encoding: str
    created: float
    size_bytes: int


class ResultCache:
    """Content-addressed result store keyed by job fingerprint hashes."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root).expanduser() if root is not None \
            else default_cache_dir()
        self._objects = self.root / "objects"

    # -- paths -------------------------------------------------------------

    def _entry_dir(self, key: str) -> Path:
        return self._objects / key[:2] / key

    def __contains__(self, key: str) -> bool:
        return (self._entry_dir(key) / _META_NAME).is_file()

    # -- write -------------------------------------------------------------

    def put(self, key: str, value: Any,
            meta: Optional[Dict[str, Any]] = None) -> None:
        """Store *value* under *key*, atomically replacing any entry."""
        entry = self._entry_dir(key)
        staging = entry.with_name(entry.name + f".tmp{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)

        arrays: Dict[str, np.ndarray] = {}
        try:
            jsonable = _encode_jsonable(value, arrays)
        except _Unencodable:
            encoding = "pickle"
            with open(staging / _PICKLE_NAME, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                _fsync_handle(handle)
        else:
            encoding = "json+npz" if arrays else "json"
            with open(staging / _JSON_NAME, "w", encoding="utf-8") as handle:
                json.dump(jsonable, handle)
                _fsync_handle(handle)
            if arrays:
                buffer = io.BytesIO()
                np.savez_compressed(buffer, **arrays)
                with open(staging / _NPZ_NAME, "wb") as handle:
                    handle.write(buffer.getvalue())
                    _fsync_handle(handle)

        metadata = {
            "format": _FORMAT_VERSION,
            "key": key,
            "encoding": encoding,
            "created": time.time(),
        }
        metadata.update(meta or {})
        with open(staging / _META_NAME, "w", encoding="utf-8") as handle:
            json.dump(metadata, handle, indent=1, default=str)
            _fsync_handle(handle)

        if entry.exists():
            shutil.rmtree(entry)
        try:
            os.replace(staging, entry)
        except OSError:
            # Another process published this key between our rmtree and
            # replace; content-addressing makes the entries interchangeable,
            # so the first writer wins and our staging copy is discarded.
            shutil.rmtree(staging, ignore_errors=True)
            if not (entry / _META_NAME).is_file():
                raise
        # A crash after the rename must not lose the rename itself.
        _fsync_dir(entry.parent)

    # -- read --------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; malformed entries are quarantined as misses."""
        entry = self._entry_dir(key)
        meta_path = entry / _META_NAME
        if not meta_path.is_file():
            return False, None
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                metadata = json.load(handle)
            if metadata.get("format") != _FORMAT_VERSION \
                    or metadata.get("key") != key:
                raise ValueError("cache entry metadata mismatch")
            encoding = metadata.get("encoding")
            if encoding == "pickle":
                with open(entry / _PICKLE_NAME, "rb") as handle:
                    return True, pickle.load(handle)
            if encoding in ("json", "json+npz"):
                with open(entry / _JSON_NAME, "r", encoding="utf-8") as handle:
                    jsonable = json.load(handle)
                arrays: Dict[str, np.ndarray] = {}
                if encoding == "json+npz":
                    with np.load(entry / _NPZ_NAME) as archive:
                        arrays = {name: archive[name]
                                  for name in archive.files}
                return True, _decode_jsonable(jsonable, arrays)
            raise ValueError(f"unknown cache encoding {encoding!r}")
        except Exception:
            # Corrupted or unreadable entry: quarantine it and report a
            # miss, so the caller recomputes instead of failing and the
            # damaged bytes stay inspectable under ``corrupt/``.
            self._quarantine(entry)
            return False, None

    # -- quarantine --------------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupted entries are parked (``<root>/corrupt``)."""
        return self.root / "corrupt"

    def _quarantine(self, entry: Path) -> None:
        target = self.quarantine_dir / entry.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            if target.exists():
                shutil.rmtree(target, ignore_errors=True)
            os.replace(entry, target)
        except OSError:
            # Quarantine is best-effort; never let it block the miss path.
            shutil.rmtree(entry, ignore_errors=True)

    def quarantined_count(self) -> int:
        """Number of corrupted entries parked under ``corrupt/``."""
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for child in self.quarantine_dir.iterdir()
                   if child.is_dir())

    def clear_quarantine(self) -> int:
        """Delete the quarantined entries; returns how many were removed."""
        removed = 0
        if self.quarantine_dir.is_dir():
            for child in list(self.quarantine_dir.iterdir()):
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed

    # -- maintenance -------------------------------------------------------

    def _iter_entry_dirs(self) -> Iterator[Path]:
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.is_dir() and ".tmp" not in entry.name:
                    yield entry

    def entries(self) -> List[CacheEntryInfo]:
        """Metadata for every readable entry (unreadable ones are skipped)."""
        found = []
        for entry in self._iter_entry_dirs():
            try:
                with open(entry / _META_NAME, "r", encoding="utf-8") as handle:
                    metadata = json.load(handle)
                size = sum(child.stat().st_size
                           for child in entry.iterdir() if child.is_file())
                found.append(CacheEntryInfo(
                    key=metadata.get("key", entry.name),
                    label=str(metadata.get("label", "")),
                    function=str(metadata.get("function", "")),
                    encoding=str(metadata.get("encoding", "")),
                    created=float(metadata.get("created", 0.0)),
                    size_bytes=size))
            except Exception:
                continue
        return found

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_entry_dirs())

    def size_bytes(self) -> int:
        """Total size of all cache artifacts in bytes."""
        total = 0
        for entry in self._iter_entry_dirs():
            total += sum(child.stat().st_size
                         for child in entry.iterdir() if child.is_file())
        return total

    def clear(self) -> int:
        """Delete every entry (quarantine included); returns the count."""
        removed = 0
        for entry in list(self._iter_entry_dirs()):
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        return removed + self.clear_quarantine()

    def prune(self, older_than_seconds: float, *,
              now: Optional[float] = None) -> int:
        """Delete entries created more than *older_than_seconds* ago.

        Entries whose metadata is unreadable are pruned as well -- they
        would read as misses anyway.  Returns the number of entries
        removed.  *now* overrides the current time (for tests).
        """
        cutoff = (time.time() if now is None else float(now)) \
            - float(older_than_seconds)
        removed = 0
        for entry in list(self._iter_entry_dirs()):
            try:
                with open(entry / _META_NAME, "r",
                          encoding="utf-8") as handle:
                    created = float(json.load(handle).get("created", 0.0))
            except Exception:
                created = float("-inf")
            if created < cutoff:
                shutil.rmtree(entry, ignore_errors=True)
                removed += 1
        return removed
