"""Declarative, picklable experiment/job specifications.

A :class:`JobSpec` captures one experiment evaluation as the tuple the issue
tracker of every large simulation study converges on: *(callable, parameters,
overrides, seed)*.  The callable must be an importable module-level function
so the spec can cross a process boundary; the remaining fields are plain
data.  From those four ingredients the spec derives a stable content hash
that serves as its identity in the on-disk result cache -- two specs with
the same hash represent the same computation and may share a result.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..config import ParameterDictMixin
from ..exceptions import ConfigurationError
from .hashing import canonical_json, content_hash

__all__ = ["JobSpec", "ExperimentSpec", "function_reference",
           "function_accepts_seed"]


def function_accepts_seed(function: Callable) -> bool:
    """Whether *function* can receive a ``seed=`` keyword argument."""
    try:
        signature = inspect.signature(function)
    except (TypeError, ValueError):
        return False
    return "seed" in signature.parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values())


def function_reference(function: Callable) -> str:
    """Return the stable ``module:qualname`` reference for *function*.

    Rejects lambdas, nested functions and bound methods: those cannot be
    re-imported by name in a worker process, and their identity would not
    survive an interpreter restart, which would poison the content hash.
    """
    if not callable(function):
        raise ConfigurationError(f"job function must be callable, got "
                                 f"{function!r}")
    module = getattr(function, "__module__", None)
    qualname = getattr(function, "__qualname__", None)
    if not module or not qualname:
        raise ConfigurationError(
            f"job function {function!r} has no importable module/qualname")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise ConfigurationError(
            f"job function {module}:{qualname} must be a module-level "
            "function (lambdas and closures cannot be addressed stably "
            "across processes)")
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class JobSpec:
    """One experiment evaluation: ``function(params, **overrides)`` + seed.

    Attributes
    ----------
    function:
        Module-level callable performing the experiment.  It receives the
        parameter object as first positional argument (when ``params`` is not
        ``None``), every override as a keyword argument, and -- if its
        signature accepts one -- the derived ``seed`` keyword.
    params:
        Optional parameter dataclass (any :class:`~repro.config.ParameterDictMixin`
        subclass, typically :class:`~repro.config.SystemParameters`).
    overrides:
        Extra keyword arguments, stored as a sorted tuple of pairs so the
        spec itself stays hashable and order-insensitive.
    seed:
        Optional deterministic seed for stochastic experiments.  Part of the
        content hash: the same experiment under a different seed is a
        different job.
    version:
        Manual cache-busting salt.  Bump it when the *meaning* of the
        function changes so stale cached results are not reused.
    label:
        Human-readable name for progress reports and tables.  Not part of
        the content hash.
    """

    function: Callable
    params: Optional[ParameterDictMixin] = None
    overrides: Tuple[Tuple[str, Any], ...] = ()
    seed: Optional[int] = None
    version: int = 1
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        reference = function_reference(self.function)
        if not isinstance(self.overrides, tuple):
            items = dict(self.overrides)
            object.__setattr__(self, "overrides",
                               tuple(sorted(items.items())))
        else:
            object.__setattr__(self, "overrides",
                               tuple(sorted(self.overrides)))
        # Fail at spec-construction time (not deep inside a worker) if the
        # overrides cannot be canonically hashed.
        canonical_json(dict(self.overrides))
        if not self.label:
            object.__setattr__(self, "label", self.default_label(reference))

    # -- identity ----------------------------------------------------------

    @property
    def function_ref(self) -> str:
        """Stable ``module:qualname`` reference of the job callable."""
        return function_reference(self.function)

    def fingerprint(self) -> Dict[str, Any]:
        """The exact structure that is hashed into the cache key."""
        return {
            "function": self.function_ref,
            "params": None if self.params is None else self.params.to_dict(),
            "overrides": dict(self.overrides),
            "seed": self.seed,
            "version": self.version,
        }

    @property
    def key(self) -> str:
        """Content hash identifying this job in the result cache."""
        return content_hash(self.fingerprint())

    def default_label(self, reference: Optional[str] = None) -> str:
        reference = reference or self.function_ref
        short = reference.rsplit(":", 1)[-1].lstrip("_")
        if not self.overrides:
            return short
        settings = ",".join(f"{name}={value!r}" if isinstance(value, str)
                            else f"{name}={value:g}" if isinstance(value, float)
                            else f"{name}={value}"
                            for name, value in self.overrides)
        return f"{short}({settings})"

    # -- execution ---------------------------------------------------------

    def call_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments the executor passes to the job function."""
        kwargs = dict(self.overrides)
        if self.seed is not None and "seed" not in kwargs \
                and function_accepts_seed(self.function):
            kwargs["seed"] = self.seed
        return kwargs

    def execute(self) -> Any:
        """Run the job in the current process and return its result."""
        kwargs = self.call_kwargs()
        if self.params is None:
            return self.function(**kwargs)
        return self.function(self.params, **kwargs)


def _spec_with(function: Callable, params: Optional[ParameterDictMixin],
               overrides: Optional[Mapping[str, Any]], seed: Optional[int],
               version: int, label: str) -> JobSpec:
    return JobSpec(function=function, params=params,
                   overrides=tuple(sorted((overrides or {}).items())),
                   seed=seed, version=version, label=label)


class ExperimentSpec:
    """A reusable experiment template: callable + base parameters + version.

    Binding concrete overrides and a seed produces a :class:`JobSpec`; the
    grid builder (:func:`repro.runner.build_matrix`) does this in bulk for a
    whole cartesian matrix.
    """

    def __init__(self, function: Callable,
                 params: Optional[ParameterDictMixin] = None,
                 version: int = 1):
        self.function_ref = function_reference(function)
        self.function = function
        self.params = params
        self.version = int(version)

    def job(self, overrides: Optional[Mapping[str, Any]] = None,
            seed: Optional[int] = None,
            params: Optional[ParameterDictMixin] = None,
            label: str = "") -> JobSpec:
        """Bind overrides/seed (and optionally new params) into a JobSpec."""
        return _spec_with(self.function,
                          params if params is not None else self.params,
                          overrides, seed, self.version, label)

    def __repr__(self) -> str:
        return f"ExperimentSpec({self.function_ref}, version={self.version})"
