"""Command-line interface for the reproduction's main experiments.

Installs no extra dependencies and prints the same plain-text tables the
benchmark harness uses, so results can be regenerated without touching
Python::

    python -m repro.cli theorem1
    python -m repro.cli density --sigma 0.5 --t-end 150
    python -m repro.cli delay-sweep --delays 0 2 4 8 --jobs 4
    python -m repro.cli fairness --sources 4
    python -m repro.cli multihop --extra-hops 3
    python -m repro.cli run density-grid --jobs 4
    python -m repro.cli cache info

Each classic sub-command maps onto one experiment family of DESIGN.md.  On
top of those, the :mod:`repro.runner` orchestration layer adds:

* ``repro run <matrix>`` -- execute a named multi-dimensional experiment
  matrix (``repro run --list`` shows the registry) across ``--jobs`` worker
  processes, serving unchanged jobs from the content-addressed result
  cache and reporting the hit/computed/failed counts.  This includes the
  packet-level matrices built on the scenario registry of
  :mod:`repro.queueing.scenarios` (``des-dumbbell``, ``des-parking-lot``,
  ``des-chain``, ``des-mesh``) and ``des-crossval``, the DES-vs-FP
  cross-validation grid;
* ``repro design {stationary,sweep}`` -- the gain-design toolkit: direct
  stationary Fokker-Planck solves (``repro design stationary --sigma 0.5``,
  with ``--check-marching`` cross-checking against the time-marched tail)
  and coarse-to-fine gain sweeps over ``(c0, c1, q_target, mu)`` grids
  (``repro design sweep``), printing ranked gains and the
  oscillation-versus-relaxation Pareto front (see ``docs/design.md``);
* ``repro cache {info,list,clear,prune}`` -- inspect, empty or age out
  that cache (``prune --older-than DAYS`` deletes stale entries; ``info``
  also reports quarantined corrupt entries);
* ``--jobs N``, ``--no-cache`` and ``--cache-dir PATH`` on the experiment
  sub-commands above, which route their evaluations through the same
  runner (``delay-sweep --jobs 4`` runs one worker process per delay);
* ``repro ensemble`` -- Langevin ensemble of the stochastic model with
  final-time queue statistics; together with ``repro run`` and
  ``repro design sweep`` it accepts ``--retention {full,moments,none}``
  and ``--memmap-dir PATH``, selecting the trace data plane's history
  policy (full per-sample history, streamed constant-memory accumulators,
  or counters only -- see ``docs/dataplane.md``);
* fault tolerance for long campaigns (see ``docs/robustness.md``):
  ``--retries N`` re-executes transiently failed jobs with deterministic
  backoff, ``--timeout SECONDS`` kills and retries wedged jobs, and
  ``repro run`` journals every outcome so an interrupted campaign
  continues with ``repro run <matrix> --resume``;
* numerical health monitoring (:mod:`repro.health`): ``--health
  {strict,repair,observe,off}`` on the solver/simulator sub-commands
  selects how run-time invariant violations (non-finite densities, mass
  drift, negative queues, stalled solves) are handled, and ``repro
  health JOURNAL`` replays a campaign journal summarising the recorded
  health reports and repair counts per job.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .analysis import (
    format_key_values,
    format_table,
    render_trajectory_portrait,
)
from .characteristics import verify_theorem1
from .config import GridParameters, SystemParameters
from .core.stepper import available_steppers
from .exceptions import ConfigurationError
from .runner import (
    JobSpec,
    ResultCache,
    RunJournal,
    content_hash,
    default_cache_dir,
    print_progress,
    run_jobs,
)
from .runner.experiments import (
    available_matrices,
    delay_point,
    density_point,
    ensemble_point,
    fairness_point,
    get_matrix,
    multihop_point,
    stationary_point,
    theorem1_point,
)

__all__ = ["main", "build_parser"]


def _system_parameters(args: argparse.Namespace) -> SystemParameters:
    return SystemParameters(mu=args.mu, q_target=args.q_target, c0=args.c0,
                            c1=args.c1, sigma=getattr(args, "sigma", 0.0),
                            health=getattr(args, "health", None) or "",
                            stepper=getattr(args, "stepper", None) or "")


def _add_common_parameters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mu", type=float, default=1.0,
                        help="bottleneck service rate (default 1.0)")
    parser.add_argument("--q-target", type=float, default=10.0,
                        help="target queue length q_hat (default 10)")
    parser.add_argument("--c0", type=float, default=0.05,
                        help="linear increase rate C0 (default 0.05)")
    parser.add_argument("--c1", type=float, default=0.2,
                        help="exponential decrease constant C1 (default 0.2)")


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the job matrix "
                             "(default 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always recompute; do not read or write the "
                             "result cache")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="result-cache directory (default ~/.cache/repro "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-job progress lines to stderr")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry transiently failed jobs (killed worker, "
                             "timeout, broken pool) up to N times with "
                             "deterministic backoff (default 0)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget; exceeded jobs are "
                             "killed and retried (needs --jobs > 1)")


def _add_dataplane_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--retention", choices=["full", "moments", "none"],
                        default="full",
                        help="trace/path history policy: 'full' keeps every "
                             "recorded sample, 'moments' streams constant-"
                             "memory accumulators, 'none' keeps counters "
                             "only (default full; see docs/dataplane.md)")
    parser.add_argument("--memmap-dir", default=None, metavar="PATH",
                        help="spill full-history arrays to memory-mapped "
                             "scratch files under PATH instead of RAM "
                             "(retention=full only)")


def _add_stepper_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stepper", choices=available_steppers(),
                        default=None,
                        help="Fokker-Planck marching scheme: 'axis' is the "
                             "per-axis split (dense Crank-Nicolson "
                             "diffusion), 'adi' the 2-D Peaceman-Rachford "
                             "operator split on the sparse backend path "
                             "(default axis; see docs/performance.md)")


def _add_health_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--health", choices=["strict", "repair", "observe",
                                             "off"],
                        default=None,
                        help="numerical health policy: 'strict' aborts on "
                             "any invariant violation (typed errors), "
                             "'repair' applies logged corrections, "
                             "'observe' records reports only, 'off' runs "
                             "the unmonitored engines bit-identically "
                             "(default: $REPRO_HEALTH or observe; see "
                             "docs/robustness.md)")


def _cache_from(args: argparse.Namespace) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _journal_for(args: argparse.Namespace, matrix: str,
                 jobs: List[JobSpec]) -> Optional[RunJournal]:
    """The campaign journal for ``repro run``: derived path, resume-aware.

    The default path encodes the matrix name plus a digest of the job keys,
    so differently parameterised campaigns of the same matrix journal to
    different files.  Without ``--resume`` any existing journal is
    discarded first -- a fresh campaign must not silently skip work
    journaled by an older one.
    """
    if getattr(args, "no_journal", False):
        if getattr(args, "resume", False):
            raise ConfigurationError(
                "--resume needs the journal; drop --no-journal")
        return None
    if args.journal is not None:
        path = args.journal
    else:
        if getattr(args, "no_cache", False) and not getattr(args, "resume",
                                                            False):
            # The derived journal follows the cache's persistence choice;
            # an explicit --journal or --resume re-enables it.
            return None
        root = args.cache_dir if args.cache_dir else default_cache_dir()
        digest = content_hash(sorted(job.key for job in jobs))[:12]
        path = f"{root}/journals/{matrix}-{digest}.jsonl"
    journal = RunJournal(path)
    if not getattr(args, "resume", False):
        journal.clear()
    return journal


def _run_matrix(jobs: List[JobSpec], args: argparse.Namespace):
    result = run_jobs(jobs, n_jobs=args.jobs, cache=_cache_from(args),
                      progress=print_progress if args.progress else None,
                      retries=getattr(args, "retries", 0),
                      timeout=getattr(args, "timeout", None))
    result.raise_failures()
    return result


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fokker-Planck analysis of dynamic congestion control "
                    "(Mukherjee & Strikwerda, 1991) - experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)

    theorem1 = subparsers.add_parser(
        "theorem1", help="verify Theorem 1 (stability without delay)")
    _add_common_parameters(theorem1)
    _add_runner_options(theorem1)
    theorem1.add_argument("--portrait", action="store_true",
                          help="also print the ASCII phase portrait")

    density = subparsers.add_parser(
        "density", help="solve the Fokker-Planck equation (Equation 14)")
    _add_common_parameters(density)
    _add_runner_options(density)
    _add_health_option(density)
    density.add_argument("--sigma", type=float, default=0.5,
                         help="diffusion coefficient (default 0.5)")
    density.add_argument("--t-end", type=float, default=150.0,
                         help="integration horizon (default 150)")
    _add_stepper_option(density)
    density.add_argument("--nq", type=int, default=120,
                         help="queue grid points (default 120)")
    density.add_argument("--nv", type=int, default=90,
                         help="growth-rate grid points (default 90)")

    sweep = subparsers.add_parser(
        "delay-sweep", help="oscillation amplitude/period versus feedback delay")
    _add_common_parameters(sweep)
    _add_runner_options(sweep)
    sweep.add_argument("--delays", type=float, nargs="+",
                       default=[0.0, 2.0, 4.0, 8.0],
                       help="feedback delays to sweep")
    sweep.add_argument("--t-end", type=float, default=600.0,
                       help="integration horizon per delay (default 600)")

    fairness = subparsers.add_parser(
        "fairness", help="multi-source fairness (Section 6)")
    _add_common_parameters(fairness)
    _add_runner_options(fairness)
    fairness.add_argument("--sources", type=int, default=4,
                          help="number of identical sources (default 4)")
    fairness.add_argument("--t-end", type=float, default=700.0,
                          help="integration horizon (default 700)")

    multihop = subparsers.add_parser(
        "multihop", help="hop-count unfairness on the parking-lot topology")
    _add_runner_options(multihop)
    _add_health_option(multihop)
    multihop.add_argument("--extra-hops", type=int, default=2,
                          help="hops the long connection traverses before "
                               "the shared node (default 2)")
    multihop.add_argument("--duration", type=float, default=300.0,
                          help="simulated duration (default 300)")
    multihop.add_argument("--service-rate", type=float, default=10.0,
                          help="per-node service rate (default 10)")

    ensemble = subparsers.add_parser(
        "ensemble", help="Langevin ensemble of the stochastic model "
                         "(Equation 12); final-time queue statistics")
    _add_common_parameters(ensemble)
    _add_runner_options(ensemble)
    _add_dataplane_options(ensemble)
    _add_health_option(ensemble)
    ensemble.add_argument("--sigma", type=float, default=0.5,
                          help="diffusion coefficient (default 0.5)")
    ensemble.add_argument("--t-end", type=float, default=60.0,
                          help="integration horizon (default 60)")
    ensemble.add_argument("--n-paths", type=int, default=500,
                          help="sample paths in the ensemble (default 500)")
    ensemble.add_argument("--dt", type=float, default=0.02,
                          help="Euler-Maruyama step (default 0.02)")
    ensemble.add_argument("--seed", type=int, default=1991,
                          help="ensemble master seed (default 1991)")

    run = subparsers.add_parser(
        "run", help="run a named experiment matrix through the parallel "
                    "runner (see --list)")
    _add_common_parameters(run)
    _add_runner_options(run)
    _add_dataplane_options(run)
    _add_health_option(run)
    run.add_argument("matrix", nargs="?", default=None,
                     help="matrix name (e.g. density-grid); see --list")
    run.add_argument("--list", action="store_true", dest="list_matrices",
                     help="list the available experiment matrices and exit")
    run.add_argument("--seed", type=int, default=None,
                     help="master seed for per-job seed derivation")
    run.add_argument("--t-end", type=float, default=None,
                     help="override the matrix's per-job horizon")
    run.add_argument("--resume", action="store_true",
                     help="replay the campaign journal and skip journaled "
                          "successes (continue an interrupted campaign)")
    run.add_argument("--journal", default=None, metavar="PATH",
                     help="campaign journal file (default: derived from the "
                          "matrix under <cache-root>/journals/; with "
                          "--no-cache the derived journal is disabled too "
                          "unless --resume or an explicit path is given)")
    run.add_argument("--no-journal", action="store_true",
                     help="do not journal outcomes (disables --resume)")

    design = subparsers.add_parser(
        "design", help="gain design: stationary solves and objective sweeps")
    _add_common_parameters(design)
    _add_runner_options(design)
    _add_dataplane_options(design)
    _add_health_option(design)
    design.add_argument("action", choices=["stationary", "sweep"],
                        help="stationary: solve L p = 0 directly; "
                             "sweep: rank a (c0, c1, q_target, mu) grid")
    design.add_argument("--sigma", type=float, default=0.4,
                        help="diffusion coefficient (default 0.4)")
    design.add_argument("--dt", type=float, default=None,
                        help="splitting step for the stationary solve / "
                             "trajectory step for the sweep (default: "
                             "auto / 0.1)")
    design.add_argument("--method", choices=["splitting", "generator", "adi"],
                        default="splitting",
                        help="stationary operator: the one-step splitting "
                             "fixed point (matches marching), the "
                             "continuous generator, or 'adi' (alias of "
                             "'generator': the ADI fixed point is the "
                             "generator null vector)")
    _add_stepper_option(design)
    design.add_argument("--backend", default=None,
                        help="numerics backend for the null-space solve "
                             "(default: the configured backend)")
    design.add_argument("--delay", type=float, default=0.0,
                        help="feedback delay for the shifted-drift closure "
                             "(default 0 = undelayed)")
    design.add_argument("--nq", type=int, default=48,
                        help="queue grid points (default 48)")
    design.add_argument("--nv", type=int, default=36,
                        help="growth-rate grid points (default 36)")
    design.add_argument("--q-max", type=float, default=30.0,
                        help="queue grid extent (default 30)")
    design.add_argument("--v-span", type=float, default=1.2,
                        help="growth-rate grid half-extent (default 1.2)")
    design.add_argument("--check-marching", action="store_true",
                        help="stationary: also time-march to --t-end and "
                             "report the relative moment differences")
    design.add_argument("--t-end", type=float, default=None,
                        help="sweep trajectory horizon (default 150) / "
                             "marching-check horizon (default 400)")
    design.add_argument("--n-c0", type=int, default=10,
                        help="sweep: c0 axis size (default 10)")
    design.add_argument("--n-c1", type=int, default=10,
                        help="sweep: c1 axis size (default 10)")
    design.add_argument("--n-q-target", type=int, default=10,
                        help="sweep: q_target axis size (default 10)")
    design.add_argument("--n-mu", type=int, default=10,
                        help="sweep: mu axis size (default 10)")
    design.add_argument("--top-k", type=int, default=16,
                        help="sweep: points carried into the stationary "
                             "refinement stage (default 16)")
    design.add_argument("--chunk-size", type=int, default=1024,
                        help="sweep: gain points per batched-trajectory "
                             "chunk (default 1024)")

    health = subparsers.add_parser(
        "health", help="summarise the numerical-health reports recorded in "
                       "a campaign journal")
    health.add_argument("journal", metavar="JOURNAL",
                        help="path of a 'repro run' campaign journal "
                             "(.jsonl)")
    health.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable summary instead of "
                             "tables")

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the content-addressed result cache")
    cache.add_argument("action", choices=["info", "list", "clear", "prune"],
                       help="what to do with the cache")
    cache.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="cache directory (default ~/.cache/repro)")
    cache.add_argument("--older-than", type=float, default=None,
                       metavar="DAYS",
                       help="prune: delete entries created more than DAYS "
                            "days ago")

    return parser


def _run_theorem1(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    if args.portrait:
        # The portrait needs the full trajectory, which the compact runner
        # result intentionally omits; compute directly.
        verification = verify_theorem1(params)
        summary = {
            "converges": verification.converges,
            "final_queue_error": verification.final_queue_error,
            "final_rate_error": verification.final_rate_error,
            "mean_contraction_ratio": verification.mean_contraction_ratio,
        }
        portrait = render_trajectory_portrait(verification.trajectory)
    else:
        outcome = _run_matrix(
            [JobSpec(theorem1_point, params=params)], args).outcomes[0]
        summary = outcome.value
        portrait = None
    print(format_key_values("Theorem 1 verification", {
        "converges": summary["converges"],
        "final |q - q_target|": summary["final_queue_error"],
        "final |rate - mu|": summary["final_rate_error"],
        "mean peak contraction": summary["mean_contraction_ratio"],
    }))
    if portrait is not None:
        print()
        print(portrait)
    return 0 if summary["converges"] else 1


def _run_density(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    job = JobSpec(density_point, params=params,
                  overrides={"t_end": args.t_end, "nq": args.nq,
                             "nv": args.nv})
    value = _run_matrix([job], args).outcomes[0].value
    print(format_table(value["snapshots"],
                       title="Fokker-Planck moments over time"))
    print(format_key_values("final density", {
        "mean queue": value["mean_queue"],
        "std queue": value["std_queue"],
        "P(Q > 2 q_target)": value["overflow_probability"],
    }))
    return 0


def _run_delay_sweep(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    jobs = [JobSpec(delay_point, params=params,
                    overrides={"delay": float(delay), "t_end": args.t_end})
            for delay in args.delays]
    result = _run_matrix(jobs, args)
    rows = [
        {
            "delay": value["delay"],
            "sustained": value["sustained"],
            "queue_amplitude": value["queue_amplitude"],
            "period": value["period"],
        }
        for value in (outcome.value for outcome in result)
    ]
    print(format_table(rows, title="oscillation versus feedback delay"))
    return 0


def _run_fairness(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    job = JobSpec(fairness_point, params=params,
                  overrides={"n_sources": args.sources, "t_end": args.t_end})
    value = _run_matrix([job], args).outcomes[0].value
    print(format_table(value["rows"], title="multi-source fairness"))
    print(format_key_values("summary", {"Jain index": value["jain_index"]}))
    return 0


def _run_multihop(args: argparse.Namespace) -> int:
    overrides = {
        "extra_hops": args.extra_hops,
        "duration": args.duration,
        "service_rate": args.service_rate,
    }
    # The default ("" = resolve the environment/observe) is omitted so the
    # job's cache key matches runs from before the knob existed.
    if getattr(args, "health", None):
        overrides["health"] = args.health
    job = JobSpec(multihop_point, overrides=overrides)
    value = _run_matrix([job], args).outcomes[0].value
    rows = [
        {"route": row["route"], "hops": row["hops"],
         "throughput": row["throughput"]}
        for row in value["throughput_by_hops"]
    ]
    print(format_table(rows, title="throughput by hop count (parking lot)"))
    print(format_key_values("summary", {
        "long/short throughput ratio": value["long_to_short_ratio"],
        "Jain index": value["jain_index"],
    }))
    return 0


def _run_ensemble(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    overrides = {"t_end": args.t_end, "n_paths": args.n_paths, "dt": args.dt}
    # Default data-plane knobs are omitted so the job's cache key matches
    # runs from before the knobs existed (and the ensemble-grid matrix).
    if args.retention != "full":
        overrides["retention"] = args.retention
    if args.memmap_dir is not None:
        overrides["memmap_dir"] = args.memmap_dir
    job = JobSpec(ensemble_point, params=params, seed=args.seed,
                  overrides=overrides)
    value = _run_matrix([job], args).outcomes[0].value
    print(format_key_values(
        f"Langevin ensemble at t={args.t_end:g} "
        f"({args.n_paths} paths, retention={args.retention})", {
            "mean queue": value["mean_queue"],
            "std queue": value["std_queue"],
            "P(Q > 2 q_target)": value["overflow_probability"],
        }))
    return 0


def _run_run(args: argparse.Namespace) -> int:
    if args.list_matrices:
        rows = [{"matrix": definition.name,
                 "description": definition.description}
                for definition in available_matrices()]
        print(format_table(rows, title="available experiment matrices"))
        return 0
    if args.matrix is None:
        print("error: name a matrix to run, or pass --list", file=sys.stderr)
        return 2

    params = _system_parameters(args)
    definition = get_matrix(args.matrix)
    build_kwargs = {}
    if definition.supports_retention:
        build_kwargs["retention"] = args.retention
        build_kwargs["memmap_dir"] = args.memmap_dir
    elif args.retention != "full" or args.memmap_dir is not None:
        raise ConfigurationError(
            f"matrix {definition.name!r} does not support "
            "--retention/--memmap-dir (its jobs keep no trace history)")
    if definition.supports_health and args.health:
        # Matrices whose jobs take no SystemParameters (the DES scenarios)
        # receive the policy as an explicit per-job override; the others
        # inherit it through params.health.
        build_kwargs["health"] = args.health
    jobs = definition.build(params, args.seed, args.t_end, **build_kwargs)
    journal = _journal_for(args, definition.name, jobs)

    started = time.perf_counter()
    result = run_jobs(jobs, n_jobs=args.jobs, cache=_cache_from(args),
                      progress=print_progress if args.progress else None,
                      retries=args.retries, timeout=args.timeout,
                      journal=journal)
    elapsed = time.perf_counter() - started
    if journal is not None:
        journal.close()

    rows = []
    for outcome in result:
        row = {"job": outcome.spec.label,
               "status": "cached" if outcome.from_cache
               else ("ok" if outcome.ok else "FAILED")}
        if outcome.ok and isinstance(outcome.value, dict):
            row.update({name: value for name, value in outcome.value.items()
                        if isinstance(value, (int, float, bool))})
        rows.append(row)
    print(format_table(rows, title=f"{definition.name}: {definition.description}"))
    summary = {
        "jobs": len(result),
        "cache hits": result.cache_hits,
        "computed": result.computed,
        "failed": len(result.failures),
        "workers": args.jobs,
        "wall clock [s]": round(elapsed, 3),
    }
    if journal is not None:
        summary["journal"] = str(journal.path)
        if args.resume:
            summary["resumed (journal hits)"] = result.journal_hits
    if result.retried:
        summary["retried"] = result.retried
    print(format_key_values("matrix summary", summary))
    for outcome in result.failures:
        print(f"\nFAILED {outcome.spec.label}:\n{outcome.error}",
              file=sys.stderr)
    return 0 if not result.failures else 1


def _design_grid(args: argparse.Namespace) -> GridParameters:
    return GridParameters(q_max=args.q_max, nq=args.nq, v_min=-args.v_span,
                          v_max=args.v_span, nv=args.nv)


def _run_design_stationary(args: argparse.Namespace,
                           params: SystemParameters) -> int:
    if args.check_marching:
        # The marching cross-check needs the full density, which the
        # compact runner result intentionally omits; compute directly.
        from .design import compare_with_marching, solve_stationary
        density = solve_stationary(params, grid_params=_design_grid(args),
                                   dt=args.dt, method=args.method,
                                   backend=args.backend, delay=args.delay)
        estimate = density.estimate
        summary = {
            "mean_queue": estimate.mean_queue,
            "std_queue": estimate.std_queue,
            "mean_growth_rate": estimate.mean_growth_rate,
            "std_growth_rate": estimate.std_growth_rate,
            "residual": estimate.residual,
            "iterations": estimate.iterations,
            "method": estimate.method,
            "backend": estimate.backend,
            "dt": estimate.dt,
        }
        comparison = compare_with_marching(
            density, params, grid_params=_design_grid(args),
            t_end=args.t_end if args.t_end is not None else 400.0,
            delay=args.delay)
    else:
        job = JobSpec(stationary_point, params=params, overrides={
            "nq": args.nq, "nv": args.nv, "q_max": args.q_max,
            "v_span": args.v_span, "dt": args.dt, "method": args.method,
            "backend": args.backend, "delay": args.delay})
        summary = _run_matrix([job], args).outcomes[0].value
        comparison = None
    print(format_key_values("stationary density", {
        "mean queue": summary["mean_queue"],
        "std queue": summary["std_queue"],
        "mean growth rate": summary["mean_growth_rate"],
        "std growth rate": summary["std_growth_rate"],
        "residual": summary["residual"],
        "null solve": f"{summary['backend']} ({summary['iterations']} it)",
        "operator": summary["method"],
        "dt": summary["dt"],
    }))
    if comparison is not None:
        print()
        print(format_key_values(
            f"versus marching to t={comparison['t_end']:g}",
            {f"relative d {name}": value
             for name, value in comparison["relative"].items()}))
    return 0


def _run_design_sweep(args: argparse.Namespace,
                      params: SystemParameters) -> int:
    from .design import default_axes, design_gains
    axes = default_axes(params, n_c0=args.n_c0, n_c1=args.n_c1,
                        n_q_target=args.n_q_target, n_mu=args.n_mu)
    started = time.perf_counter()
    result = design_gains(
        params, axes["c0_values"], axes["c1_values"],
        axes["q_target_values"], axes["mu_values"],
        top_k=args.top_k, chunk_size=args.chunk_size,
        t_end=args.t_end if args.t_end is not None else 150.0,
        dt=args.dt if args.dt is not None else 0.1,
        backend=args.backend, retention=args.retention,
        memmap_dir=args.memmap_dir)
    elapsed = time.perf_counter() - started

    def _row(gain) -> dict:
        row = {"rank": gain.rank, "c0": gain.c0, "c1": gain.c1,
               "q_target": gain.q_target, "mu": gain.mu,
               "score": gain.score,
               "amplitude": gain.oscillation_amplitude,
               "relax [t]": gain.relaxation_time}
        if gain.refined:
            row["stationary mean q"] = gain.stationary_mean_queue
        return row

    print(format_table([_row(gain) for gain in result.ranked],
                       title="ranked gains (lower score is better)"))
    print()
    print(format_table([_row(gain) for gain in result.pareto],
                       title="oscillation-vs-relaxation Pareto front"))
    print(format_key_values("sweep summary", {
        "points": result.n_points,
        "chunks": result.chunks,
        "retention": result.retention,
        "refined (stationary solves)": result.n_refined,
        "coarse horizon": result.t_end,
        "wall clock [s]": round(elapsed, 3),
    }))
    return 0


def _run_design(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    if args.action == "stationary":
        if args.retention != "full" or args.memmap_dir is not None:
            raise ConfigurationError(
                "--retention/--memmap-dir apply to 'design sweep' only "
                "(the stationary solve keeps no trajectory history)")
        return _run_design_stationary(args, params)
    return _run_design_sweep(args, params)


def _run_health(args: argparse.Namespace) -> int:
    """Replay a campaign journal and summarise its health reports."""
    import json
    import os

    if not os.path.exists(args.journal):
        raise ConfigurationError(f"no journal at {args.journal!r}")
    journal = RunJournal(args.journal, fsync=False)
    try:
        records = journal.replay()
    finally:
        journal.close()

    rows = []
    totals = {"jobs": 0, "monitored": 0, "reports": 0, "repairs": 0,
              "failed": 0}
    by_invariant: dict = {}
    job_payloads = []
    for record in sorted(records.values(), key=lambda r: r.label):
        totals["jobs"] += 1
        summary = None
        if record.ok and isinstance(record.value, dict):
            summary = record.value.get("health")
        if not record.ok:
            totals["failed"] += 1
        row = {"job": record.label,
               "status": "ok" if record.ok else "FAILED",
               "reports": 0, "repairs": 0, "invariants": "-"}
        payload = {"job": record.label, "ok": record.ok}
        if summary:
            totals["monitored"] += 1
            totals["reports"] += int(summary.get("n_reports", 0))
            totals["repairs"] += int(summary.get("n_repairs", 0))
            invariants = sorted({report["invariant"]
                                 for report in summary.get("reports", ())})
            for report in summary.get("reports", ()):
                entry = by_invariant.setdefault(
                    report["invariant"], {"reports": 0, "repairs": 0})
                entry["reports"] += 1
                if report.get("action") == "repair":
                    entry["repairs"] += 1
            row.update(reports=int(summary.get("n_reports", 0)),
                       repairs=int(summary.get("n_repairs", 0)),
                       invariants=", ".join(invariants) or "-")
            payload["health"] = summary
        if not record.ok:
            payload["error"] = record.error
            # Journalled errors carry the full traceback; the exception
            # line at the end is the informative one.
            lines = [line for line in (record.error or "").splitlines()
                     if line.strip()]
            row["invariants"] = lines[-1].strip()[:60] if lines else "-"
        rows.append(row)
        job_payloads.append(payload)

    if args.as_json:
        print(json.dumps({"journal": str(args.journal), "totals": totals,
                          "by_invariant": by_invariant,
                          "jobs": job_payloads},
                         indent=2, sort_keys=True))
        return 0
    print(format_table(rows, title=f"health replay of {args.journal}"))
    if by_invariant:
        print()
        print(format_table(
            [{"invariant": name, **counts}
             for name, counts in sorted(by_invariant.items())],
            title="reports by invariant"))
    print(format_key_values("health summary", totals))
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "prune":
        if args.older_than is None:
            print("error: cache prune requires --older-than DAYS",
                  file=sys.stderr)
            return 2
        removed = cache.prune(args.older_than * 86400.0)
        print(f"pruned {removed} cache entries older than "
              f"{args.older_than:g} days from {cache.root}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
        return 0
    entries = cache.entries()
    if args.action == "list":
        rows = [
            {
                "key": entry.key[:12],
                "label": entry.label,
                "function": entry.function.rsplit(":", 1)[-1],
                "encoding": entry.encoding,
                "size [B]": entry.size_bytes,
            }
            for entry in sorted(entries, key=lambda e: e.created)
        ]
        print(format_table(rows, title=f"cache entries under {cache.root}"))
        return 0
    print(format_key_values(f"result cache at {cache.root}", {
        "entries": len(entries),
        "total size [B]": cache.size_bytes(),
        "quarantined (corrupt)": cache.quarantined_count(),
    }))
    return 0


_COMMANDS = {
    "theorem1": _run_theorem1,
    "density": _run_density,
    "delay-sweep": _run_delay_sweep,
    "ensemble": _run_ensemble,
    "fairness": _run_fairness,
    "multihop": _run_multihop,
    "run": _run_run,
    "design": _run_design,
    "health": _run_health,
    "cache": _run_cache,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
