"""Command-line interface for the reproduction's main experiments.

Installs no extra dependencies and prints the same plain-text tables the
benchmark harness uses, so results can be regenerated without touching
Python::

    python -m repro.cli theorem1
    python -m repro.cli density --sigma 0.5 --t-end 150
    python -m repro.cli delay-sweep --delays 0 2 4 8
    python -m repro.cli fairness --sources 4
    python -m repro.cli multihop --extra-hops 3

Each sub-command maps onto one experiment family of DESIGN.md; the heavier
parameter sweeps remain in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    format_key_values,
    format_table,
    render_trajectory_portrait,
)
from .characteristics import verify_theorem1
from .config import SystemParameters, TimeParameters
from .control.jrj import JRJControl
from .core.solver import FokkerPlanckSolver
from .delay import delay_sweep
from .multisource import MultiSourceModel, fairness_report
from .queueing import MultiHopSimulator
from .queueing.multihop import parking_lot_scenario
from .workloads import homogeneous_sources_scenario

__all__ = ["main", "build_parser"]


def _system_parameters(args: argparse.Namespace) -> SystemParameters:
    return SystemParameters(mu=args.mu, q_target=args.q_target, c0=args.c0,
                            c1=args.c1, sigma=getattr(args, "sigma", 0.0))


def _add_common_parameters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mu", type=float, default=1.0,
                        help="bottleneck service rate (default 1.0)")
    parser.add_argument("--q-target", type=float, default=10.0,
                        help="target queue length q_hat (default 10)")
    parser.add_argument("--c0", type=float, default=0.05,
                        help="linear increase rate C0 (default 0.05)")
    parser.add_argument("--c1", type=float, default=0.2,
                        help="exponential decrease constant C1 (default 0.2)")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fokker-Planck analysis of dynamic congestion control "
                    "(Mukherjee & Strikwerda, 1991) - experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)

    theorem1 = subparsers.add_parser(
        "theorem1", help="verify Theorem 1 (stability without delay)")
    _add_common_parameters(theorem1)
    theorem1.add_argument("--portrait", action="store_true",
                          help="also print the ASCII phase portrait")

    density = subparsers.add_parser(
        "density", help="solve the Fokker-Planck equation (Equation 14)")
    _add_common_parameters(density)
    density.add_argument("--sigma", type=float, default=0.5,
                         help="diffusion coefficient (default 0.5)")
    density.add_argument("--t-end", type=float, default=150.0,
                         help="integration horizon (default 150)")

    sweep = subparsers.add_parser(
        "delay-sweep", help="oscillation amplitude/period versus feedback delay")
    _add_common_parameters(sweep)
    sweep.add_argument("--delays", type=float, nargs="+",
                       default=[0.0, 2.0, 4.0, 8.0],
                       help="feedback delays to sweep")
    sweep.add_argument("--t-end", type=float, default=600.0,
                       help="integration horizon per delay (default 600)")

    fairness = subparsers.add_parser(
        "fairness", help="multi-source fairness (Section 6)")
    _add_common_parameters(fairness)
    fairness.add_argument("--sources", type=int, default=4,
                          help="number of identical sources (default 4)")
    fairness.add_argument("--t-end", type=float, default=700.0,
                          help="integration horizon (default 700)")

    multihop = subparsers.add_parser(
        "multihop", help="hop-count unfairness on the parking-lot topology")
    multihop.add_argument("--extra-hops", type=int, default=2,
                          help="hops the long connection traverses before "
                               "the shared node (default 2)")
    multihop.add_argument("--duration", type=float, default=300.0,
                          help="simulated duration (default 300)")
    multihop.add_argument("--service-rate", type=float, default=10.0,
                          help="per-node service rate (default 10)")

    return parser


def _run_theorem1(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    verification = verify_theorem1(params)
    print(format_key_values("Theorem 1 verification", {
        "converges": verification.converges,
        "final |q - q_target|": verification.final_queue_error,
        "final |rate - mu|": verification.final_rate_error,
        "mean peak contraction": verification.mean_contraction_ratio,
    }))
    if args.portrait:
        print()
        print(render_trajectory_portrait(verification.trajectory))
    return 0 if verification.converges else 1


def _run_density(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    control = JRJControl(c0=params.c0, c1=params.c1, q_target=params.q_target)
    solver = FokkerPlanckSolver(params, control)
    result = solver.solve_from_point(
        q0=0.0, rate0=0.5 * params.mu,
        time_params=TimeParameters(t_end=args.t_end,
                                   dt=max(args.t_end / 300.0, 0.1),
                                   snapshot_every=30))
    rows = [
        {
            "time": snapshot.time,
            "mean_queue": snapshot.moments.mean_q,
            "std_queue": snapshot.moments.std_q,
        }
        for snapshot in result.snapshots
    ]
    print(format_table(rows, title="Fokker-Planck moments over time"))
    print(format_key_values("final density", {
        "mean queue": result.final_moments.mean_q,
        "std queue": result.final_moments.std_q,
        "P(Q > 2 q_target)": result.overflow_probability(2.0 * params.q_target),
    }))
    return 0


def _run_delay_sweep(args: argparse.Namespace) -> int:
    params = _system_parameters(args)
    control = JRJControl(c0=params.c0, c1=params.c1, q_target=params.q_target)
    summaries = delay_sweep(control, params, args.delays, t_end=args.t_end)
    rows = [
        {
            "delay": summary.delay,
            "sustained": summary.sustained,
            "queue_amplitude": summary.queue_amplitude,
            "period": summary.period,
        }
        for summary in summaries
    ]
    print(format_table(rows, title="oscillation versus feedback delay"))
    return 0


def _run_fairness(args: argparse.Namespace) -> int:
    params, sources = homogeneous_sources_scenario(
        n_sources=args.sources, mu=args.mu, q_target=args.q_target,
        c0=args.c0, c1=args.c1)
    trajectory = MultiSourceModel(sources, params).solve(t_end=args.t_end,
                                                         dt=0.05)
    report = fairness_report(trajectory, sources)
    print(format_table(report.rows(), title="multi-source fairness"))
    print(format_key_values("summary", {"Jain index": report.jain_index}))
    return 0


def _run_multihop(args: argparse.Namespace) -> int:
    config = parking_lot_scenario(n_extra_hops=args.extra_hops,
                                  service_rate=args.service_rate)
    result = MultiHopSimulator(config).run(duration=args.duration)
    rows = [
        {"route": name, "hops": hops, "throughput": throughput}
        for hops, name, throughput in result.throughput_by_hop_count()
    ]
    print(format_table(rows, title="throughput by hop count (parking lot)"))
    print(format_key_values("summary", {
        "long/short throughput ratio": result.long_to_short_ratio(),
        "Jain index": result.fairness_index(),
    }))
    return 0


_COMMANDS = {
    "theorem1": _run_theorem1,
    "density": _run_density,
    "delay-sweep": _run_delay_sweep,
    "fairness": _run_fairness,
    "multihop": _run_multihop,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
