"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GridParameters, JRJControl, SystemParameters, TimeParameters
from repro.numerics.grids import PhaseGrid2D, UniformGrid1D


@pytest.fixture
def canonical_params() -> SystemParameters:
    """The canonical single-source parameter set used throughout the paper."""
    return SystemParameters(mu=1.0, q_target=10.0, c0=0.05, c1=0.2, sigma=0.0)


@pytest.fixture
def noisy_params() -> SystemParameters:
    """Canonical parameters with a positive diffusion coefficient."""
    return SystemParameters(mu=1.0, q_target=10.0, c0=0.05, c1=0.2, sigma=0.4)


@pytest.fixture
def jrj_control(canonical_params) -> JRJControl:
    """The JRJ control law matching the canonical parameters."""
    return JRJControl(c0=canonical_params.c0, c1=canonical_params.c1,
                      q_target=canonical_params.q_target)


@pytest.fixture
def small_grid_params() -> GridParameters:
    """A coarse phase grid that keeps PDE tests fast."""
    return GridParameters(q_max=30.0, nq=60, v_min=-1.2, v_max=1.2, nv=48)


@pytest.fixture
def short_time_params() -> TimeParameters:
    """A short integration horizon for PDE tests."""
    return TimeParameters(t_end=20.0, dt=0.5, snapshot_every=4)


@pytest.fixture
def phase_grid() -> PhaseGrid2D:
    """A small stand-alone phase grid for grid-level unit tests."""
    return PhaseGrid2D(UniformGrid1D(0.0, 20.0, 40), UniformGrid1D(-1.0, 1.0, 20))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible stochastic tests."""
    return np.random.default_rng(20260614)
