"""Unit tests for the DES-vs-FP cross-validation harness."""

import json
import math

import pytest

from repro import SystemParameters, cross_validate
from repro.crossval import matched_network_config
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def params():
    return SystemParameters(mu=1.0, q_target=10.0, c0=0.05, c1=0.2, sigma=0.5)


@pytest.fixture(scope="module")
def small_report(params):
    # Deliberately small resolutions: this exercises the plumbing and the
    # loose physical agreement, not publication-grade accuracy.
    return cross_validate(
        params, n_sources=1, duration=800.0, t_end=60.0, nq=60, nv=48
    )


class TestMatchedConfig:
    def test_aggregate_gain_matches_single_source_model(self, params):
        config = matched_network_config(params, n_sources=4)
        assert config.service_rate == pytest.approx(params.mu)
        total_gain = sum(
            source.control_kwargs["c0"] for source in config.sources
        )
        assert total_gain == pytest.approx(params.c0)
        total_initial = sum(source.initial_rate for source in config.sources)
        assert total_initial == pytest.approx(0.5 * params.mu)

    def test_invalid_population_rejected(self, params):
        with pytest.raises(ConfigurationError):
            matched_network_config(params, n_sources=0)


class TestCrossValidate:
    def test_report_is_structurally_sound(self, small_report):
        metrics = small_report.to_dict()
        assert all(math.isfinite(value) for value in metrics.values())
        assert 0.0 <= metrics["stationary_tv_distance"] <= 1.0
        assert 0.0 <= metrics["des_mass_above_grid"] <= 1.0
        # A matched stable configuration keeps the link busy and the queue
        # near the target on both sides.
        assert 0.5 < metrics["des_utilization"] <= 1.05
        assert 0.0 < metrics["des_mean_queue"] < 2.0 * 10.0
        assert 0.0 < metrics["fp_mean_queue"] < 2.0 * 10.0

    def test_layers_agree_on_the_stationary_mean(self, small_report):
        # The continuous approximation tracks the packet-level truth to a
        # few percent at canonical parameters; 35% catches a broken
        # harness without flaking on resolution changes.
        assert small_report.mean_queue_rel_error < 0.35
        assert small_report.stationary_tv_distance < 0.6

    def test_report_round_trips_through_json(self, small_report):
        payload = json.dumps(small_report.to_dict())
        assert json.loads(payload)["n_sources"] == 1

    def test_multi_source_aggregation_path(self, params):
        report = cross_validate(
            params, n_sources=3, duration=600.0, t_end=40.0, nq=50, nv=40
        )
        assert report.n_sources == 3
        assert math.isfinite(report.mean_queue_rel_error)
        assert 0.4 < report.des_utilization <= 1.05

    def test_engines_produce_identical_des_metrics(self, params):
        kwargs = dict(duration=400.0, t_end=30.0, nq=40, nv=30)
        fast = cross_validate(params, engine="fast", **kwargs)
        reference = cross_validate(params, engine="reference", **kwargs)
        assert fast.des_mean_queue == reference.des_mean_queue
        assert fast.des_std_queue == reference.des_std_queue
        assert fast.stationary_tv_distance == reference.stationary_tv_distance

    def test_invalid_warmup_rejected(self, params):
        with pytest.raises(ConfigurationError):
            cross_validate(params, warmup_fraction=1.0)
