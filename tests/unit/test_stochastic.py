"""Unit tests for the Langevin model and ensemble comparison."""

import numpy as np
import pytest

from repro import (
    FokkerPlanckSolver,
    GridParameters,
    JRJControl,
    LangevinModel,
    SystemParameters,
    TimeParameters,
    compare_with_density,
    run_ensemble,
)
from repro.exceptions import AnalysisError


class TestLangevinModel:
    def test_zero_sigma_reduces_to_characteristic(self, canonical_params,
                                                  jrj_control, rng):
        model = LangevinModel(jrj_control, canonical_params)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=100.0, dt=0.02,
                               n_paths=5, rng=rng)
        # All particles follow the same deterministic path.
        spread = np.max(paths.final_states[:, 0]) - np.min(paths.final_states[:, 0])
        assert spread < 1e-9

    def test_paths_stay_non_negative(self, noisy_params, jrj_control, rng):
        model = LangevinModel(jrj_control, noisy_params)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=50.0, dt=0.02,
                               n_paths=200, rng=rng)
        assert np.all(paths.paths >= 0.0)

    def test_positive_sigma_spreads_the_ensemble(self, noisy_params,
                                                 jrj_control, rng):
        model = LangevinModel(jrj_control, noisy_params)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=60.0, dt=0.02,
                               n_paths=500, rng=rng)
        assert np.std(paths.final_states[:, 0]) > 0.5

    def test_negative_delay_rejected(self, canonical_params, jrj_control):
        with pytest.raises(ValueError):
            LangevinModel(jrj_control, canonical_params, feedback_delay=-1.0)

    def test_delayed_particles_keep_oscillating(self, canonical_params,
                                                jrj_control, rng):
        model = LangevinModel(jrj_control, canonical_params, feedback_delay=5.0)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=300.0, dt=0.02,
                               n_paths=20, rng=rng)
        queue_mean = paths.mean(0)
        tail = queue_mean[-int(0.3 * queue_mean.size):]
        assert np.max(tail) - np.min(tail) > 2.0


class TestEnsembleHelpers:
    def test_run_ensemble_summary_properties(self, noisy_params, jrj_control,
                                             rng):
        ensemble = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=40.0, dt=0.02, n_paths=300, rng=rng)
        assert ensemble.times[-1] == pytest.approx(40.0, abs=0.1)
        assert ensemble.mean_queue.shape == ensemble.times.shape
        assert ensemble.std_queue.shape == ensemble.times.shape
        assert 0.0 <= ensemble.overflow_probability(5.0) <= 1.0

    def test_final_queue_density_normalised(self, noisy_params, jrj_control,
                                            rng):
        ensemble = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=40.0, dt=0.02, n_paths=500, rng=rng)
        edges = np.linspace(0.0, 30.0, 31)
        centers, density = ensemble.final_queue_density(edges)
        assert np.sum(density) * (edges[1] - edges[0]) == pytest.approx(1.0,
                                                                        rel=1e-6)

    def test_compare_with_density_requires_matching_horizon(self, noisy_params,
                                                            jrj_control, rng):
        grid = GridParameters(q_max=30.0, nq=60, v_min=-1.2, v_max=1.2, nv=48)
        solver = FokkerPlanckSolver(noisy_params, jrj_control, grid_params=grid)
        fp = solver.solve_from_point(0.0, 0.5,
                                     TimeParameters(t_end=30.0, dt=0.5,
                                                    snapshot_every=10))
        ensemble = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=100.0, dt=0.02, n_paths=100, rng=rng)
        with pytest.raises(AnalysisError):
            compare_with_density(ensemble, fp)

    def test_compare_with_density_reports_small_differences(self, jrj_control,
                                                            rng):
        params = SystemParameters(mu=1.0, q_target=10.0, c0=0.05, c1=0.2,
                                  sigma=0.5)
        grid = GridParameters(q_max=40.0, nq=100, v_min=-1.5, v_max=1.5, nv=60)
        solver = FokkerPlanckSolver(params, jrj_control, grid_params=grid)
        fp = solver.solve_from_point(0.0, 0.5,
                                     TimeParameters(t_end=120.0, dt=0.5,
                                                    snapshot_every=20))
        ensemble = run_ensemble(jrj_control, params, q0=0.0, rate0=0.5,
                                t_end=120.0, dt=0.02, n_paths=2000, rng=rng)
        comparison = compare_with_density(ensemble, fp)
        assert comparison["mean_queue_difference"] < 1.5
        assert comparison["std_queue_difference"] < 1.5
        assert comparison["marginal_l1_distance"] < 0.6
