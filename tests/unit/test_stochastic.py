"""Unit tests for the Langevin model and ensemble comparison."""

import numpy as np
import pytest

from repro import (
    FokkerPlanckSolver,
    GridParameters,
    JRJControl,
    LangevinModel,
    SystemParameters,
    TimeParameters,
    compare_with_density,
    run_ensemble,
)
from repro.exceptions import AnalysisError


class TestLangevinModel:
    def test_zero_sigma_reduces_to_characteristic(self, canonical_params,
                                                  jrj_control, rng):
        model = LangevinModel(jrj_control, canonical_params)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=100.0, dt=0.02,
                               n_paths=5, rng=rng)
        # All particles follow the same deterministic path.
        spread = np.max(paths.final_states[:, 0]) - np.min(paths.final_states[:, 0])
        assert spread < 1e-9

    def test_paths_stay_non_negative(self, noisy_params, jrj_control, rng):
        model = LangevinModel(jrj_control, noisy_params)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=50.0, dt=0.02,
                               n_paths=200, rng=rng)
        assert np.all(paths.paths >= 0.0)

    def test_positive_sigma_spreads_the_ensemble(self, noisy_params,
                                                 jrj_control, rng):
        model = LangevinModel(jrj_control, noisy_params)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=60.0, dt=0.02,
                               n_paths=500, rng=rng)
        assert np.std(paths.final_states[:, 0]) > 0.5

    def test_negative_delay_rejected(self, canonical_params, jrj_control):
        with pytest.raises(ValueError):
            LangevinModel(jrj_control, canonical_params, feedback_delay=-1.0)

    def test_delayed_particles_keep_oscillating(self, canonical_params,
                                                jrj_control, rng):
        model = LangevinModel(jrj_control, canonical_params, feedback_delay=5.0)
        paths = model.simulate(q0=0.0, rate0=0.5, t_end=300.0, dt=0.02,
                               n_paths=20, rng=rng)
        queue_mean = paths.mean(0)
        tail = queue_mean[-int(0.3 * queue_mean.size):]
        assert np.max(tail) - np.min(tail) > 2.0


class TestShardedEnsemble:
    def test_shard_sizes_partition_paths(self):
        from repro.stochastic import shard_sizes

        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(8, 4) == [2, 2, 2, 2]
        assert sum(shard_sizes(101, 7)) == 101
        # More shards than paths degrades gracefully.
        assert shard_sizes(2, 5) == [1, 1]

    def test_shard_sizes_validation(self):
        from repro.exceptions import ConfigurationError
        from repro.stochastic import shard_sizes

        with pytest.raises(ConfigurationError):
            shard_sizes(0, 2)
        with pytest.raises(ConfigurationError):
            shard_sizes(5, 0)

    def test_seeded_ensemble_reproducible(self, noisy_params, jrj_control):
        first = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                             t_end=10.0, dt=0.05, n_paths=40, seed=123,
                             n_shards=4)
        second = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                              t_end=10.0, dt=0.05, n_paths=40, seed=123,
                              n_shards=4)
        np.testing.assert_array_equal(first.paths.paths, second.paths.paths)

    def test_default_shard_count_independent_of_workers(self, noisy_params,
                                                        jrj_control):
        # No explicit n_shards: the default must not follow n_jobs, or the
        # same seed would give different numbers on different machines.
        serial = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                              t_end=5.0, dt=0.05, n_paths=24, seed=9,
                              n_jobs=1)
        parallel = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=5.0, dt=0.05, n_paths=24, seed=9,
                                n_jobs=2)
        np.testing.assert_array_equal(serial.paths.paths,
                                      parallel.paths.paths)

    def test_parallel_shards_bit_identical_to_serial(self, noisy_params,
                                                     jrj_control):
        serial = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                              t_end=10.0, dt=0.05, n_paths=40, seed=123,
                              n_shards=4, n_jobs=1)
        parallel = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=10.0, dt=0.05, n_paths=40, seed=123,
                                n_shards=4, n_jobs=2)
        np.testing.assert_array_equal(serial.paths.paths,
                                      parallel.paths.paths)

    def test_shard_streams_order_independent(self, noisy_params, jrj_control):
        from repro.queueing import child_seed_sequence
        from repro.stochastic.ensemble import _simulate_shard, shard_sizes

        n_paths, n_shards, seed = 40, 4, 123
        combined = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=10.0, dt=0.05, n_paths=n_paths,
                                seed=seed, n_shards=n_shards)
        # Shard 2 recomputed in isolation (no siblings ever created) must
        # reproduce its slice of the combined ensemble exactly.
        sizes = shard_sizes(n_paths, n_shards)
        alone, _ = _simulate_shard(jrj_control, noisy_params, 0.0, 0.5, 10.0,
                                   0.05, sizes[2], 0.0,
                                   child_seed_sequence(seed, ("ensemble", 2)))
        start = sum(sizes[:2])
        np.testing.assert_array_equal(
            combined.paths.paths[:, start:start + sizes[2], :], alone.paths)

    def test_seed_and_rng_are_exclusive(self, noisy_params, jrj_control, rng):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                         t_end=5.0, n_paths=10, seed=1, rng=rng)

    def test_parallel_requires_seed(self, noisy_params, jrj_control):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                         t_end=5.0, n_paths=10, n_jobs=2)


class TestEnsembleHelpers:
    def test_run_ensemble_summary_properties(self, noisy_params, jrj_control,
                                             rng):
        ensemble = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=40.0, dt=0.02, n_paths=300, rng=rng)
        assert ensemble.times[-1] == pytest.approx(40.0, abs=0.1)
        assert ensemble.mean_queue_series.shape == ensemble.times.shape
        assert ensemble.std_queue_series.shape == ensemble.times.shape
        assert 0.0 <= ensemble.overflow_probability(5.0) <= 1.0

    def test_final_queue_density_normalised(self, noisy_params, jrj_control,
                                            rng):
        ensemble = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=40.0, dt=0.02, n_paths=500, rng=rng)
        edges = np.linspace(0.0, 30.0, 31)
        centers, density = ensemble.final_queue_density(edges)
        assert np.sum(density) * (edges[1] - edges[0]) == pytest.approx(1.0,
                                                                        rel=1e-6)

    def test_compare_with_density_requires_matching_horizon(self, noisy_params,
                                                            jrj_control, rng):
        grid = GridParameters(q_max=30.0, nq=60, v_min=-1.2, v_max=1.2, nv=48)
        solver = FokkerPlanckSolver(noisy_params, jrj_control, grid_params=grid)
        fp = solver.solve_from_point(0.0, 0.5,
                                     TimeParameters(t_end=30.0, dt=0.5,
                                                    snapshot_every=10))
        ensemble = run_ensemble(jrj_control, noisy_params, q0=0.0, rate0=0.5,
                                t_end=100.0, dt=0.02, n_paths=100, rng=rng)
        with pytest.raises(AnalysisError):
            compare_with_density(ensemble, fp)

    def test_compare_with_density_reports_small_differences(self, jrj_control,
                                                            rng):
        params = SystemParameters(mu=1.0, q_target=10.0, c0=0.05, c1=0.2,
                                  sigma=0.5)
        grid = GridParameters(q_max=40.0, nq=100, v_min=-1.5, v_max=1.5, nv=60)
        solver = FokkerPlanckSolver(params, jrj_control, grid_params=grid)
        fp = solver.solve_from_point(0.0, 0.5,
                                     TimeParameters(t_end=120.0, dt=0.5,
                                                    snapshot_every=20))
        ensemble = run_ensemble(jrj_control, params, q0=0.0, rate0=0.5,
                                t_end=120.0, dt=0.02, n_paths=2000, rng=rng)
        comparison = compare_with_density(ensemble, fp)
        assert comparison["mean_queue_difference"] < 1.5
        assert comparison["std_queue_difference"] < 1.5
        assert comparison["marginal_l1_distance"] < 0.6
