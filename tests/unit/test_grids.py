"""Unit tests for the grid classes."""

import numpy as np
import pytest

from repro.exceptions import GridError
from repro.numerics.grids import PhaseGrid2D, UniformGrid1D


class TestUniformGrid1D:
    def test_centers_and_edges(self):
        grid = UniformGrid1D(0.0, 10.0, 10)
        assert grid.dx == pytest.approx(1.0)
        assert grid.centers[0] == pytest.approx(0.5)
        assert grid.centers[-1] == pytest.approx(9.5)
        assert grid.edges[0] == pytest.approx(0.0)
        assert grid.edges[-1] == pytest.approx(10.0)
        assert grid.centers.size == 10
        assert grid.edges.size == 11

    def test_locate_interior_and_clamping(self):
        grid = UniformGrid1D(0.0, 10.0, 10)
        assert grid.locate(0.7) == 0
        assert grid.locate(5.5) == 5
        assert grid.locate(-3.0) == 0
        assert grid.locate(42.0) == 9

    def test_contains(self):
        grid = UniformGrid1D(-1.0, 1.0, 4)
        assert grid.contains(0.0)
        assert grid.contains(-1.0)
        assert not grid.contains(1.5)

    def test_delta_density_integrates_to_one(self):
        grid = UniformGrid1D(0.0, 5.0, 25)
        density = grid.delta_density(2.3)
        assert np.sum(density) * grid.dx == pytest.approx(1.0)

    def test_rejects_degenerate_grids(self):
        with pytest.raises(GridError):
            UniformGrid1D(0.0, 1.0, 1)
        with pytest.raises(GridError):
            UniformGrid1D(1.0, 1.0, 10)
        with pytest.raises(GridError):
            UniformGrid1D(0.0, np.inf, 10)


class TestPhaseGrid2D:
    def test_shape_and_cell_area(self, phase_grid):
        assert phase_grid.shape == (40, 20)
        assert phase_grid.cell_area == pytest.approx(phase_grid.dq * phase_grid.dv)

    def test_from_bounds_constructor(self):
        grid = PhaseGrid2D.from_bounds(q_max=20.0, nq=40, v_min=-1.0,
                                       v_max=1.0, nv=20)
        assert grid.shape == (40, 20)
        assert grid.q_centers[0] == pytest.approx(0.25)

    def test_meshgrid_shapes(self, phase_grid):
        q, v = phase_grid.meshgrid()
        assert q.shape == phase_grid.shape
        assert v.shape == phase_grid.shape
        # The first axis varies q, the second varies v.
        assert np.allclose(q[:, 0], q[:, -1])
        assert np.allclose(v[0, :], v[-1, :])

    def test_total_mass_and_normalize(self, phase_grid):
        density = np.ones(phase_grid.shape)
        mass = phase_grid.total_mass(density)
        assert mass == pytest.approx(20.0 * 2.0)
        normalized = phase_grid.normalize(density)
        assert phase_grid.total_mass(normalized) == pytest.approx(1.0)

    def test_normalize_rejects_zero_mass(self, phase_grid):
        with pytest.raises(GridError):
            phase_grid.normalize(np.zeros(phase_grid.shape))

    def test_gaussian_density_is_normalised_and_centred(self, phase_grid):
        density = phase_grid.gaussian_density(10.0, 0.0, 2.0, 0.2)
        assert phase_grid.total_mass(density) == pytest.approx(1.0)
        q, v = phase_grid.meshgrid()
        mean_q = np.sum(q * density) * phase_grid.cell_area
        assert mean_q == pytest.approx(10.0, abs=0.2)

    def test_gaussian_rejects_non_positive_std(self, phase_grid):
        with pytest.raises(GridError):
            phase_grid.gaussian_density(5.0, 0.0, 0.0, 0.1)

    def test_shape_mismatch_detected(self, phase_grid):
        with pytest.raises(GridError):
            phase_grid.total_mass(np.zeros((3, 3)))
