"""Unit tests for the scalar root finders."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.numerics.rootfind import bisect, newton


class TestBisect:
    def test_finds_root_of_polynomial(self):
        root = bisect(lambda x: x ** 3 - 2.0, 0.0, 2.0)
        assert root == pytest.approx(2.0 ** (1.0 / 3.0), abs=1e-9)

    def test_endpoint_root_returned_immediately(self):
        assert bisect(lambda x: x, 0.0, 1.0) == 0.0
        assert bisect(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_no_sign_change_raises(self):
        with pytest.raises(ConvergenceError):
            bisect(lambda x: x ** 2 + 1.0, -1.0, 1.0)

    def test_transcendental_equation(self):
        root = bisect(lambda x: np.cos(x) - x, 0.0, 1.0)
        assert np.cos(root) == pytest.approx(root, abs=1e-9)


class TestNewton:
    def test_with_analytic_derivative(self):
        root = newton(lambda x: x ** 2 - 4.0, x0=3.0,
                      derivative=lambda x: 2.0 * x)
        assert root == pytest.approx(2.0, abs=1e-9)

    def test_with_numeric_derivative(self):
        root = newton(lambda x: np.exp(x) - 2.0, x0=1.0)
        assert root == pytest.approx(np.log(2.0), abs=1e-8)

    def test_zero_derivative_raises(self):
        with pytest.raises(ConvergenceError):
            newton(lambda x: 1.0 + x * 0.0, x0=0.0,
                   derivative=lambda x: 0.0)

    def test_agrees_with_bisect(self):
        func = lambda x: x ** 3 - x - 2.0
        assert newton(func, x0=1.5) == pytest.approx(
            bisect(func, 1.0, 2.0), abs=1e-8)
