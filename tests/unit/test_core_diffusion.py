"""Unit tests for the Crank-Nicolson diffusion step."""

import numpy as np
import pytest

from repro.core.diffusion import CrankNicolsonDiffusion, crank_nicolson_diffuse_q
from repro.numerics.grids import PhaseGrid2D, UniformGrid1D


@pytest.fixture
def grid():
    return PhaseGrid2D(UniformGrid1D(0.0, 20.0, 100), UniformGrid1D(-1.0, 1.0, 4))


class TestCrankNicolsonDiffusion:
    def test_zero_sigma_is_identity(self, grid):
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        updated = crank_nicolson_diffuse_q(density, grid, sigma=0.0, dt=0.1)
        assert np.array_equal(updated, density)

    def test_conserves_mass(self, grid):
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        updated = density.copy()
        for _ in range(50):
            updated = crank_nicolson_diffuse_q(updated, grid, sigma=0.5, dt=0.1)
        assert grid.total_mass(updated) == pytest.approx(1.0, rel=1e-10)

    def test_variance_grows_at_sigma_squared_rate(self, grid):
        # For pure diffusion Var[Q](t) = Var[Q](0) + sigma^2 * t.
        sigma = 0.4
        dt = 0.05
        n_steps = 200
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        q_mesh, _ = grid.meshgrid()

        def variance(d):
            weight = d * grid.cell_area
            weight = weight / np.sum(weight)
            mean = np.sum(q_mesh * weight)
            return np.sum((q_mesh - mean) ** 2 * weight)

        initial_variance = variance(density)
        updated = density.copy()
        for _ in range(n_steps):
            updated = crank_nicolson_diffuse_q(updated, grid, sigma, dt)
        expected = initial_variance + sigma ** 2 * n_steps * dt
        assert variance(updated) == pytest.approx(expected, rel=0.05)

    def test_mean_preserved_in_interior(self, grid):
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        q_mesh, _ = grid.meshgrid()
        updated = density.copy()
        for _ in range(20):
            updated = crank_nicolson_diffuse_q(updated, grid, 0.3, 0.1)
        mean_before = np.sum(q_mesh * density) / np.sum(density)
        mean_after = np.sum(q_mesh * updated) / np.sum(updated)
        assert mean_after == pytest.approx(mean_before, abs=0.05)

    def test_smooths_sharp_peak(self, grid):
        density = np.zeros(grid.shape)
        density[50, :] = 1.0
        density = grid.normalize(density)
        updated = crank_nicolson_diffuse_q(density, grid, sigma=1.0, dt=0.5)
        assert np.max(updated) < np.max(density)
        assert np.all(updated >= 0.0)

    def test_large_dt_remains_stable(self, grid):
        # Crank-Nicolson is unconditionally stable; a huge step must not blow up.
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        updated = crank_nicolson_diffuse_q(density, grid, sigma=1.0, dt=50.0)
        assert np.all(np.isfinite(updated))
        assert grid.total_mass(updated) == pytest.approx(1.0, rel=1e-8)


class TestCrankNicolsonDiffusionOperator:
    def test_mass_conserved_under_cached_operator(self, grid):
        # Many steps with the same dt all hit one cached operator; the mass
        # must stay exactly conserved throughout.
        operator = CrankNicolsonDiffusion(grid, sigma=0.5)
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        for _ in range(100):
            density = operator.step(density, 0.1)
        assert grid.total_mass(density) == pytest.approx(1.0, rel=1e-10)
        assert len(operator._steps) == 1  # single cached diffusion number

    def test_operator_matches_stateless_function(self, grid):
        operator = CrankNicolsonDiffusion(grid, sigma=0.4)
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        via_operator = operator.step(density, 0.2)
        via_function = crank_nicolson_diffuse_q(density, grid, 0.4, 0.2)
        assert np.allclose(via_operator, via_function, rtol=0.0, atol=1e-13)

    def test_dense_and_factorized_paths_agree(self, grid):
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        dense = CrankNicolsonDiffusion(grid, sigma=0.5)
        factorized = CrankNicolsonDiffusion(grid, sigma=0.5, dense_limit=0)
        a = density
        b = density
        for _ in range(10):
            a = dense.step(a, 0.1)
            b = factorized.step(b, 0.1)
        assert np.allclose(a, b, rtol=0.0, atol=1e-13)

    def test_preallocated_out(self, grid):
        operator = CrankNicolsonDiffusion(grid, sigma=0.5)
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        operator.step(density, 0.1)
        operator.step(density, 0.1)  # warm the cache past the dense upgrade
        out = np.empty_like(density)
        returned = operator.step(density, 0.1, out=out)
        assert returned is out
        assert np.array_equal(out, operator.step(density, 0.1))

    def test_sigma_zero_step_copies_into_out(self, grid):
        operator = CrankNicolsonDiffusion(grid, sigma=0.0)
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        out = np.empty_like(density)
        operator.step(density, 0.1, out=out)
        assert np.array_equal(out, density)

    def test_subcycled_large_diffusion_number(self, grid):
        # r > 2 triggers the iterative sub-cycling; mass and positivity hold.
        operator = CrankNicolsonDiffusion(grid, sigma=1.0)
        density = grid.gaussian_density(10.0, 0.0, 1.0, 0.3)
        updated = operator.step(density, 50.0)
        assert np.all(updated >= 0.0)
        assert grid.total_mass(updated) == pytest.approx(1.0, rel=1e-8)
