"""Unit tests for the ODE integrators."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, StabilityError
from repro.numerics.ode import (
    ODEResult,
    euler_step,
    integrate_adaptive,
    integrate_fixed,
    rk4_step,
)


def exponential_decay(_t, state):
    return -state


def harmonic_oscillator(_t, state):
    return np.array([state[1], -state[0]])


class TestSingleSteps:
    def test_euler_step_linear(self):
        state = np.array([1.0])
        new = euler_step(lambda t, s: np.array([2.0]), 0.0, state, 0.5)
        assert new[0] == pytest.approx(2.0)

    def test_rk4_more_accurate_than_euler(self):
        dt = 0.1
        exact = np.exp(-dt)
        euler = euler_step(exponential_decay, 0.0, np.array([1.0]), dt)[0]
        rk4 = rk4_step(exponential_decay, 0.0, np.array([1.0]), dt)[0]
        assert abs(rk4 - exact) < abs(euler - exact)
        assert rk4 == pytest.approx(exact, abs=1e-7)


class TestIntegrateFixed:
    def test_exponential_decay_accuracy(self):
        result = integrate_fixed(exponential_decay, [1.0], t_end=2.0, dt=0.01)
        assert result.final_state[0] == pytest.approx(np.exp(-2.0), rel=1e-6)

    def test_harmonic_oscillator_energy_conserved(self):
        result = integrate_fixed(harmonic_oscillator, [1.0, 0.0], t_end=10.0,
                                 dt=0.01)
        energy = result.states[:, 0] ** 2 + result.states[:, 1] ** 2
        assert np.allclose(energy, 1.0, atol=1e-5)

    def test_projection_is_applied(self):
        result = integrate_fixed(lambda t, s: np.array([-10.0]), [1.0],
                                 t_end=1.0, dt=0.05,
                                 projection=lambda s: np.maximum(s, 0.0))
        assert np.all(result.states >= 0.0)

    def test_event_terminates_integration(self):
        result = integrate_fixed(lambda t, s: np.array([1.0]), [0.0],
                                 t_end=10.0, dt=0.01,
                                 event=lambda t, s: s[0] - 1.0)
        assert result.event_time is not None
        assert result.event_time == pytest.approx(1.0, abs=0.02)

    def test_result_helpers(self):
        result = integrate_fixed(exponential_decay, [1.0], t_end=1.0, dt=0.1)
        assert isinstance(result, ODEResult)
        assert result.final_time == pytest.approx(1.0)
        assert result.component(0).shape == result.times.shape
        resampled = result.resample(np.array([0.0, 0.5, 1.0]))
        assert resampled.shape == (3, 1)

    def test_invalid_dt_rejected(self):
        with pytest.raises(ConvergenceError):
            integrate_fixed(exponential_decay, [1.0], t_end=1.0, dt=0.0)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ConvergenceError):
            integrate_fixed(exponential_decay, [1.0], t_end=0.0, dt=0.1)

    def test_nonfinite_state_detected(self):
        with pytest.raises(StabilityError):
            integrate_fixed(lambda t, s: s ** 3, [5.0], t_end=10.0, dt=0.5)


class TestIntegrateAdaptive:
    def test_exponential_decay_accuracy(self):
        result = integrate_adaptive(exponential_decay, [1.0], t_end=3.0,
                                    rtol=1e-8, atol=1e-10)
        assert result.final_state[0] == pytest.approx(np.exp(-3.0), rel=1e-6)

    def test_reaches_end_time(self):
        result = integrate_adaptive(harmonic_oscillator, [0.0, 1.0], t_end=5.0)
        assert result.final_time == pytest.approx(5.0, abs=1e-9)

    def test_step_count_smaller_for_smooth_problem(self):
        result = integrate_adaptive(exponential_decay, [1.0], t_end=1.0,
                                    rtol=1e-4, atol=1e-6)
        fixed = integrate_fixed(exponential_decay, [1.0], t_end=1.0, dt=1e-3)
        assert result.times.size < fixed.times.size
